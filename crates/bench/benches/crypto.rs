//! Micro-benchmarks for the cryptographic substrate.
//!
//! ChaCha20 keystream throughput, SipHash MAC throughput, block sealing,
//! and the Feistel PRP — the per-block costs behind every simulated ORAM
//! access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horam::crypto::chacha::ChaCha20;
use horam::crypto::keys::MasterKey;
use horam::crypto::prp::FeistelPrp;
use horam::crypto::seal::BlockSealer;
use horam::crypto::siphash::siphash24;
use std::hint::black_box;

fn bench_chacha(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    for size in [64usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let key = [7u8; 32];
            let nonce = [3u8; 12];
            let mut data = vec![0u8; size];
            b.iter(|| {
                ChaCha20::apply(&key, &nonce, 0, black_box(&mut data));
            });
        });
    }
    group.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let mut group = c.benchmark_group("siphash24");
    for size in [16usize, 64, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let key = [9u8; 16];
            let data = vec![0xAAu8; size];
            b.iter(|| black_box(siphash24(&key, black_box(&data))));
        });
    }
    group.finish();
}

fn bench_sealing(c: &mut Criterion) {
    let keys = MasterKey::from_bytes([1u8; 32]).derive("bench/seal", 0);
    let sealer = BlockSealer::new(&keys);
    let payload = vec![0x55u8; 1024];
    c.bench_function("seal_1KB_block", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(sealer.seal(42, seq, black_box(&payload)))
        });
    });
    let sealed = sealer.seal(42, 0, &payload);
    c.bench_function("open_1KB_block", |b| {
        b.iter(|| black_box(sealer.open(black_box(&sealed)).expect("verifies")));
    });
}

fn bench_prp(c: &mut Criterion) {
    let prp = FeistelPrp::new([4u8; 16], 1 << 20).expect("domain valid");
    c.bench_function("feistel_prp_permute_2^20", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) % (1 << 20);
            black_box(prp.permute(black_box(x)).expect("in domain"))
        });
    });
}

criterion_group!(
    benches,
    bench_chacha,
    bench_siphash,
    bench_sealing,
    bench_prp
);
criterion_main!(benches);

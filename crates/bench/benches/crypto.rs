//! Micro-benchmarks for the cryptographic substrate.
//!
//! ChaCha20 keystream throughput, SipHash MAC throughput, block sealing,
//! and the Feistel PRP — the per-block costs behind every simulated ORAM
//! access.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horam::crypto::chacha::{ChaCha20, ChaChaKey};
use horam::crypto::keys::MasterKey;
use horam::crypto::prp::FeistelPrp;
use horam::crypto::seal::BlockSealer;
use horam::crypto::siphash::{siphash24, SipHash24};
use std::hint::black_box;

fn bench_chacha(c: &mut Criterion) {
    let mut group = c.benchmark_group("chacha20");
    for size in [64usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let key = [7u8; 32];
            let nonce = [3u8; 12];
            let mut data = vec![0u8; size];
            b.iter(|| {
                ChaCha20::apply(&key, &nonce, 0, black_box(&mut data));
            });
        });
    }
    group.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let mut group = c.benchmark_group("siphash24");
    for size in [16usize, 64, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let key = [9u8; 16];
            let data = vec![0xAAu8; size];
            b.iter(|| black_box(siphash24(&key, black_box(&data))));
        });
    }
    group.finish();
}

fn bench_sealing(c: &mut Criterion) {
    let keys = MasterKey::from_bytes([1u8; 32]).derive("bench/seal", 0);
    let sealer = BlockSealer::new(&keys);
    let payload = vec![0x55u8; 1024];
    c.bench_function("seal_1KB_block", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(sealer.seal(42, seq, black_box(&payload)))
        });
    });
    let sealed = sealer.seal(42, 0, &payload);
    c.bench_function("open_1KB_block", |b| {
        b.iter(|| black_box(sealer.open(black_box(&sealed)).expect("verifies")));
    });
}

/// The per-call state-setup delta the sealer optimization removes: a
/// `BlockSealer` caches its ChaCha key schedule and prepared SipHash
/// state once, where the naive path re-parses both raw keys on every
/// `seal_into`/`open_in_place` call. The "rebuilt_schedule" rows
/// reconstruct that naive path explicitly so the delta stays measurable.
fn bench_sealer_key_schedule(c: &mut Criterion) {
    let enc_key = [0x42u8; 32];
    let mac_key = [0x17u8; 16];
    let sealer = BlockSealer::from_raw_keys(enc_key, mac_key);
    let mut group = c.benchmark_group("sealer_key_schedule");
    // The storage layer's wire bodies are small (tens of bytes), which is
    // exactly where fixed per-call setup costs dominate.
    for size in [40usize, 256, 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        let payload = vec![0x5Au8; size];
        group.bench_with_input(BenchmarkId::new("cached_schedule", size), &size, |b, _| {
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                black_box(sealer.seal_into(42, seq, black_box(payload.clone())))
            });
        });
        group.bench_with_input(BenchmarkId::new("rebuilt_schedule", size), &size, |b, _| {
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                // The pre-optimization per-call path: parse the raw
                // keys, encrypt in place, then MAC from raw key bytes.
                let mut body = black_box(payload.clone());
                let mut nonce = [0u8; 12];
                nonce[..8].copy_from_slice(&42u64.to_le_bytes());
                nonce[8..].copy_from_slice(&(seq as u32).to_le_bytes());
                ChaCha20::new(black_box(&enc_key), &nonce).apply_keystream(&mut body);
                let mut mac = SipHash24::new(black_box(&mac_key));
                mac.write_u64(42);
                mac.write_u64(seq);
                mac.write_u64(body.len() as u64);
                mac.write(&body);
                black_box((body, mac.finish()))
            });
        });
    }
    group.finish();
}

/// Wide (4-lane) keystream generation vs the scalar block function, and
/// the fused copy+XOR of `apply_keystream_into` vs copy-then-encrypt.
fn bench_chacha_batch(c: &mut Criterion) {
    let key = ChaChaKey::new(&[7u8; 32]);
    let nonce = [3u8; 12];
    let mut group = c.benchmark_group("chacha20_batch");
    for size in [256usize, 1024, 16 * 1024] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("wide_stream", size), &size, |b, &size| {
            let mut data = vec![0u8; size];
            b.iter(|| {
                ChaCha20::from_key(&key, &nonce, 0).apply_keystream(black_box(&mut data));
            });
        });
        group.bench_with_input(
            BenchmarkId::new("per_block_reference", size),
            &size,
            |b, &size| {
                // Scalar reference: one keystream block at a time.
                let mut data = vec![0u8; size];
                b.iter(|| {
                    let stream = ChaCha20::from_key(&key, &nonce, 0);
                    for (i, chunk) in data.chunks_mut(64).enumerate() {
                        let ks = stream.keystream_block(i as u32);
                        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                            *byte ^= k;
                        }
                    }
                    black_box(&mut data);
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("fused_into", size), &size, |b, &size| {
            let src = vec![0xA5u8; size];
            let mut dst = vec![0u8; size];
            b.iter(|| {
                ChaCha20::from_key(&key, &nonce, 0)
                    .apply_keystream_into(black_box(&src), black_box(&mut dst));
            });
        });
        group.bench_with_input(
            BenchmarkId::new("copy_then_xor", size),
            &size,
            |b, &size| {
                let src = vec![0xA5u8; size];
                b.iter(|| {
                    let mut dst = black_box(&src).clone();
                    ChaCha20::from_key(&key, &nonce, 0).apply_keystream(&mut dst);
                    black_box(dst)
                });
            },
        );
    }
    group.finish();
}

fn bench_prp(c: &mut Criterion) {
    let prp = FeistelPrp::new([4u8; 16], 1 << 20).expect("domain valid");
    c.bench_function("feistel_prp_permute_2^20", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = (x + 1) % (1 << 20);
            black_box(prp.permute(black_box(x)).expect("in domain"))
        });
    });
}

criterion_group!(
    benches,
    bench_chacha,
    bench_chacha_batch,
    bench_siphash,
    bench_sealing,
    bench_sealer_key_schedule,
    bench_prp
);
criterion_main!(benches);

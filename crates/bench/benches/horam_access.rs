//! Micro-benchmark of H-ORAM batch processing (host time).
//!
//! Measures host-side cost of pushing a hotspot batch through the full
//! scheduler/cache/storage pipeline — the number that bounds how large a
//! simulated experiment the harness can run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horam::prelude::*;
use horam::workload::WorkloadGenerator;
use std::hint::black_box;

fn bench_horam_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("horam_batch");
    group.sample_size(10);
    for batch in [64usize, 256] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let config = HOramConfig::new(4096, 32, 512).with_seed(77);
            let mut oram = HOram::new(
                config,
                MemoryHierarchy::dac2019(),
                MasterKey::from_bytes([5u8; 32]),
            )
            .expect("builds");
            let mut generator = HotspotWorkload::paper_default(4096, 3);
            let requests = generator.generate(batch);
            b.iter(|| black_box(oram.run_batch(black_box(&requests)).expect("runs")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_horam_batch);
criterion_main!(benches);

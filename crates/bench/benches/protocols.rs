//! Micro-benchmarks of per-access protocol cost (host time).
//!
//! Host-side cost per logical access for each baseline protocol at a fixed
//! size — a regression guard for the simulation's own efficiency (the
//! simulated-time results live in the table binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use horam::crypto::keys::{KeyHierarchy, MasterKey};
use horam::protocols::BlockId;
use horam::protocols::{Oram, PartitionOram, PathOram, PathOramConfig, SquareRootOram};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use std::hint::black_box;

const CAPACITY: u64 = 1024;
const PAYLOAD: usize = 64;

fn bench_path_oram(c: &mut Criterion) {
    let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
    let keys = MasterKey::from_bytes([2u8; 32]).derive("bench/path", 0);
    let mut oram = PathOram::new(PathOramConfig::new(CAPACITY, PAYLOAD), device, &keys).unwrap();
    let mut i = 0u64;
    c.bench_function("path_oram_access_1024", |b| {
        b.iter(|| {
            i = (i + 1) % CAPACITY;
            black_box(oram.read(BlockId(i)).expect("read"))
        });
    });
}

fn bench_square_root(c: &mut Criterion) {
    let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let keys = KeyHierarchy::new(MasterKey::from_bytes([3u8; 32]), "bench/sqrt");
    let mut oram = SquareRootOram::new(CAPACITY, PAYLOAD, device, keys, 1).unwrap();
    let mut i = 0u64;
    c.bench_function("square_root_access_1024", |b| {
        b.iter(|| {
            i = (i + 1) % CAPACITY;
            black_box(oram.read(BlockId(i)).expect("read"))
        });
    });
}

fn bench_partition(c: &mut Criterion) {
    let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
    let keys = KeyHierarchy::new(MasterKey::from_bytes([4u8; 32]), "bench/partition");
    let mut oram = PartitionOram::new(CAPACITY, PAYLOAD, None, device, keys, 1).unwrap();
    let mut i = 0u64;
    c.bench_function("partition_access_1024", |b| {
        b.iter(|| {
            i = (i + 1) % CAPACITY;
            black_box(oram.read(BlockId(i)).expect("read"))
        });
    });
}

criterion_group!(benches, bench_path_oram, bench_square_root, bench_partition);
criterion_main!(benches);

//! Micro-benchmarks comparing the shuffle algorithms.
//!
//! The paper's §3.2 motivates H-ORAM's light partition shuffle by the cost
//! of full oblivious shuffles; these benches quantify that hierarchy:
//! Fisher–Yates < CacheShuffle < Melbourne < bitonic network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use horam::shuffle::ShuffleAlgorithm;
use std::hint::black_box;

fn bench_shuffles(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle");
    for n in [1024usize, 8192] {
        for algorithm in ShuffleAlgorithm::ALL {
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(algorithm.to_string(), n), &n, |b, &n| {
                b.iter(|| {
                    let mut items: Vec<u64> = (0..n as u64).collect();
                    algorithm.shuffle(black_box(&mut items), 42);
                    black_box(items)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shuffles);
criterion_main!(benches);

//! Ablation: the oblivious shuffle used by the tree evict (§4.3.1).
//!
//! The paper requires "an oblivious version of shuffle" for the evict
//! buffer but leaves the algorithm open. DESIGN.md defaults to the bitonic
//! network (clearly oblivious, O(n log² n)); this ablation swaps in each
//! alternative and measures the impact on shuffle-period time.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_evict_shuffle
//! ```

use bench::{BenchArgs, TableParams};
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::shuffle::ShuffleAlgorithm;
use horam::workload::{UniformWorkload, WorkloadGenerator};

fn main() {
    let mut params = TableParams::table_5_3();
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }
    // Miss-heavy traffic so every configuration shuffles repeatedly.
    let mut generator = UniformWorkload::new(params.capacity_blocks, 0.0, params.seed);
    let requests = generator.generate(params.memory_slots as usize);

    println!(
        "Evict-shuffle ablation — {} blocks, {} requests, memory {} slots\n",
        params.capacity_blocks,
        requests.len(),
        params.memory_slots
    );
    let mut table = Table::new(vec![
        "algorithm",
        "oblivious",
        "shuffles",
        "shuffle time",
        "total time",
    ]);

    for algorithm in ShuffleAlgorithm::ALL {
        let config = HOramConfig::new(
            params.capacity_blocks,
            params.payload_len,
            params.memory_slots,
        )
        .with_seed(params.seed)
        .with_evict_shuffle(algorithm);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0x77; 32]),
        )
        .expect("builds");
        oram.run_batch(&requests).expect("runs");
        let stats = oram.stats();
        table.row(vec![
            algorithm.to_string(),
            if algorithm.is_oblivious() {
                "yes".into()
            } else {
                "NO (in-enclave only)".to_string()
            },
            stats.shuffles.to_string(),
            stats.shuffle_wall_time.to_string(),
            stats.total_wall_time().to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape: the evict buffer lives in fast memory, so even the");
    println!("O(n log^2 n) bitonic network adds little next to the storage streaming");
    println!("pass — which is exactly why the paper can afford a fully oblivious evict.");
    println!("(fisher-yates is listed for scale; it must only run inside the enclave.)");
}

//! Ablation (§5.3.2): multi-user sharing of one H-ORAM.
//!
//! The paper argues the flat layout "inherently supports multiple users"
//! because grouped scheduling interleaves their requests at no extra cost.
//! This binary drives 1–16 users, each with an equal slice of a shared
//! request budget, and reports aggregate throughput — flat throughput
//! across user counts is the claim.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_multi_user
//! ```

use bench::{BenchArgs, TableParams};
use horam::analysis::table::Table;
use horam::core::{run_multi_user, UserId};
use horam::prelude::*;
use horam::workload::WorkloadGenerator;

fn main() {
    let mut params = TableParams::table_5_3();
    params.requests = 8_000;
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }

    println!(
        "Multi-user sweep — {} blocks, {} total requests split across users\n",
        params.capacity_blocks, params.requests
    );
    let mut table = Table::new(vec![
        "users",
        "requests/user",
        "wall time",
        "throughput (req/s, simulated)",
    ]);

    for users in [1u32, 2, 4, 8, 16] {
        let config = HOramConfig::new(
            params.capacity_blocks,
            params.payload_len,
            params.memory_slots,
        )
        .with_seed(params.seed);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xCD; 32]),
        )
        .expect("builds");

        let per_user = params.requests / users as usize;
        let queues: Vec<(UserId, Vec<Request>)> = (0..users)
            .map(|u| {
                let mut generator = HotspotWorkload::new(
                    params.capacity_blocks,
                    0.8,
                    (params.memory_slots as f64 / 8.0) / params.capacity_blocks as f64,
                    0.0,
                    0,
                    params.seed ^ u as u64,
                );
                (UserId(u), generator.generate(per_user))
            })
            .collect();

        let report = run_multi_user(&mut oram, queues).expect("runs");
        table.row(vec![
            users.to_string(),
            per_user.to_string(),
            report.wall_time.to_string(),
            format!("{:.0}", report.requests_per_sec),
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper §5.3.2): aggregate throughput stays roughly flat as");
    println!("users are added — the scheduler groups across users exactly as it groups");
    println!("one user's stream (per-user hot sets overlap less, so very high user");
    println!("counts pay a mild cache-dilution penalty).");
}

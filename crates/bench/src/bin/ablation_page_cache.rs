//! Ablation: how an OS page cache changes the measured picture.
//!
//! The paper's testbed has 16 GB of RAM above a ~64 MB–1 GB dataset, so
//! Linux's page cache inevitably filtered its measurements (its shuffle
//! throughput exceeds the drive's raw sequential rate). This ablation
//! re-runs a random-read microworkload against the raw calibrated HDD
//! model and a page-cached variant, quantifying the effect.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_page_cache
//! ```

use horam::analysis::latency::LatencySummary;
use horam::analysis::table::Table;
use horam::crypto::rng::DeterministicRng;
use horam::storage::clock::SimDuration;
use horam::storage::device::{AccessKind, TimingModel};
use horam::storage::hdd::HddModel;
use horam::storage::page_cache::{PageCacheModel, PageCacheParams};
use rand::Rng;

/// Random 1 KB reads over a working set, repeated so a cache can warm.
fn run(model: &mut dyn TimingModel, span_bytes: u64, reads: usize, seed: u64) -> LatencySummary {
    let mut rng = DeterministicRng::from_u64_seed(seed);
    let samples: Vec<SimDuration> = (0..reads)
        .map(|_| {
            let offset = rng.gen_range(0..span_bytes / 1024) * 1024;
            model.access_cost(AccessKind::Read, offset, 1024)
        })
        .collect();
    LatencySummary::of(&samples)
}

fn main() {
    let span: u64 = 64 << 20; // the Table 5-3 region
    let reads = 100_000; // enough to warm the cache past its cold misses

    println!("Page-cache ablation — {reads} random 1 KB reads over a 64 MB region\n");
    let mut table = Table::new(vec!["model", "mean", "p50", "p99", "hit rate"]);

    let mut raw = HddModel::paper_calibrated();
    let summary = run(&mut raw, span, reads, 1);
    table.row(vec![
        "raw HDD (calibrated)".into(),
        summary.mean.to_string(),
        summary.p50.to_string(),
        summary.p99.to_string(),
        "n/a".into(),
    ]);

    let mut cached =
        PageCacheModel::new(HddModel::paper_calibrated(), PageCacheParams::linux_16gb());
    let summary = run(&mut cached, span, reads, 1);
    table.row(vec![
        "HDD + 8 GB page cache".into(),
        summary.mean.to_string(),
        summary.p50.to_string(),
        summary.p99.to_string(),
        format!("{:.0}%", cached.hit_rate() * 100.0),
    ]);

    println!("{table}");
    println!("With the whole 64 MB region cacheable, steady state is pure DRAM service —");
    println!("the regime the paper's fastest measurements (sub-seek 'HDD' latencies and");
    println!("over-raw shuffle throughput) imply. The reproduction's headline tables use");
    println!("the raw calibrated model, which matches the paper's *per-access* numbers;");
    println!("this ablation bounds how much page caching could further compress them.");
}

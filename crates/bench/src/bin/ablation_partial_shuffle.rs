//! Ablation (§5.3.1): the partial-shuffle ratio sweep.
//!
//! The paper proposes shuffling only a fraction `r` of the partitions per
//! period ("one partition is going to shuffle every 4 periods" for
//! r = 1/4), trading shuffle time against redundancy. This binary sweeps
//! `r ∈ {1, 1/2, 1/4, 1/8}` on the Table 5-3 configuration and prints the
//! resulting shuffle/access balance — the "system profiling" the paper
//! says picks the proper ratio.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_partial_shuffle
//! ```

use bench::{BenchArgs, TableParams};
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::workload::{UniformWorkload, WorkloadGenerator};

fn main() {
    let mut params = TableParams::table_5_3();
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }
    // A miss-heavy uniform workload drives one I/O load per request, so
    // each configuration crosses several period boundaries and the sweep
    // actually measures shuffling (hotspot traffic would mostly hit).
    let request_count = (3 * params.memory_slots as usize) / 2;
    let mut generator = UniformWorkload::new(params.capacity_blocks, 0.0, params.seed);
    let requests = generator.generate(request_count);

    println!(
        "Partial-shuffle sweep — {} blocks, {} requests per configuration\n",
        params.capacity_blocks,
        requests.len()
    );
    let mut table = Table::new(vec![
        "ratio r",
        "shuffles",
        "shuffle time",
        "access time",
        "total time",
        "io loads",
    ]);

    for (label, ratio) in [
        ("1 (full)", None),
        ("1/2", Some(0.5)),
        ("1/4", Some(0.25)),
        ("1/8", Some(0.125)),
    ] {
        let mut config = HOramConfig::new(
            params.capacity_blocks,
            params.payload_len,
            params.memory_slots,
        )
        .with_seed(params.seed);
        if let Some(r) = ratio {
            config = config.with_partial_shuffle(r);
        }
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xAB; 32]),
        )
        .expect("builds");
        oram.run_batch(&requests).expect("runs");
        let stats = oram.stats();
        table.row(vec![
            label.into(),
            stats.shuffles.to_string(),
            stats.shuffle_wall_time.to_string(),
            stats.access_wall_time.to_string(),
            stats.total_wall_time().to_string(),
            stats.total_io_loads().to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape (paper §5.3.1): smaller r shrinks per-period shuffle time;");
    println!("the trade-off is more redundancy (fuller window partitions, deferred");
    println!("cold-data refresh), so total time bottoms out at an intermediate r.");
}

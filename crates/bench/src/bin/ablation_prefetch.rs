//! Ablation: the prefetch distance `d` (paper §4.2, Figure 4-2).
//!
//! The scheduler scans `d > c` ROB entries to find a miss to overlap with
//! the current group. Larger `d` finds misses earlier (fewer dummy I/O
//! loads, fewer padded cycles); the paper's example uses d = 3c. This
//! binary sweeps `d` and reports dummy-padding rates.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_prefetch
//! ```

use bench::{BenchArgs, TableParams};
use horam::analysis::table::Table;
use horam::prelude::*;

fn main() {
    let mut params = TableParams::table_5_3();
    params.requests = 10_000;
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }
    let requests = params.workload();

    println!(
        "Prefetch-distance sweep — {} blocks, {} requests, stages c = 1/3/5\n",
        params.capacity_blocks,
        requests.len()
    );
    let mut table = Table::new(vec![
        "d",
        "cycles",
        "dummy mem accesses",
        "dummy io loads",
        "access time",
    ]);

    for d in [6usize, 9, 15, 20, 40] {
        let config = HOramConfig::new(
            params.capacity_blocks,
            params.payload_len,
            params.memory_slots,
        )
        .with_seed(params.seed)
        .with_prefetch_distance(d);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xEF; 32]),
        )
        .expect("builds");
        oram.run_batch(&requests).expect("runs");
        let stats = oram.stats();
        table.row(vec![
            d.to_string(),
            stats.cycles.to_string(),
            stats.dummy_memory_accesses.to_string(),
            stats.dummy_io_loads.to_string(),
            stats.access_wall_time.to_string(),
        ]);
    }
    println!("{table}");
    println!("Expected shape: larger d lowers dummy padding (the scheduler finds real");
    println!("work further ahead) with diminishing returns once d covers the typical");
    println!("distance between misses.");
}

//! Ablation: H-ORAM on SSD instead of the paper's HDD.
//!
//! H-ORAM's design targets the HDD regime where random block reads cost a
//! seek but streaming is fast. An SSD flattens exactly that asymmetry, so
//! this ablation quantifies how much of the paper's advantage survives on
//! flash — the forward-looking question its §5.3 discussion gestures at.
//!
//! ```sh
//! cargo run --release -p bench --bin ablation_ssd
//! ```

use bench::{BenchArgs, TableParams};
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::protocols::{build_tree_top_cache, Oram, PathOramConfig, TreeBackend};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;

fn run_pair(machine: MachineConfig, params: &TableParams) -> (SimDuration, SimDuration) {
    // H-ORAM on this machine.
    let config = HOramConfig::new(
        params.capacity_blocks,
        params.payload_len,
        params.memory_slots,
    )
    .with_seed(params.seed);
    let hierarchy = horam::storage::MemoryHierarchy::new(machine.clone());
    let mut oram =
        HOram::new(config, hierarchy, MasterKey::from_bytes([0x55; 32])).expect("builds");
    let requests = params.workload();
    oram.run_batch(&requests).expect("runs");
    let horam_total = oram.stats().total_wall_time();

    // Baseline on this machine.
    let clock = SimClock::new();
    let (mut baseline, _) = build_tree_top_cache(
        PathOramConfig::new(params.capacity_blocks, params.payload_len),
        params.memory_slots,
        machine.build_memory(clock.clone(), None),
        machine.build_storage(clock, None),
        &MasterKey::from_bytes([0x66; 32]).derive("ssd/ttc", 0),
    )
    .expect("baseline builds");
    baseline
        .bulk_load((0..params.capacity_blocks).map(|i| (BlockId(i), vec![0u8; params.payload_len])))
        .expect("bulk load");
    let (mem_before, st_before) = baseline.backend().stats();
    for request in &requests {
        baseline.access(request).expect("access");
    }
    let (mem, st) = baseline.backend().stats();
    let baseline_total = mem.delta_since(&mem_before).busy + st.delta_since(&st_before).busy;
    (horam_total, baseline_total)
}

fn main() {
    let mut params = TableParams::table_5_3();
    params.requests /= 2; // two machines to run
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }

    println!(
        "Storage-technology ablation — {} blocks, {} requests\n",
        params.capacity_blocks, params.requests
    );
    let mut table = Table::new(vec![
        "machine",
        "H-ORAM total",
        "Path ORAM total",
        "speedup",
    ]);
    for (label, machine) in [
        ("HDD (paper)", MachineConfig::dac2019()),
        ("SSD (2019 SATA)", MachineConfig::dac2019_ssd()),
    ] {
        let (horam_total, baseline_total) = run_pair(machine, &params);
        table.row(vec![
            label.into(),
            horam_total.to_string(),
            baseline_total.to_string(),
            bench::speedup(baseline_total, horam_total),
        ]);
    }
    println!("{table}");
    println!("Finding: the advantage *shifts mechanism* rather than shrinking. On HDD the");
    println!("baseline pays seeks; on SSD it pays random-write amplification on its 16");
    println!("bucket write-backs per request, while H-ORAM's single-block reads and");
    println!("streaming shuffle writes are exactly the patterns flash likes. ORAM write");
    println!("traffic is a known SSD pain point; the cacheable interface sidesteps it.");
}

//! Cache sweep: hit rate versus cache capacity across Zipf skews — and
//! the honest negative result it documents.
//!
//! A conventional block cache converts workload skew into hit rate: the
//! hotter the head of the Zipf distribution, the more a small cache
//! captures. H-ORAM's obliviousness deliberately destroys that signal.
//! Within one access period every storage slot is read at most once
//! (`tests/leakage.rs` pins this down), so a cached slot is never
//! re-read before the next shuffle rewrites the partition — request
//! popularity cannot concentrate physical accesses. Hits come only from
//! the shuffle's own write-through population, which touches every slot
//! uniformly; the steady-state hit rate is therefore ≈ capacity / slots
//! for **every** θ, and only the hit-bound point (capacity ≥ slots)
//! collapses access-period I/O time — the regime `gates::cache_gate`
//! checks in CI.
//!
//! ```sh
//! cargo run --release -p bench --bin cache_sweep [-- --quick]
//! ```

use bench::BenchArgs;
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::storage::cache::CacheConfig;
use horam::workload::{WorkloadGenerator, ZipfWorkload};

const CAPACITY: u64 = 4096;
const MEMORY_SLOTS: u64 = 1024;
const PAYLOAD_LEN: usize = 16;
const WRITE_RATIO: f64 = 0.2;
const SEED: u64 = 0x5EE9;

const THETAS: [f64; 4] = [0.6, 0.8, 0.99, 1.2];

fn run_point(theta: f64, cache_blocks: u64, requests: usize) -> (f64, SimDuration) {
    let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS)
        .with_seed(SEED)
        .with_cache(CacheConfig::lru(cache_blocks));
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x5E; 32]),
    )
    .expect("builds");
    let mut generator =
        ZipfWorkload::new(CAPACITY, theta, WRITE_RATIO, SEED).with_payload_len(PAYLOAD_LEN);
    let trace = generator.generate(requests);
    oram.run_batch(&trace).expect("runs");
    let stats = oram.cache_stats().expect("cache installed");
    (stats.hit_rate(), oram.stats().io_time)
}

fn main() {
    let args = BenchArgs::parse();
    let mut requests = 4_000usize;
    if args.quick {
        requests /= 8;
        println!("(--quick: scaled to 1/8)\n");
    }
    let slots = {
        let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS);
        config.partition_count() * config.partition_slots()
    };
    let sizes = [slots / 64, slots / 16, slots / 4, slots];

    println!(
        "Cache sweep — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, {slots} storage \
         slots, {requests} requests per point, write ratio {WRITE_RATIO}\n"
    );

    let mut header = vec!["cache blocks".to_string(), "of slots".to_string()];
    for theta in THETAS {
        header.push(format!("hit rate θ={theta}"));
    }
    header.push("io busy θ=1.2".into());
    let mut table = Table::new(header.iter().map(String::as_str).collect::<Vec<_>>());

    for &size in &sizes {
        let mut row = vec![
            size.to_string(),
            format!("{:.0}%", size as f64 / slots as f64 * 100.0),
        ];
        let mut last_io = SimDuration::from_nanos(0);
        for theta in THETAS {
            let (hit_rate, io_time) = run_point(theta, size, requests);
            row.push(format!("{:.1}%", hit_rate * 100.0));
            last_io = io_time;
        }
        row.push(last_io.to_string());
        table.row(row);
    }
    println!("{table}");
    println!("Hit rate tracks capacity/slots and is flat across θ: the once-per-period");
    println!("invariant means popularity never reaches the physical access stream, so a");
    println!("partial cache buys little and the hit-bound row is where I/O time collapses.");
    println!("That flatness is itself a leakage check — a skew-correlated hit rate would");
    println!("mean physical accesses correlate with request popularity.");
}

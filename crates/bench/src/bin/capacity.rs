//! Recursive position map: capacity scaling and trusted-memory bounds.
//!
//! Thin wrapper over [`bench::gates::capacity_gate`]: a flat-vs-recursive
//! run at the shared small capacity must be byte-identical on the data
//! bus (responses, trace with timestamps, statistics, simulated clock),
//! and a durable recursive engine at 16× the largest other bench
//! capacity must round-trip a write/read-back sweep, survive
//! snapshot → restore, and hold trusted posmap bytes ≥8× below the flat
//! table with a snapshot bounded by trusted state rather than N. Writes
//! the machine-readable report to `BENCH_capacity.json` (or
//! `--out <path>`) and exits nonzero when the gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin capacity [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{capacity_gate, gate_main};

fn main() {
    gate_main("BENCH_capacity.json", capacity_gate)
}

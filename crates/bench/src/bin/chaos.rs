//! Failure hardening under deterministic fault injection.
//!
//! Thin wrapper over [`bench::gates::chaos_gate`]: the shared Zipf mix
//! is served on a 4-shard engine whose every storage store injects
//! seeded 1 % transient faults, and the run must uphold the end-to-end
//! failure contract — no panics, every ticket resolves to a typed error
//! or a response byte-identical to the fault-free run's, and simulated
//! throughput stays within 10 % of fault-free (capped retry backoff is
//! the only cost). Writes the machine-readable report to
//! `BENCH_chaos.json` (or `--out <path>`) and exits nonzero when the
//! gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin chaos [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{chaos_gate, gate_main};

fn main() {
    gate_main("BENCH_chaos.json", chaos_gate)
}

//! Figure 5-1: theoretical performance gain of H-ORAM over Path ORAM.
//!
//! Regenerates the paper's curves — overhead-reduction factor versus the
//! storage/memory ratio `N/n`, one curve per grouping factor `c`, Z = 4.
//! Both gain metrics are printed because the paper's Eq. 5-4 mixes units
//! (see EXPERIMENTS.md): per-I/O-access (Table 5-1's unit) and per-request
//! (commensurable with the baseline's per-request cost).
//!
//! ```sh
//! cargo run --release -p bench --bin fig_5_1
//! ```

use horam::analysis::gain::paper_sweep;
use horam::analysis::report::ExperimentReport;
use horam::analysis::table::Table;

fn main() {
    // Write cost ratio 1.0: symmetric units, as in the paper's derivation.
    let points = paper_sweep(1.0);
    let ratios = [2u64, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let cs = [1u32, 2, 4, 8, 16];

    println!("Figure 5-1 — theoretical gain over tree-top Path ORAM (Z=4)\n");

    for (title, metric) in [
        ("gain per request", 0),
        ("gain per I/O access (Table 5-1 unit)", 1),
    ] {
        let mut header = vec!["N/n".to_string()];
        header.extend(cs.iter().map(|c| format!("c={c}")));
        let mut table = Table::new(header.iter().map(String::as_str).collect());
        for &ratio in &ratios {
            let mut row = vec![ratio.to_string()];
            for &c in &cs {
                let point = points
                    .iter()
                    .find(|p| p.c == c && p.ratio == ratio)
                    .expect("grid point");
                let value = if metric == 0 {
                    point.gain_per_request
                } else {
                    point.gain_per_io_access
                };
                row.push(format!("{value:.2}"));
            }
            table.row(row);
        }
        println!("{title}:\n{table}");
    }

    // The quotes the paper makes about this figure, versus our model.
    let at = |c: u32, ratio: u64| {
        points
            .iter()
            .find(|p| p.c == c && p.ratio == ratio)
            .expect("point")
    };
    let mut report = ExperimentReport::new(
        "fig-5-1",
        "Theoretical performance gain over Path ORAM",
        "closed-form model, Z=4, sweep c x N/n",
    );
    report.compare(
        "gain at c=4, N/n=8",
        "~8x",
        format!(
            "{:.1}x per request / {:.1}x per I/O access",
            at(4, 8).gain_per_request,
            at(4, 8).gain_per_io_access
        ),
    );
    let best_c4 = points
        .iter()
        .filter(|p| p.c == 4)
        .map(|p| p.gain_per_request)
        .fold(f64::MIN, f64::max);
    let best_c8 = points
        .iter()
        .filter(|p| p.c == 8)
        .map(|p| p.gain_per_request)
        .fold(f64::MIN, f64::max);
    report.compare(
        "best gain",
        "12x or 16x",
        format!("{best_c4:.1}x (c=4) / {best_c8:.1}x (c=8) per request, at N/n=2"),
    );
    report.compare(
        "ideal no-shuffle gain at N/n=8",
        "32x",
        format!("{:.0}x", at(4, 8).gain_ideal),
    );
    report.note(
        "The paper's Eq. 5-4 amortizes the shuffle per I/O access but compares against \
         the baseline's per-request cost; its quoted 8x falls between our two \
         consistently-defined metrics. Shape (higher c => higher gain, decay with N/n) \
         is reproduced by both.",
    );
    println!("{}", report.render());
}

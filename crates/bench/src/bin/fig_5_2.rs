//! Figure 5-2: the non-shuffle (client/server offload) case.
//!
//! The paper's Figure 5-2 sketches the deployment where the shuffle runs
//! entirely on the storage server during idle time, so the *client* pays
//! only access-period cost. This binary measures Table 5-3's workload
//! under both accountings and reports the ideal-case speedups §5.1
//! discusses (up to 32× per I/O access at N/n = 8).
//!
//! ```sh
//! cargo run --release -p bench --bin fig_5_2            # Table 5-3 scale
//! cargo run --release -p bench --bin fig_5_2 -- --quick
//! ```

use bench::{run_horam, run_tree_top_baseline, speedup, BenchArgs, TableParams};
use horam::analysis::model::OramModel;
use horam::analysis::report::ExperimentReport;
use horam::analysis::table::Table;
use horam::storage::clock::SimDuration;

fn main() {
    let mut params = TableParams::table_5_3();
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }

    println!("Figure 5-2 — shuffle-offload (client/server) accounting\n");
    let horam = run_horam(&params);
    let baseline = run_tree_top_baseline(&params);
    let client_time: SimDuration = horam.total_time - horam.shuffle_time;

    let mut table = Table::new(vec!["accounting", "H-ORAM", "Path ORAM", "speedup"]);
    table.row(vec![
        "single machine (total)".into(),
        horam.total_time.to_string(),
        baseline.total_time.to_string(),
        speedup(baseline.total_time, horam.total_time),
    ]);
    table.row(vec![
        "client view (shuffle offloaded)".into(),
        client_time.to_string(),
        baseline.total_time.to_string(),
        speedup(baseline.total_time, client_time),
    ]);
    println!("{table}");

    let model = OramModel::new(params.capacity_blocks, params.memory_slots, 4, 3.94);
    let mut report = ExperimentReport::new(
        "fig-5-2",
        "Non-shuffle (offload) case",
        format!(
            "{} requests on the Table 5-3 configuration",
            params.requests
        ),
    );
    report.compare(
        "ideal per-I/O gain without shuffle (model)",
        "32x",
        format!("{:.0}x", model.gain_ideal_no_shuffle(1.0)),
    );
    report.compare(
        "measured client-view speedup",
        "(not quoted; bounded by 32x)",
        speedup(baseline.total_time, client_time),
    );
    report.note(
        "Client view removes shuffle wall-time only; background server I/O still runs. \
         The paper additionally notes sequential shuffle I/O is ~10-20x faster than \
         random access, which the simulator reproduces (see the HDD model tests).",
    );
    println!("{}", report.render());
}

//! I/O-pipeline ablation: per-block vs batched vs batched+zero-copy.
//!
//! Thin wrapper over [`bench::gates::io_pipeline_gate`]; see that module
//! for the three configurations and the ≥ 1.5× regression threshold.
//! Writes the machine-readable report to `BENCH_io.json` (or
//! `--out <path>`) and exits nonzero when the gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin io_pipeline [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, io_pipeline_gate};

fn main() {
    gate_main("BENCH_io.json", io_pipeline_gate)
}

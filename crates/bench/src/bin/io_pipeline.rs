//! I/O-pipeline ablation: per-block vs batched vs batched+zero-copy.
//!
//! Three configurations of the same H-ORAM instance serve byte-identical
//! request traces:
//!
//! * **per-block** — `io_batch = 1`, legacy (allocating) crypto: every
//!   miss and dummy load is its own device round-trip, `BlockSealer::open`
//!   clones each ciphertext, the shuffle materializes partition images;
//! * **batched** — `io_batch = 32`, legacy crypto: each scheduling window
//!   submits its loads as one queued scatter read, so per-op device
//!   overhead (seek floor, command latency) coalesces;
//! * **batched+zero-copy** — `io_batch = 32` plus the in-place
//!   open/seal pipeline with pooled buffers (host-side win only; the
//!   simulated timing is identical to **batched** by construction).
//!
//! Two workloads: a hit-bound Zipf mix (the serving-layer hot-set case —
//! mostly dummy loads) and a sequential scan (miss-heavy cold sweep).
//! Responses must be byte-identical across modes (the pipeline is a pure
//! timing/host optimization) and the batched+zero-copy configuration must
//! beat per-block simulated I/O time by ≥ 1.5× on the Zipf workload —
//! the run exits nonzero otherwise, and a machine-readable summary lands
//! in `BENCH_io.json` for CI trend tracking.
//!
//! ```sh
//! cargo run --release -p bench --bin io_pipeline [-- --quick]
//! ```

use bench::quick_flag;
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::workload::{SequentialWorkload, WorkloadGenerator, ZipfWorkload};
use std::time::Instant;

const CAPACITY: u64 = 4096;
const MEMORY_SLOTS: u64 = 1024;
const PAYLOAD_LEN: usize = 16;
const IO_BATCH: u64 = 32;
const ZIPF_EXPONENT: f64 = 1.2;
const WRITE_RATIO: f64 = 0.2;
const SEED: u64 = 0x10b1;
const MIN_IO_SPEEDUP: f64 = 1.5;

#[derive(Debug, Clone, Copy, serde::Serialize)]
struct ModeRow {
    mode: &'static str,
    io_batch: u64,
    zero_copy: bool,
    /// Simulated storage occupancy of the access periods' loads, µs.
    sim_io_us: f64,
    /// Mean simulated latency per I/O load, µs.
    mean_io_latency_us: f64,
    /// Simulated end-to-end wall time (access + shuffle), µs.
    sim_wall_us: f64,
    /// Host-side wall clock of the run, ms (allocation/copy ablation).
    host_ms: f64,
}

#[derive(Debug, serde::Serialize)]
struct WorkloadReport {
    workload: &'static str,
    requests: usize,
    modes: Vec<ModeRow>,
    /// per-block simulated I/O time over batched+zero-copy.
    io_speedup: f64,
    /// per-block simulated wall time over batched+zero-copy.
    wall_speedup: f64,
    responses_match: bool,
}

#[derive(Debug, serde::Serialize)]
struct BenchReport {
    bench: &'static str,
    gate_workload: &'static str,
    min_io_speedup: f64,
    pass: bool,
    workloads: Vec<WorkloadReport>,
}

fn run_mode(mode: &'static str, io_batch: u64, zero_copy: bool, requests: &[Request]) -> (ModeRow, Vec<Vec<u8>>) {
    let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS)
        .with_seed(SEED)
        .with_io_batch(io_batch)
        .with_zero_copy_io(zero_copy);
    let mut oram = HOram::new(config, MemoryHierarchy::dac2019(), MasterKey::from_bytes([0xC7; 32]))
        .expect("builds");
    let started = Instant::now();
    let responses = oram.run_batch(requests).expect("runs");
    let host_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = oram.stats();
    let row = ModeRow {
        mode,
        io_batch,
        zero_copy,
        sim_io_us: stats.io_time.as_micros_f64(),
        mean_io_latency_us: stats.mean_io_latency().as_micros_f64(),
        sim_wall_us: stats.total_wall_time().as_micros_f64(),
        host_ms,
    };
    (row, responses)
}

fn run_workload(workload: &'static str, requests: Vec<Request>) -> WorkloadReport {
    let (per_block, base_responses) = run_mode("per-block", 1, false, &requests);
    let (batched, batched_responses) = run_mode("batched", IO_BATCH, false, &requests);
    let (zero_copy, zc_responses) = run_mode("batched+zero-copy", IO_BATCH, true, &requests);
    let responses_match = base_responses == batched_responses && base_responses == zc_responses;
    WorkloadReport {
        workload,
        requests: requests.len(),
        io_speedup: per_block.sim_io_us / zero_copy.sim_io_us.max(f64::MIN_POSITIVE),
        wall_speedup: per_block.sim_wall_us / zero_copy.sim_wall_us.max(f64::MIN_POSITIVE),
        modes: vec![per_block, batched, zero_copy],
        responses_match,
    }
}

fn main() {
    let mut requests = 6_000usize;
    if quick_flag() {
        requests /= 4;
        println!("(--quick: scaled to 1/4)\n");
    }
    println!(
        "I/O pipeline ablation — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, \
         window {IO_BATCH}, {requests} requests per workload\n"
    );

    let zipf_trace = ZipfWorkload::new(CAPACITY, ZIPF_EXPONENT, WRITE_RATIO, SEED)
        .with_payload_len(PAYLOAD_LEN)
        .generate(requests);
    let scan_trace = SequentialWorkload::new(CAPACITY).generate(requests);
    let reports = vec![
        run_workload("zipf-hit-bound", zipf_trace),
        run_workload("sequential-scan", scan_trace),
    ];

    for report in &reports {
        let mut table = Table::new(vec![
            "mode",
            "sim I/O time",
            "mean load",
            "sim wall",
            "host time",
        ]);
        for row in &report.modes {
            table.row(vec![
                row.mode.into(),
                format!("{:.1} ms", row.sim_io_us / 1e3),
                format!("{:.1} µs", row.mean_io_latency_us),
                format!("{:.1} ms", row.sim_wall_us / 1e3),
                format!("{:.1} ms", row.host_ms),
            ]);
        }
        println!("workload: {} ({} requests)", report.workload, report.requests);
        println!("{table}");
        println!(
            "  sim I/O speedup (per-block / batched+zero-copy): {:.2}x   wall: {:.2}x   responses match: {}\n",
            report.io_speedup, report.wall_speedup, report.responses_match
        );
    }

    let gate = &reports[0];
    let pass = gate.io_speedup >= MIN_IO_SPEEDUP && reports.iter().all(|r| r.responses_match);
    let summary = BenchReport {
        bench: "io_pipeline",
        gate_workload: gate.workload,
        min_io_speedup: MIN_IO_SPEEDUP,
        pass,
        workloads: reports,
    };
    let json = serde_json::to_string_pretty(&summary).expect("serializes");
    std::fs::write("BENCH_io.json", &json).expect("writes BENCH_io.json");
    println!("wrote BENCH_io.json");

    if pass {
        println!(
            "OK: batched+zero-copy >= {MIN_IO_SPEEDUP}x simulated I/O speedup on the hit-bound \
             Zipf workload, responses identical across modes."
        );
    } else {
        println!("REGRESSION: pipeline gate failed (see BENCH_io.json).");
        std::process::exit(1);
    }
}

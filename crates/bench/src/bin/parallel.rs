//! Wall-clock parallel engine: threaded shard pump vs the serial path.
//!
//! Thin wrapper over [`bench::gates::parallel_gate`]: the 4-shard Zipf
//! schedule is drained at 1/2/4(/8) worker threads, host wall-clock time
//! is measured per row, and 4 threads must beat 1 thread by ≥ 1.5× on a
//! ≥ 4-core host (the bar scales down with `available_parallelism` —
//! a single-core runner cannot physically show a wall-clock speedup).
//! Byte-identical responses and statistics across thread counts are
//! enforced unconditionally. Writes the machine-readable report to
//! `BENCH_parallel.json` (or `--out <path>`) and exits nonzero when the
//! gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin parallel [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, parallel_gate};

fn main() {
    gate_main("BENCH_parallel.json", parallel_gate)
}

//! Durability/recovery regression gate: snapshot a file-backed engine on
//! the shared Zipf schedule, kill it mid-workload, restore from the
//! snapshot + device file, replay — byte-identical responses, traces,
//! statistics, and clock are required versus the uninterrupted run, and
//! snapshot+restore must stay within a host wall-clock budget. Writes
//! the machine-readable report to `BENCH_persistence.json` (or
//! `--out <path>`) and exits nonzero when the gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin persistence [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, persistence_gate};

fn main() {
    gate_main("BENCH_persistence.json", persistence_gate)
}

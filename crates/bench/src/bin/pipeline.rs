//! Pipelined-cycle-scheduler gate: depth 4 vs the sequential baseline.
//!
//! Thin wrapper over [`bench::gates::pipeline_gate`]; see that module
//! for the depth sweep, the ≥ 1.5× simulated-I/O threshold, and the
//! cross-depth byte-identity checks. Writes the machine-readable report
//! to `BENCH_pipeline.json` (or `--out <path>`) and exits nonzero when
//! the gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin pipeline [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, pipeline_gate};

fn main() {
    gate_main("BENCH_pipeline.json", pipeline_gate)
}

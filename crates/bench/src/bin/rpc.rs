//! Standalone rpc gate binary: real client processes over TCP vs the
//! in-process service (byte-identical, host-scaled throughput floor),
//! then SIGTERM drain → checkpoint → restore → replay on a real server
//! process. Same gate the `suite` binary runs; this wrapper writes
//! `BENCH_rpc.json` and exits nonzero on failure.
//!
//! ```sh
//! cargo run --release -p bench --bin rpc -- [--quick] [--out <path>]
//! ```

use bench::gates::{gate_main, rpc_gate, rpc_role_hook};

fn main() {
    // Worker processes re-exec this binary with the role env var set.
    rpc_role_hook();
    gate_main("BENCH_rpc.json", rpc_gate);
}

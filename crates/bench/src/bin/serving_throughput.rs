//! Serving-layer ablation: batched multi-tenant `OramService` vs the
//! sequential `run_batch` evaluation mode.
//!
//! Thin wrapper over [`bench::gates::serving_gate`]; see that module for
//! the modes and the regression threshold. Writes the machine-readable
//! report to `BENCH_serving.json` (or `--out <path>`) and exits nonzero
//! when the gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin serving_throughput [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, serving_gate};

fn main() {
    gate_main("BENCH_serving.json", serving_gate)
}

//! Serving-layer ablation: batched multi-tenant `OramService` vs the
//! sequential `run_batch` evaluation mode.
//!
//! Three execution modes see the **byte-identical** Zipf arrival
//! sequence, dealt round-robin across the tenants:
//!
//! * **per-request** — every request drained synchronously before the
//!   next is submitted (one blocking caller; the ROB never holds more
//!   than one request, so grouping degenerates to dummy padding);
//! * **sequential run_batch** — the whole trace pushed through
//!   `HOram::run_batch` at once (the paper's single-user evaluation
//!   mode: full grouping, no dedup);
//! * **batched server** — `OramService` pumping fixed-size batches under
//!   an admission policy, coalescing duplicate reads within each batch.
//!
//! The serving layer must meet or beat sequential `run_batch`: it keeps
//! the scheduler's grouping and adds cross-tenant dedup of the shared
//! Zipf hot set. Per-tenant latency and fairness come out per policy.
//!
//! ```sh
//! cargo run --release -p bench --bin serving_throughput [-- --quick]
//! ```

use bench::quick_flag;
use horam::analysis::table::Table;
use horam::core::UserId;
use horam::prelude::*;
use horam::workload::{TenantSchedule, ZipfWorkload};
use horam_server::{
    AdmissionPolicy, DeadlinePolicy, FairSharePolicy, FifoPolicy, OramService, ServiceConfig,
};

const CAPACITY: u64 = 4096;
const MEMORY_SLOTS: u64 = 1024;
const PAYLOAD_LEN: usize = 16;
const TENANTS: u32 = 8;
const BATCH_SIZE: usize = 128;
const ZIPF_EXPONENT: f64 = 1.2;
const WRITE_RATIO: f64 = 0.2;
const SEED: u64 = 0x5e57;

fn fresh_oram() -> HOram {
    let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS).with_seed(SEED);
    HOram::new(config, MemoryHierarchy::dac2019(), MasterKey::from_bytes([0xA5; 32]))
        .expect("builds")
}

fn schedule(requests: usize) -> TenantSchedule {
    let mut generator = ZipfWorkload::new(CAPACITY, ZIPF_EXPONENT, WRITE_RATIO, SEED)
        .with_payload_len(PAYLOAD_LEN);
    TenantSchedule::shard(
        format!("zipf(α={ZIPF_EXPONENT})×{TENANTS} tenants"),
        &mut generator,
        TENANTS,
        requests,
    )
}

fn throughput(requests: usize, wall: SimDuration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    }
}

/// One blocking caller: submit, drain, repeat.
fn run_per_request(requests: &[Request]) -> SimDuration {
    let mut oram = fresh_oram();
    for request in requests {
        oram.run_batch(std::slice::from_ref(request)).expect("runs");
    }
    oram.stats().total_wall_time()
}

/// The paper's evaluation mode: the whole trace as one batch.
fn run_sequential_batch(requests: &[Request]) -> SimDuration {
    let mut oram = fresh_oram();
    oram.run_batch(requests).expect("runs");
    oram.stats().total_wall_time()
}

struct ServerRun {
    wall: SimDuration,
    deduped: u64,
    oram_requests: u64,
    mean_latency: SimDuration,
    worst_tenant_latency: SimDuration,
}

fn run_server(schedule: &TenantSchedule, policy: Box<dyn AdmissionPolicy>) -> ServerRun {
    let mut service = OramService::new(
        fresh_oram(),
        policy,
        ServiceConfig { batch_size: BATCH_SIZE, ..ServiceConfig::default() },
    );
    for tenant in schedule.tenants() {
        service.register_tenant(UserId(tenant), 0..CAPACITY, Permission::ReadWrite);
    }
    let arrivals = schedule
        .arrivals
        .iter()
        .map(|arrival| (UserId(arrival.tenant), arrival.request.clone()));
    let (_tickets, _report) = service.serve_all(arrivals).expect("serves");

    let mut latency_sum = SimDuration::ZERO;
    let mut completed = 0u64;
    let mut worst = SimDuration::ZERO;
    for tenant in schedule.tenants() {
        let stats = service.tenant_stats(UserId(tenant)).expect("registered");
        latency_sum += stats.latency_total;
        completed += stats.completed;
        worst = worst.max(stats.mean_latency());
    }
    ServerRun {
        wall: service.oram().stats().total_wall_time(),
        deduped: service.stats().deduped,
        oram_requests: service.stats().oram.requests,
        mean_latency: if completed == 0 { SimDuration::ZERO } else { latency_sum / completed },
        worst_tenant_latency: worst,
    }
}

use horam::core::Permission;

fn main() {
    let mut requests = 6_000usize;
    if quick_flag() {
        requests /= 8;
        println!("(--quick: scaled to 1/8)\n");
    }
    let schedule = schedule(requests);
    let flat = schedule.to_trace();

    println!(
        "Serving-layer throughput — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, \
         {TENANTS} tenants, batch {BATCH_SIZE}, {} requests ({})\n",
        requests, schedule.label
    );

    let per_request_wall = run_per_request(&flat.requests);
    let sequential_wall = run_sequential_batch(&flat.requests);

    let mut table = Table::new(vec![
        "mode",
        "wall time",
        "throughput (req/s)",
        "oram reqs",
        "deduped",
        "mean latency",
        "worst tenant",
    ]);
    table.row(vec![
        "per-request (sync caller)".into(),
        per_request_wall.to_string(),
        format!("{:.0}", throughput(requests, per_request_wall)),
        requests.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.row(vec![
        "sequential run_batch".into(),
        sequential_wall.to_string(),
        format!("{:.0}", throughput(requests, sequential_wall)),
        requests.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    let mut batched_wall = None;
    for policy in [
        Box::new(FifoPolicy) as Box<dyn AdmissionPolicy>,
        Box::new(FairSharePolicy::default()),
        Box::new(DeadlinePolicy),
    ] {
        let name = policy.name();
        let run = run_server(&schedule, policy);
        if name == "fair-share" {
            batched_wall = Some(run.wall);
        }
        table.row(vec![
            format!("server ({name})"),
            run.wall.to_string(),
            format!("{:.0}", throughput(requests, run.wall)),
            run.oram_requests.to_string(),
            run.deduped.to_string(),
            run.mean_latency.to_string(),
            run.worst_tenant_latency.to_string(),
        ]);
    }
    println!("{table}");

    let batched_wall = batched_wall.expect("fair-share run present");
    let vs_sequential =
        throughput(requests, batched_wall) / throughput(requests, sequential_wall).max(1e-9);
    let vs_per_request =
        throughput(requests, batched_wall) / throughput(requests, per_request_wall).max(1e-9);
    println!("batched server (fair-share) vs sequential run_batch: {vs_sequential:.2}x");
    println!("batched server (fair-share) vs per-request callers:  {vs_per_request:.2}x");
    if vs_sequential >= 1.0 {
        println!("OK: batched serving >= sequential run_batch (dedup of the shared hot set).");
    } else {
        println!("REGRESSION: batched serving fell below sequential run_batch.");
        std::process::exit(1);
    }
}

//! Sharded scale-out: the shard router's aggregate throughput vs a
//! single instance.
//!
//! Thin wrapper over [`bench::gates::sharding_gate`]: the same Zipf
//! tenant schedule is served through `OramService<ShardedOram>` at 1, 2,
//! 4 and 8 shards (same total memory budget), and 4 shards must deliver
//! ≥ 2.5× the single instance's aggregate simulated-I/O throughput with
//! byte-identical responses. Writes the machine-readable report to
//! `BENCH_sharding.json` (or `--out <path>`) and exits nonzero when the
//! gate fails.
//!
//! ```sh
//! cargo run --release -p bench --bin sharding [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{gate_main, sharding_gate};

fn main() {
    gate_main("BENCH_sharding.json", sharding_gate)
}

//! The consolidated CI bench suite: serving + I/O pipeline + sharding +
//! the wall-clock parallel engine.
//!
//! Runs every regression gate in sequence, merges their machine-readable
//! reports into one `BENCH.json` (or `--out <path>`), and exits nonzero
//! if **any** gate fails — CI runs this one binary and uploads the one
//! artifact instead of a step and file per gate.
//!
//! ```sh
//! cargo run --release -p bench --bin suite [-- --quick] [-- --out <path>]
//! ```

use bench::gates::{
    io_pipeline_gate, merge_outcomes, out_path, parallel_gate, serving_gate, sharding_gate,
    write_report,
};
use bench::quick_flag;

fn main() {
    let quick = quick_flag();
    let outcomes = vec![
        serving_gate(quick),
        io_pipeline_gate(quick),
        sharding_gate(quick),
        parallel_gate(quick),
    ];

    let (report, pass) = merge_outcomes(&outcomes);
    for outcome in &outcomes {
        println!(
            "gate {:<12} {}",
            outcome.name,
            if outcome.pass { "PASS" } else { "FAIL" }
        );
    }
    write_report(&out_path("BENCH.json"), &report);
    std::process::exit(if pass { 0 } else { 1 });
}

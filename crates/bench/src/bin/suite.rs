//! The consolidated CI bench suite: serving, the batched I/O pipeline,
//! the pipelined cycle scheduler, sharding, the wall-clock parallel
//! engine, durability/recovery, the oblivious block cache, chaos
//! (failure hardening under fault injection), and capacity (recursive
//! position map at 16× scale).
//!
//! Runs every regression gate in sequence, merges their machine-readable
//! reports into one `BENCH.json` (or `--out <path>`), and exits nonzero
//! if **any** gate fails — CI runs this one binary and uploads the one
//! artifact instead of a step and file per gate.
//!
//! With `--baseline <path>` the fresh report is additionally diffed
//! against a committed one (`BENCH_baseline.json`): the deterministic
//! simulated-time throughput ratios (serving, I/O pipeline, sharding)
//! must not fall more than 25 % below their baseline values. The ratios
//! are pure functions of the simulation, so this check is runner-
//! independent.
//!
//! ```sh
//! cargo run --release -p bench --bin suite -- \
//!     [--quick] [--out <path>] [--baseline BENCH_baseline.json]
//! ```

use bench::gates::{
    baseline_regressions, cache_gate, capacity_gate, chaos_gate, io_pipeline_gate, merge_outcomes,
    parallel_gate, persistence_gate, pipeline_gate, rpc_gate, rpc_role_hook, serving_gate,
    sharding_gate, write_report,
};
use bench::BenchArgs;

/// Trend tolerance: fail on >25 % regression of any tracked ratio.
const TREND_TOLERANCE: f64 = 0.25;

fn main() {
    // The rpc gate re-execs this binary as its worker processes; when
    // the role env var routes us there, run the role and exit.
    rpc_role_hook();
    let args = BenchArgs::parse();
    let outcomes = vec![
        serving_gate(args.quick),
        io_pipeline_gate(args.quick),
        pipeline_gate(args.quick),
        sharding_gate(args.quick),
        parallel_gate(args.quick),
        persistence_gate(args.quick),
        cache_gate(args.quick),
        chaos_gate(args.quick),
        capacity_gate(args.quick),
        rpc_gate(args.quick),
    ];

    let (report, mut pass) = merge_outcomes(&outcomes);
    for outcome in &outcomes {
        println!(
            "gate {:<12} {}",
            outcome.name,
            if outcome.pass { "PASS" } else { "FAIL" }
        );
    }

    if let Some(baseline_path) = &args.baseline {
        let baseline_json = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("reading baseline {}: {e}", baseline_path.display()));
        let baseline: serde::Value = serde_json::from_str(&baseline_json)
            .unwrap_or_else(|e| panic!("parsing baseline {}: {e}", baseline_path.display()));
        let regressions = baseline_regressions(&report, &baseline, TREND_TOLERANCE);
        if regressions.is_empty() {
            println!(
                "trend        PASS (all ratios within {:.0}% of {})",
                TREND_TOLERANCE * 100.0,
                baseline_path.display()
            );
        } else {
            println!("trend        FAIL vs {}:", baseline_path.display());
            for regression in &regressions {
                println!("  {regression}");
            }
            pass = false;
        }
    }

    write_report(&args.out_or("BENCH.json"), &report);
    std::process::exit(if pass { 0 } else { 1 });
}

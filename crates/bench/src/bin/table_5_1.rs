//! Table 5-1: overhead comparison for one period (analytical).
//!
//! 1 GB dataset, 128 MB memory, 1 KB blocks, ĉ = 4 — every row of the
//! paper's table from the closed-form model.
//!
//! ```sh
//! cargo run --release -p bench --bin table_5_1
//! ```

use horam::analysis::period::PeriodOverhead;
use horam::analysis::report::ExperimentReport;

fn main() {
    let overhead = PeriodOverhead::paper_point();
    println!("Table 5-1 — overhead comparison for one period");
    println!("(1 GB data, 128 MB memory, 1 KB block, c-bar = 4)\n");
    println!("{}", overhead.to_table());

    let mut report = ExperimentReport::new(
        "table-5-1",
        "Overhead comparison for one period",
        "analytical; N=2^20 blocks, n=2^17 slots, Z=4, c=4",
    );
    report.compare(
        "Storage/Memory Size (H-ORAM)",
        "1 GB / 128 MB",
        format!(
            "{:.0} GB / {} MB",
            overhead.horam_storage_bytes as f64 / (1u64 << 30) as f64,
            overhead.memory_bytes >> 20
        ),
    );
    report.compare(
        "Storage (Path ORAM)",
        "1.875 GB",
        format!(
            "{:.2} GB (2N-slot tree)",
            overhead.path_storage_bytes as f64 / (1u64 << 30) as f64
        ),
    );
    report.compare(
        "Path ORAM level",
        "16 / 16+4",
        format!(
            "{:.0} / {:.0}+{:.0} (level = log2 of bucket count; the paper counts inclusively)",
            overhead.memory_levels,
            overhead.memory_levels,
            overhead.path_levels - overhead.memory_levels
        ),
    );
    report.compare(
        "Requests Serviced",
        "262144 / 65536",
        format!(
            "{:.0} / {:.0}",
            overhead.horam_requests_per_period, overhead.path_requests_per_period
        ),
    );
    report.compare(
        "Access Overhead",
        "1 KB vs 16+16 KB",
        format!(
            "{:.0} KB vs {:.0}+{:.0} KB",
            overhead.horam_access_read_kb,
            overhead.path_access_kb_each_way,
            overhead.path_access_kb_each_way
        ),
    );
    report.compare(
        "Shuffle Overhead",
        "0.875 GB read + 1 GB write",
        format!(
            "{:.3} GB read + {:.0} GB write",
            overhead.shuffle_read_bytes as f64 / (1u64 << 30) as f64,
            overhead.shuffle_write_bytes as f64 / (1u64 << 30) as f64
        ),
    );
    report.compare(
        "Average Overhead",
        "4.5 KB read + 4 KB write",
        format!(
            "{:.1} KB read + {:.0} KB write",
            overhead.horam_avg_read_kb, overhead.horam_avg_write_kb
        ),
    );
    report.note("Exact agreement: the table is a direct evaluation of the paper's Eqs. 5-2..5-6.");
    println!("{}", report.render());
}

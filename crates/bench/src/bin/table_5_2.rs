//! Table 5-2: experimental machine setup.
//!
//! Prints the simulated machine standing in for the paper's testbed, with
//! the calibration constants the simulator adds (EXPERIMENTS.md records
//! the fit).
//!
//! ```sh
//! cargo run -p bench --bin table_5_2
//! ```

use horam::analysis::table::Table;
use horam::storage::calibration::MachineConfig;

fn main() {
    println!("Table 5-2 — experimental machine setup (simulated substitute)\n");
    let config = MachineConfig::dac2019();
    let mut table = Table::new(vec!["component", "value"]);
    for (key, value) in config.setup_rows() {
        table.row(vec![key, value]);
    }
    println!("{table}");
    println!("Paper's machine: Ubuntu 16.04, Intel i7-7700K, DDR4 PC4-2133 16 GB,");
    println!("HDD 7200RPM 500GB, measured 102.7 MB/s read / 55.2 MB/s write.");
    println!();
    println!("Substitution: a deterministic timing simulator replaces the physical");
    println!("machine (DESIGN.md section 2). Throughputs are the paper's; the seek model");
    println!("(55 us + 1 ms x sqrt(distance/capacity)) is fitted to the paper's measured");
    println!("per-access latencies (77 us @ 64 MB span, 107 us @ 1 GB span).");
}

//! Table 5-3: 64 MB dataset with 25 000 requests (simulated).
//!
//! Drives H-ORAM and the tree-top-cache Path ORAM baseline with the same
//! hotspot trace on the calibrated machine model, and prints the paper's
//! rows side by side with the measured values.
//!
//! ```sh
//! cargo run --release -p bench --bin table_5_3          # full scale
//! cargo run --release -p bench --bin table_5_3 -- --quick
//! ```

use bench::{run_horam, run_tree_top_baseline, speedup, BenchArgs, TableParams};
use horam::analysis::report::ExperimentReport;
use horam::analysis::table::Table;

fn main() {
    let mut params = TableParams::table_5_3();
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }

    println!(
        "Table 5-3 — {} MB dataset, {} requests\n",
        params.capacity_blocks >> 10,
        params.requests
    );
    let horam = run_horam(&params);
    let baseline = run_tree_top_baseline(&params);

    let mut table = Table::new(vec!["", "H-ORAM", "Path ORAM"]);
    table.row(vec![
        "Storage/Memory Size".into(),
        format!(
            "{} MB / {} MB",
            horam.storage_bytes >> 20,
            horam.memory_bytes >> 20
        ),
        format!(
            "{} MB / {} MB",
            baseline.storage_bytes >> 20,
            baseline.memory_bytes >> 20
        ),
    ]);
    table.row(vec![
        "Number of I/O Access".into(),
        horam.io_accesses.to_string(),
        baseline.io_accesses.to_string(),
    ]);
    table.row(vec![
        "I/O Latency".into(),
        horam.io_latency.to_string(),
        baseline.io_latency.to_string(),
    ]);
    table.row(vec![
        "Shuffle Time".into(),
        format!(
            "{} * {}",
            horam.shuffle_time / horam.shuffles.max(1),
            horam.shuffles
        ),
        "N/A".into(),
    ]);
    table.row(vec![
        "Total Time".into(),
        horam.total_time.to_string(),
        baseline.total_time.to_string(),
    ]);
    println!("{table}");

    let mut report = ExperimentReport::new(
        "table-5-3",
        "Small dataset comparison",
        format!(
            "{} blocks x 1 KB, memory {} slots, {} hotspot requests (80% to a cache-sized region)",
            params.capacity_blocks, params.memory_slots, params.requests
        ),
    );
    report.compare(
        "Number of I/O Access",
        "7228 vs 25000",
        format!("{} vs {}", horam.io_accesses, baseline.io_accesses),
    );
    report.compare(
        "I/O Latency",
        "77 us vs 1032 us",
        format!("{} vs {}", horam.io_latency, baseline.io_latency),
    );
    report.compare(
        "Shuffle Time",
        "729 ms * 1",
        format!(
            "{} * {}",
            horam.shuffle_time / horam.shuffles.max(1),
            horam.shuffles
        ),
    );
    report.compare(
        "Total Time",
        "1290 ms vs 25575 ms (19.8x)",
        format!(
            "{} vs {} ({})",
            horam.total_time,
            baseline.total_time,
            speedup(baseline.total_time, horam.total_time)
        ),
    );
    report.note("Simulated machine; payload scaling active (timing charges full 1 KB blocks).");
    println!("{}", report.render());
}

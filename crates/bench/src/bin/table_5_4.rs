//! Table 5-4: 1 GB dataset with 500 000 requests (simulated).
//!
//! The large-scale companion of Table 5-3; expect a few minutes of host
//! time at full scale (`--quick` runs a 1/8-scale smoke test).
//!
//! ```sh
//! cargo run --release -p bench --bin table_5_4          # full scale
//! cargo run --release -p bench --bin table_5_4 -- --quick
//! ```

use bench::{run_horam, run_tree_top_baseline, speedup, BenchArgs, TableParams};
use horam::analysis::report::ExperimentReport;
use horam::analysis::table::Table;

fn main() {
    let mut params = TableParams::table_5_4();
    if BenchArgs::parse().quick {
        params = params.quick();
        println!("(--quick: scaled to 1/8)\n");
    }

    println!(
        "Table 5-4 — {} GB dataset, {} requests\n",
        params.capacity_blocks >> 20,
        params.requests
    );
    let horam = run_horam(&params);
    let baseline = run_tree_top_baseline(&params);

    let mut table = Table::new(vec!["", "H-ORAM", "Path ORAM"]);
    table.row(vec![
        "Storage/Memory Size".into(),
        format!(
            "{:.2} GB / {} MB",
            horam.storage_bytes as f64 / (1u64 << 30) as f64,
            horam.memory_bytes >> 20
        ),
        format!(
            "{:.2} GB / {} MB",
            baseline.storage_bytes as f64 / (1u64 << 30) as f64,
            baseline.memory_bytes >> 20
        ),
    ]);
    table.row(vec![
        "Number of I/O Access".into(),
        horam.io_accesses.to_string(),
        baseline.io_accesses.to_string(),
    ]);
    table.row(vec![
        "I/O Latency".into(),
        horam.io_latency.to_string(),
        baseline.io_latency.to_string(),
    ]);
    table.row(vec![
        "Shuffle Time".into(),
        format!(
            "{} * {}",
            horam.shuffle_time / horam.shuffles.max(1),
            horam.shuffles
        ),
        "N/A".into(),
    ]);
    table.row(vec![
        "Total Time".into(),
        horam.total_time.to_string(),
        baseline.total_time.to_string(),
    ]);
    println!("{table}");

    let mut report = ExperimentReport::new(
        "table-5-4",
        "Large dataset comparison",
        format!(
            "{} blocks x 1 KB, memory {} slots, {} hotspot requests (80% to a cache-sized region)",
            params.capacity_blocks, params.memory_slots, params.requests
        ),
    );
    report.compare(
        "Number of I/O Access",
        "129235 vs 500000",
        format!("{} vs {}", horam.io_accesses, baseline.io_accesses),
    );
    report.compare(
        "I/O Latency",
        "107 us vs 1364 us",
        format!("{} vs {}", horam.io_latency, baseline.io_latency),
    );
    report.compare(
        "Shuffle Time",
        "9743 ms * 2",
        format!(
            "{} * {}",
            horam.shuffle_time / horam.shuffles.max(1),
            horam.shuffles
        ),
    );
    report.compare(
        "Total Time",
        "29657 ms vs 682041 ms (22.9x)",
        format!(
            "{} vs {} ({})",
            horam.total_time,
            baseline.total_time,
            speedup(baseline.total_time, horam.total_time)
        ),
    );
    report.note("Simulated machine; payload scaling active (timing charges full 1 KB blocks).");
    println!("{}", report.render());
}

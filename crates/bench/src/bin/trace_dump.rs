//! Utility: run a workload and dump the adversary's bus trace.
//!
//! Produces the raw material of the security analysis as an artifact:
//! every observable bus event of an H-ORAM run (JSON), plus the summary
//! statistics the leakage tests compute — shape, per-device histograms,
//! serial correlation of the storage-read address sequence.
//!
//! ```sh
//! cargo run --release -p bench --bin trace_dump -- [--out <path>]
//! ```

use horam::analysis::autocorr::{serial_correlation, zero_correlation_band};
use horam::analysis::leakage::TraceShape;
use horam::analysis::table::Table;
use horam::prelude::*;
use horam::storage::calibration::device_ids;
use horam::storage::device::AccessKind;
use horam::workload::WorkloadGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_path = bench::BenchArgs::parse().out_or("trace.json");

    // A small but period-crossing run.
    let config = HOramConfig::new(4096, 32, 512).with_seed(99);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0x11; 32]),
    )?;
    let mut generator = HotspotWorkload::paper_default(4096, 12);
    let requests = generator.generate(2_000);
    oram.run_batch(&requests)?;

    let events = oram.trace().snapshot();
    std::fs::write(&out_path, serde_json::to_string_pretty(&events)?)?;
    println!(
        "wrote {} bus events to {}\n",
        events.len(),
        out_path.display()
    );

    // Shape summary.
    let shape = TraceShape::of(&events);
    let mut table = Table::new(vec![
        "device",
        "reads",
        "writes",
        "bytes read",
        "bytes written",
    ]);
    for ((device, reads, writes), (_, bytes_read, bytes_written)) in
        shape.ops_per_device.iter().zip(&shape.bytes_per_device)
    {
        table.row(vec![
            device.to_string(),
            reads.to_string(),
            writes.to_string(),
            bytes_read.to_string(),
            bytes_written.to_string(),
        ]);
    }
    println!("{table}");

    // Serial correlation of storage read addresses (block-granular loads
    // only; streaming shuffle runs are deterministic sweeps by design).
    let loads: Vec<u64> = events
        .iter()
        .filter(|e| {
            e.device == device_ids::STORAGE && e.kind == AccessKind::Read && e.bytes <= 1024
        })
        .map(|e| e.addr)
        .collect();
    match serial_correlation(&loads, 1) {
        Some(r) => {
            let band = zero_correlation_band(loads.len());
            println!(
                "storage-load serial correlation (lag 1): {r:+.4} over {} loads (|r| < {band:.4} ⇒ clean)",
                loads.len()
            );
            if r.abs() < band {
                println!("verdict: consistent with zero — no sequential structure leaks");
            } else {
                println!("verdict: CORRELATED — investigate the permutation layer!");
            }
        }
        None => println!("not enough block loads for correlation analysis"),
    }
    Ok(())
}

//! The CI bench gates — serving, I/O pipeline, pipelined cycle
//! scheduler, sharding, wall-clock parallel engine, durability/recovery,
//! oblivious block cache, fault-injection chaos, recursive-posmap
//! capacity — as library functions.
//!
//! Each gate runs a deterministic simulated experiment, prints the
//! human-readable comparison table, and returns a [`GateOutcome`]: a
//! machine-readable report (a `serde` value tree, serialized to JSON by
//! the binaries) plus the pass/fail verdict CI keys on. The per-gate
//! binaries (`serving_throughput`, `io_pipeline`, `sharding`,
//! `parallel`, `persistence`) are thin wrappers over these functions;
//! the consolidated `suite` binary runs all of them, merges their reports
//! into one `BENCH.json` artifact, and (with `--baseline`) diffs the
//! deterministic throughput ratios against the committed
//! `BENCH_baseline.json` ([`baseline_regressions`]), so CI has a single
//! gate step and a single trend file. The `parallel` and `persistence`
//! gates are the ones measuring *host* wall-clock time (`Instant`);
//! everything else stays on the simulated clock.

use crate::BenchArgs;
use horam::analysis::table::Table;
use horam::core::shard::{ShardedConfig, ShardedOram};
use horam::core::{Permission, UserId};
use horam::prelude::*;
use horam::workload::{SequentialWorkload, TenantSchedule, WorkloadGenerator, ZipfWorkload};
use horam_server::{
    AdmissionPolicy, DeadlinePolicy, FairSharePolicy, FifoPolicy, OramService, ServiceConfig,
};
use serde::{Serialize, Value};
use std::time::Instant;

/// One gate's verdict and machine-readable report.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Gate identifier (`serving`, `io_pipeline`, `sharding`).
    pub name: &'static str,
    /// Whether the gate's regression threshold held.
    pub pass: bool,
    /// The full report, ready for JSON serialization.
    pub report: Value,
}

/// Merges gate outcomes into the consolidated suite report: one JSON
/// object with the overall verdict and every gate's report under its
/// name. Returns the report and whether every gate passed.
pub fn merge_outcomes(outcomes: &[GateOutcome]) -> (Value, bool) {
    let pass = outcomes.iter().all(|o| o.pass);
    let gates: Vec<Value> = outcomes
        .iter()
        .map(|o| {
            Value::Map(vec![
                ("gate".into(), Value::Str(o.name.into())),
                ("pass".into(), Value::Bool(o.pass)),
                ("report".into(), o.report.clone()),
            ])
        })
        .collect();
    let report = Value::Map(vec![
        ("bench".into(), Value::Str("suite".into())),
        ("pass".into(), Value::Bool(pass)),
        ("gates".into(), Value::Seq(gates)),
    ]);
    (report, pass)
}

/// Serializes `report` to pretty JSON at `path`.
///
/// # Panics
///
/// Panics if the file cannot be written (CI treats that as a failed
/// gate run).
pub fn write_report(path: &std::path::Path, report: &Value) {
    let json = serde_json::to_string_pretty(report).expect("serializes");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writes {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// Runs one gate binary's standard main: gate, report file, exit code.
///
/// Parses the shared [`BenchArgs`] flags (`--quick`, `--out`); exits
/// nonzero when the gate fails, after writing the report either way.
pub fn gate_main(default_out: &str, gate: impl FnOnce(bool) -> GateOutcome) -> ! {
    let args = BenchArgs::parse();
    let outcome = gate(args.quick);
    write_report(&args.out_or(default_out), &outcome.report);
    std::process::exit(if outcome.pass { 0 } else { 1 });
}

/// The deterministic trend metrics of a merged suite report: the
/// simulated-time throughput ratios each gate computes. These are pure
/// functions of the simulation (no host wall-clock enters them), so a
/// fresh run on any machine must reproduce the committed baseline within
/// noise-free equality — the trend job fails on >25 % regression.
pub fn trend_metrics(suite_report: &Value) -> Vec<(String, f64)> {
    fn ratio(value: &Value) -> Option<f64> {
        match value {
            Value::Num(serde::Number::F(f)) => Some(*f),
            Value::Num(serde::Number::U(u)) => Some(*u as f64),
            Value::Num(serde::Number::I(i)) => Some(*i as f64),
            _ => None,
        }
    }
    let mut metrics = Vec::new();
    let Ok(gates) = suite_report.field("gates").and_then(Value::as_seq) else {
        return metrics;
    };
    for gate in gates {
        let Ok(name) = gate.field("gate").and_then(Value::as_str) else {
            continue;
        };
        let Ok(report) = gate.field("report") else {
            continue;
        };
        let keys: &[&str] = match name {
            "serving" => &["vs_sequential", "vs_per_request"],
            "pipeline" => &["io_speedup"],
            "sharding" => &["io_speedup", "wall_speedup"],
            "cache" => &["io_speedup"],
            "chaos" => &["throughput_ratio"],
            "capacity" => &["throughput_ratio", "trusted_shrink", "snapshot_shrink"],
            // `parallel` measures host wall-clock; `persistence` gates on
            // equality, not a ratio — neither belongs in the trend file.
            _ => &[],
        };
        for key in keys {
            if let Some(v) = report.field(key).ok().and_then(ratio) {
                metrics.push((format!("{name}.{key}"), v));
            }
        }
        // The io_pipeline report nests its ratios per workload row; track
        // every row's pair under `io_pipeline.<workload>.<key>`.
        if name == "io_pipeline" {
            let rows = report
                .field("workloads")
                .and_then(Value::as_seq)
                .unwrap_or(&[]);
            for row in rows {
                let Ok(workload) = row.field("workload").and_then(Value::as_str) else {
                    continue;
                };
                for key in ["io_speedup", "wall_speedup"] {
                    if let Some(v) = row.field(key).ok().and_then(ratio) {
                        metrics.push((format!("{name}.{workload}.{key}"), v));
                    }
                }
            }
        }
    }
    metrics
}

/// Diffs a fresh suite report against a committed baseline: any tracked
/// throughput ratio that fell below `(1 - tolerance)` of its baseline
/// value is a regression. Metrics present in only one report are
/// reported too (a silently vanished gate is a regression of the CI
/// itself).
pub fn baseline_regressions(fresh: &Value, baseline: &Value, tolerance: f64) -> Vec<String> {
    let fresh_metrics = trend_metrics(fresh);
    let baseline_metrics = trend_metrics(baseline);
    let mut regressions = Vec::new();
    for (name, base) in &baseline_metrics {
        match fresh_metrics.iter().find(|(n, _)| n == name) {
            None => regressions.push(format!("metric {name} missing from fresh report")),
            Some((_, now)) if *now < base * (1.0 - tolerance) => {
                regressions.push(format!(
                    "{name} regressed: {now:.3} vs baseline {base:.3} \
                     (allowed floor {:.3})",
                    base * (1.0 - tolerance)
                ));
            }
            Some(_) => {}
        }
    }
    for (name, _) in &fresh_metrics {
        if !baseline_metrics.iter().any(|(n, _)| n == name) {
            regressions.push(format!(
                "metric {name} absent from the baseline — re-commit BENCH_baseline.json"
            ));
        }
    }
    regressions
}

// Shared workload shape: every gate drives the same simulated machine
// and the same hit-bound Zipf mix, so their numbers are comparable and
// cannot drift apart. Seeds and thresholds stay per-gate.
const CAPACITY: u64 = 4096;
const MEMORY_SLOTS: u64 = 1024;
const PAYLOAD_LEN: usize = 16;
const TENANTS: u32 = 8;
const BATCH_SIZE: usize = 128;
const ZIPF_EXPONENT: f64 = 1.2;
const WRITE_RATIO: f64 = 0.2;

/// The shared multi-tenant arrival sequence: `requests` Zipf draws dealt
/// round-robin across the tenants.
fn zipf_schedule(requests: usize, seed: u64) -> TenantSchedule {
    let mut generator =
        ZipfWorkload::new(CAPACITY, ZIPF_EXPONENT, WRITE_RATIO, seed).with_payload_len(PAYLOAD_LEN);
    TenantSchedule::shard(
        format!("zipf(α={ZIPF_EXPONENT})×{TENANTS} tenants"),
        &mut generator,
        TENANTS,
        requests,
    )
}

fn throughput(requests: usize, wall: SimDuration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    }
}

// ------------------------------------------------------------- serving

mod serving {
    use super::*;

    const SEED: u64 = 0x5e57;

    #[derive(Debug, Clone, Serialize)]
    struct ModeRow {
        mode: String,
        sim_wall_us: f64,
        /// Host-side wall clock of the mode's run, ms (`Instant`-based).
        wall_ms: f64,
        throughput_rps: f64,
        oram_requests: u64,
        deduped: u64,
        mean_latency_us: f64,
        worst_tenant_latency_us: f64,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        tenants: u32,
        batch_size: usize,
        pass: bool,
        /// fair-share server throughput over sequential `run_batch`.
        vs_sequential: f64,
        /// fair-share server throughput over per-request callers.
        vs_per_request: f64,
        modes: Vec<ModeRow>,
    }

    fn fresh_oram() -> HOram {
        let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS).with_seed(SEED);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xA5; 32]),
        )
        .expect("builds")
    }

    /// One blocking caller: submit, drain, repeat.
    fn run_per_request(requests: &[Request]) -> (SimDuration, f64) {
        let mut oram = fresh_oram();
        let started = Instant::now();
        for request in requests {
            oram.run_batch(std::slice::from_ref(request)).expect("runs");
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        (oram.stats().total_wall_time(), wall_ms)
    }

    /// The paper's evaluation mode: the whole trace as one batch.
    fn run_sequential_batch(requests: &[Request]) -> (SimDuration, f64) {
        let mut oram = fresh_oram();
        let started = Instant::now();
        oram.run_batch(requests).expect("runs");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        (oram.stats().total_wall_time(), wall_ms)
    }

    struct ServerRun {
        wall: SimDuration,
        wall_ms: f64,
        deduped: u64,
        oram_requests: u64,
        mean_latency: SimDuration,
        worst_tenant_latency: SimDuration,
    }

    fn run_server(schedule: &TenantSchedule, policy: Box<dyn AdmissionPolicy>) -> ServerRun {
        let mut service = OramService::new(
            fresh_oram(),
            policy,
            ServiceConfig {
                batch_size: BATCH_SIZE,
                ..ServiceConfig::default()
            },
        );
        for tenant in schedule.tenants() {
            service.register_tenant(UserId(tenant), 0..CAPACITY, Permission::ReadWrite);
        }
        let arrivals = schedule
            .arrivals
            .iter()
            .map(|arrival| (UserId(arrival.tenant), arrival.request.clone()));
        let started = Instant::now();
        let (_tickets, _report) = service.serve_all(arrivals).expect("serves");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;

        let mut latency_sum = SimDuration::ZERO;
        let mut completed = 0u64;
        let mut worst = SimDuration::ZERO;
        for tenant in schedule.tenants() {
            let stats = service.tenant_stats(UserId(tenant)).expect("registered");
            latency_sum += stats.latency_total;
            completed += stats.completed;
            worst = worst.max(stats.mean_latency());
        }
        ServerRun {
            wall: service.oram().stats().total_wall_time(),
            wall_ms,
            deduped: service.stats().deduped,
            oram_requests: service.stats().oram.requests,
            mean_latency: if completed == 0 {
                SimDuration::ZERO
            } else {
                latency_sum / completed
            },
            worst_tenant_latency: worst,
        }
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 8;
            println!("(--quick: scaled to 1/8)\n");
        }
        let schedule = zipf_schedule(requests, SEED);
        let flat = schedule.to_trace();

        println!(
            "Serving-layer throughput — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, \
             {TENANTS} tenants, batch {BATCH_SIZE}, {} requests ({})\n",
            requests, schedule.label
        );

        let (per_request_wall, per_request_ms) = run_per_request(&flat.requests);
        let (sequential_wall, sequential_ms) = run_sequential_batch(&flat.requests);
        let mut modes = vec![
            ModeRow {
                mode: "per-request (sync caller)".into(),
                sim_wall_us: per_request_wall.as_micros_f64(),
                wall_ms: per_request_ms,
                throughput_rps: throughput(requests, per_request_wall),
                oram_requests: requests as u64,
                deduped: 0,
                mean_latency_us: 0.0,
                worst_tenant_latency_us: 0.0,
            },
            ModeRow {
                mode: "sequential run_batch".into(),
                sim_wall_us: sequential_wall.as_micros_f64(),
                wall_ms: sequential_ms,
                throughput_rps: throughput(requests, sequential_wall),
                oram_requests: requests as u64,
                deduped: 0,
                mean_latency_us: 0.0,
                worst_tenant_latency_us: 0.0,
            },
        ];

        let mut table = Table::new(vec![
            "mode",
            "wall time",
            "throughput (req/s)",
            "oram reqs",
            "deduped",
            "mean latency",
            "worst tenant",
        ]);
        table.row(vec![
            "per-request (sync caller)".into(),
            per_request_wall.to_string(),
            format!("{:.0}", throughput(requests, per_request_wall)),
            requests.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        table.row(vec![
            "sequential run_batch".into(),
            sequential_wall.to_string(),
            format!("{:.0}", throughput(requests, sequential_wall)),
            requests.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);

        let mut batched_wall = None;
        for policy in [
            Box::new(FifoPolicy) as Box<dyn AdmissionPolicy>,
            Box::new(FairSharePolicy::default()),
            Box::new(DeadlinePolicy),
        ] {
            let name = policy.name();
            let run = run_server(&schedule, policy);
            if name == "fair-share" {
                batched_wall = Some(run.wall);
            }
            table.row(vec![
                format!("server ({name})"),
                run.wall.to_string(),
                format!("{:.0}", throughput(requests, run.wall)),
                run.oram_requests.to_string(),
                run.deduped.to_string(),
                run.mean_latency.to_string(),
                run.worst_tenant_latency.to_string(),
            ]);
            modes.push(ModeRow {
                mode: format!("server ({name})"),
                sim_wall_us: run.wall.as_micros_f64(),
                wall_ms: run.wall_ms,
                throughput_rps: throughput(requests, run.wall),
                oram_requests: run.oram_requests,
                deduped: run.deduped,
                mean_latency_us: run.mean_latency.as_micros_f64(),
                worst_tenant_latency_us: run.worst_tenant_latency.as_micros_f64(),
            });
        }
        println!("{table}");

        let batched_wall = batched_wall.expect("fair-share run present");
        let vs_sequential =
            throughput(requests, batched_wall) / throughput(requests, sequential_wall).max(1e-9);
        let vs_per_request =
            throughput(requests, batched_wall) / throughput(requests, per_request_wall).max(1e-9);
        println!("batched server (fair-share) vs sequential run_batch: {vs_sequential:.2}x");
        println!("batched server (fair-share) vs per-request callers:  {vs_per_request:.2}x");
        let pass = vs_sequential >= 1.0;
        if pass {
            println!(
                "OK: batched serving >= sequential run_batch (dedup of the shared hot set).\n"
            );
        } else {
            println!("REGRESSION: batched serving fell below sequential run_batch.\n");
        }

        let report = Report {
            bench: "serving",
            requests,
            tenants: TENANTS,
            batch_size: BATCH_SIZE,
            pass,
            vs_sequential,
            vs_per_request,
            modes,
        };
        GateOutcome {
            name: "serving",
            pass,
            report: report.to_value(),
        }
    }
}

/// The serving-layer gate: the batched multi-tenant server must meet or
/// beat sequential `run_batch` on the shared-hot-set Zipf schedule.
pub fn serving_gate(quick: bool) -> GateOutcome {
    serving::gate(quick)
}

// --------------------------------------------------------- io_pipeline

mod io_pipeline {
    use super::*;

    const IO_BATCH: u64 = 32;
    const SEED: u64 = 0x10b1;
    const MIN_IO_SPEEDUP: f64 = 1.5;

    #[derive(Debug, Clone, Copy, Serialize)]
    struct ModeRow {
        mode: &'static str,
        io_batch: u64,
        zero_copy: bool,
        /// Simulated storage occupancy of the access periods' loads, µs.
        sim_io_us: f64,
        /// Mean simulated latency per I/O load, µs.
        mean_io_latency_us: f64,
        /// Simulated end-to-end wall time (access + shuffle), µs.
        sim_wall_us: f64,
        /// Host-side wall clock of the run, ms (allocation/copy ablation).
        host_ms: f64,
    }

    #[derive(Debug, Serialize)]
    struct WorkloadReport {
        workload: &'static str,
        requests: usize,
        modes: Vec<ModeRow>,
        /// per-block simulated I/O time over batched+zero-copy.
        io_speedup: f64,
        /// per-block simulated wall time over batched+zero-copy.
        wall_speedup: f64,
        responses_match: bool,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        gate_workload: &'static str,
        min_io_speedup: f64,
        pass: bool,
        workloads: Vec<WorkloadReport>,
    }

    fn run_mode(
        mode: &'static str,
        io_batch: u64,
        zero_copy: bool,
        requests: &[Request],
    ) -> (ModeRow, Vec<Vec<u8>>) {
        let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(io_batch)
            .with_zero_copy_io(zero_copy);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xC7; 32]),
        )
        .expect("builds");
        let started = Instant::now();
        let responses = oram.run_batch(requests).expect("runs");
        let host_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = oram.stats();
        let row = ModeRow {
            mode,
            io_batch,
            zero_copy,
            sim_io_us: stats.io_time.as_micros_f64(),
            mean_io_latency_us: stats.mean_io_latency().as_micros_f64(),
            sim_wall_us: stats.total_wall_time().as_micros_f64(),
            host_ms,
        };
        (row, responses)
    }

    fn run_workload(workload: &'static str, requests: Vec<Request>) -> WorkloadReport {
        let (per_block, base_responses) = run_mode("per-block", 1, false, &requests);
        let (batched, batched_responses) = run_mode("batched", IO_BATCH, false, &requests);
        let (zero_copy, zc_responses) = run_mode("batched+zero-copy", IO_BATCH, true, &requests);
        let responses_match = base_responses == batched_responses && base_responses == zc_responses;
        WorkloadReport {
            workload,
            requests: requests.len(),
            io_speedup: per_block.sim_io_us / zero_copy.sim_io_us.max(f64::MIN_POSITIVE),
            wall_speedup: per_block.sim_wall_us / zero_copy.sim_wall_us.max(f64::MIN_POSITIVE),
            modes: vec![per_block, batched, zero_copy],
            responses_match,
        }
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 4;
            println!("(--quick: scaled to 1/4)\n");
        }
        println!(
            "I/O pipeline ablation — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, \
             window {IO_BATCH}, {requests} requests per workload\n"
        );

        let zipf_trace = ZipfWorkload::new(CAPACITY, ZIPF_EXPONENT, WRITE_RATIO, SEED)
            .with_payload_len(PAYLOAD_LEN)
            .generate(requests);
        let scan_trace = SequentialWorkload::new(CAPACITY).generate(requests);
        let reports = vec![
            run_workload("zipf-hit-bound", zipf_trace),
            run_workload("sequential-scan", scan_trace),
        ];

        for report in &reports {
            let mut table = Table::new(vec![
                "mode",
                "sim I/O time",
                "mean load",
                "sim wall",
                "host time",
            ]);
            for row in &report.modes {
                table.row(vec![
                    row.mode.into(),
                    format!("{:.1} ms", row.sim_io_us / 1e3),
                    format!("{:.1} µs", row.mean_io_latency_us),
                    format!("{:.1} ms", row.sim_wall_us / 1e3),
                    format!("{:.1} ms", row.host_ms),
                ]);
            }
            println!(
                "workload: {} ({} requests)",
                report.workload, report.requests
            );
            println!("{table}");
            println!(
                "  sim I/O speedup (per-block / batched+zero-copy): {:.2}x   wall: {:.2}x   \
                 responses match: {}\n",
                report.io_speedup, report.wall_speedup, report.responses_match
            );
        }

        let gate = &reports[0];
        let pass = gate.io_speedup >= MIN_IO_SPEEDUP && reports.iter().all(|r| r.responses_match);
        if pass {
            println!(
                "OK: batched+zero-copy >= {MIN_IO_SPEEDUP}x simulated I/O speedup on the \
                 hit-bound Zipf workload, responses identical across modes.\n"
            );
        } else {
            println!("REGRESSION: pipeline gate failed.\n");
        }
        let report = Report {
            bench: "io_pipeline",
            gate_workload: gate.workload,
            min_io_speedup: MIN_IO_SPEEDUP,
            pass,
            workloads: reports,
        };
        GateOutcome {
            name: "io_pipeline",
            pass,
            report: report.to_value(),
        }
    }
}

/// The I/O-pipeline gate: batched+zero-copy must keep ≥ 1.5× simulated
/// I/O speedup over the per-block path, with byte-identical responses.
pub fn io_pipeline_gate(quick: bool) -> GateOutcome {
    io_pipeline::gate(quick)
}

// ------------------------------------------------------------ pipeline

mod pipeline {
    use super::*;
    use horam::core::HOramStats;

    const SEED: u64 = 0x991e;
    const IO_BATCH: u64 = 16;
    const DEPTHS: [u64; 3] = [1, 2, 4];
    const GATE_DEPTH: u64 = 4;
    const MIN_IO_SPEEDUP: f64 = 1.5;

    /// The host wall-clock bar for the overlapped path, scaled to the
    /// runner. The pipeline's host win comes from overlapping the
    /// decrypt+verify of a committed window with planning the next ones,
    /// which needs a second core; on a single core the gate degrades to
    /// an overhead bound (lookahead bookkeeping may not be
    /// pathologically slower), while the determinism half — byte-
    /// identical responses, stats, and simulated clock at every depth —
    /// is enforced everywhere, unconditionally.
    fn min_wall_ratio(cores: usize) -> f64 {
        if cores >= 2 {
            0.9
        } else {
            0.5
        }
    }

    #[derive(Debug, Clone, Serialize)]
    struct DepthRow {
        depth: u64,
        io_batch: u64,
        /// Simulated storage occupancy of the access periods' loads, µs.
        sim_io_us: f64,
        /// Simulated end-to-end wall time (access + shuffle), µs.
        sim_wall_us: f64,
        /// Host-side wall clock of the run, ms.
        host_ms: f64,
        /// Windows planned while an earlier window's commit was open.
        planned_ahead_windows: u64,
        /// Deterministic lookahead stalls at period boundaries.
        period_stalls: u64,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        io_batch: u64,
        gate_depth: u64,
        available_parallelism: usize,
        min_io_speedup: f64,
        /// Sequential (per-block, depth 1) sim I/O time over the
        /// pipelined (windowed, depth 4) configuration.
        io_speedup: f64,
        min_wall_ratio: f64,
        /// host_ms(depth 1) / host_ms(depth 4) at the windowed batch.
        wall_ratio: f64,
        responses_match: bool,
        stats_match: bool,
        clocks_match: bool,
        lookahead_engaged: bool,
        pass: bool,
        rows: Vec<DepthRow>,
    }

    fn run_depth(
        requests: &[Request],
        io_batch: u64,
        depth: u64,
    ) -> (DepthRow, Vec<Vec<u8>>, HOramStats, u64) {
        let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(io_batch)
            .with_pipeline_depth(depth);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xD3; 32]),
        )
        .expect("builds");
        let started = Instant::now();
        let responses = oram.run_batch(requests).expect("runs");
        let host_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = oram.stats();
        let pipeline = oram.pipeline_stats();
        let row = DepthRow {
            depth,
            io_batch,
            sim_io_us: stats.io_time.as_micros_f64(),
            sim_wall_us: stats.total_wall_time().as_micros_f64(),
            host_ms,
            planned_ahead_windows: pipeline.planned_ahead_windows,
            period_stalls: pipeline.period_stalls,
        };
        let clock = oram.clock().now().as_nanos();
        (row, responses, stats, clock)
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 4;
            println!("(--quick: scaled to 1/4)\n");
        }
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let wall_threshold = min_wall_ratio(cores);
        println!(
            "Pipelined cycle scheduler — {CAPACITY} blocks, {MEMORY_SLOTS} memory slots, \
             window {IO_BATCH}, depths 1/2/4, {requests} requests, {cores} host core(s)\n"
        );

        let trace = ZipfWorkload::new(CAPACITY, ZIPF_EXPONENT, WRITE_RATIO, SEED)
            .with_payload_len(PAYLOAD_LEN)
            .generate(requests);

        // The sequential baseline the paper-era scheduler ran: one load
        // per window, no lookahead.
        let (sequential, _, _, _) = run_depth(&trace, 1, 1);

        // The pipelined stack at the windowed batch, swept over depth.
        let mut rows = vec![sequential];
        let mut responses: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut stats: Vec<HOramStats> = Vec::new();
        let mut clocks: Vec<u64> = Vec::new();
        for depth in DEPTHS {
            let (row, response, stat, clock) = run_depth(&trace, IO_BATCH, depth);
            rows.push(row);
            responses.push(response);
            stats.push(stat);
            clocks.push(clock);
        }

        let responses_match = responses.iter().all(|r| r == &responses[0]);
        let stats_match = stats.iter().all(|s| s == &stats[0]);
        let clocks_match = clocks.iter().all(|c| c == &clocks[0]);
        let gate_row = rows
            .iter()
            .find(|r| r.depth == GATE_DEPTH && r.io_batch == IO_BATCH)
            .expect("gate depth measured");
        let depth_one = rows
            .iter()
            .find(|r| r.depth == 1 && r.io_batch == IO_BATCH)
            .expect("windowed depth-1 row measured");
        let io_speedup = rows[0].sim_io_us / gate_row.sim_io_us.max(f64::MIN_POSITIVE);
        let wall_ratio = depth_one.host_ms / gate_row.host_ms.max(f64::MIN_POSITIVE);
        let lookahead_engaged = gate_row.planned_ahead_windows > 0;

        let mut table = Table::new(vec![
            "depth",
            "window",
            "sim I/O time",
            "sim wall",
            "host time",
            "planned ahead",
            "period stalls",
        ]);
        for row in &rows {
            table.row(vec![
                row.depth.to_string(),
                row.io_batch.to_string(),
                format!("{:.1} ms", row.sim_io_us / 1e3),
                format!("{:.1} ms", row.sim_wall_us / 1e3),
                format!("{:.1} ms", row.host_ms),
                row.planned_ahead_windows.to_string(),
                row.period_stalls.to_string(),
            ]);
        }
        println!("{table}");
        println!(
            "depth {GATE_DEPTH} vs sequential: sim I/O speedup {io_speedup:.2}x \
             (required ≥ {MIN_IO_SPEEDUP}x); host wall vs windowed depth 1: \
             {wall_ratio:.2}x (required ≥ {wall_threshold:.2}x on {cores} core(s))\n\
             responses match: {responses_match}, stats match: {stats_match}, \
             clocks match: {clocks_match}, lookahead engaged: {lookahead_engaged}"
        );

        let pass = io_speedup >= MIN_IO_SPEEDUP
            && wall_ratio >= wall_threshold
            && responses_match
            && stats_match
            && clocks_match
            && lookahead_engaged;
        if pass {
            println!(
                "OK: pipelined scheduler holds ≥ {MIN_IO_SPEEDUP}x simulated I/O reduction \
                 over the sequential baseline and is byte-identical at every depth.\n"
            );
        } else {
            println!("REGRESSION: pipeline gate failed.\n");
        }
        let report = Report {
            bench: "pipeline",
            requests,
            io_batch: IO_BATCH,
            gate_depth: GATE_DEPTH,
            available_parallelism: cores,
            min_io_speedup: MIN_IO_SPEEDUP,
            io_speedup,
            min_wall_ratio: wall_threshold,
            wall_ratio,
            responses_match,
            stats_match,
            clocks_match,
            lookahead_engaged,
            pass,
            rows,
        };
        GateOutcome {
            name: "pipeline",
            pass,
            report: report.to_value(),
        }
    }
}

/// The pipeline gate: the depth-4 windowed scheduler must hold ≥ 1.5×
/// simulated I/O reduction over the sequential (per-block, depth-1)
/// baseline, with responses, statistics, and the simulated clock
/// byte-identical at depths 1, 2, and 4, lookahead provably engaged, and
/// a host-scaled wall-clock bound on the overlapped path.
pub fn pipeline_gate(quick: bool) -> GateOutcome {
    pipeline::gate(quick)
}

// ------------------------------------------------------------ sharding

mod sharding {
    use super::*;

    const SEED: u64 = 0x54a6d;
    const SHARD_COUNTS: [u64; 4] = [1, 2, 4, 8];
    const GATE_SHARDS: u64 = 4;
    const MIN_IO_SPEEDUP: f64 = 2.5;

    #[derive(Debug, Clone, Serialize)]
    struct ShardRow {
        shards: u64,
        /// Concurrent simulated I/O time: the busiest shard's storage
        /// occupancy during access periods, µs (shards overlap).
        sim_io_us: f64,
        /// Elapsed simulated wall time on the shared clock, µs.
        sim_wall_us: f64,
        /// Requests per second of concurrent simulated I/O time.
        io_throughput_rps: f64,
        /// Requests per second of elapsed simulated wall time.
        wall_throughput_rps: f64,
        /// Busiest shard's request share over the ideal 1/shards share.
        balance: f64,
        /// Reads served by batch dedup instead of their own ORAM access.
        deduped: u64,
        /// Host-side wall clock of the run, ms.
        host_ms: f64,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        tenants: u32,
        batch_size: usize,
        gate_shards: u64,
        min_io_speedup: f64,
        pass: bool,
        /// Concurrent-I/O throughput of the gate row over the 1-shard row.
        io_speedup: f64,
        /// Wall throughput of the gate row over the 1-shard row.
        wall_speedup: f64,
        responses_match: bool,
        rows: Vec<ShardRow>,
    }

    /// Serves the schedule through the shard router; returns the row and
    /// every response in submission order (the equivalence check).
    fn run_sharded(schedule: &TenantSchedule, shards: u64) -> (ShardRow, Vec<Vec<u8>>) {
        let service_config = ServiceConfig {
            batch_size: BATCH_SIZE,
            ..ServiceConfig::default()
        };
        // Engine and service are sized together: the serving layer's
        // `worker_threads` becomes the engine's wall-clock pump width
        // (results are byte-identical at any value).
        let base = service_config
            .engine_config(HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS))
            .with_seed(SEED);
        let oram = ShardedOram::new(
            ShardedConfig::new(base, shards),
            MasterKey::from_bytes([0xD4; 32]),
            |_| MemoryHierarchy::dac2019(),
        )
        .expect("builds");
        let balance = {
            let counts = schedule.route_counts(shards as usize, |id| {
                oram.mapper().shard_of(id).expect("in range") as usize
            });
            let max = *counts.iter().max().expect("non-empty") as f64;
            let ideal = schedule.len() as f64 / shards as f64;
            max / ideal
        };
        let mut service = OramService::new(
            oram,
            Box::new(FairSharePolicy::default()) as Box<dyn AdmissionPolicy>,
            service_config,
        );
        for tenant in schedule.tenants() {
            service.register_tenant(UserId(tenant), 0..CAPACITY, Permission::ReadWrite);
        }
        let started = Instant::now();
        let arrivals = schedule
            .arrivals
            .iter()
            .map(|arrival| (UserId(arrival.tenant), arrival.request.clone()));
        let (tickets, _report) = service.serve_all(arrivals).expect("serves");
        let host_ms = started.elapsed().as_secs_f64() * 1e3;
        let responses: Vec<Vec<u8>> = tickets
            .iter()
            .map(|t| service.take_response(*t).expect("completed"))
            .collect();

        // Shards run concurrently: the aggregate I/O time is the busiest
        // shard's, and elapsed time comes from the shared clock.
        let concurrent_io = service
            .shard_stats()
            .iter()
            .map(|s| s.io_time)
            .fold(SimDuration::ZERO, SimDuration::max);
        let elapsed = service
            .oram()
            .clock()
            .now()
            .duration_since(horam::storage::clock::SimTime::ZERO);
        let deduped = service.stats().deduped;
        let row = ShardRow {
            shards,
            sim_io_us: concurrent_io.as_micros_f64(),
            sim_wall_us: elapsed.as_micros_f64(),
            io_throughput_rps: throughput(schedule.len(), concurrent_io),
            wall_throughput_rps: throughput(schedule.len(), elapsed),
            balance,
            deduped,
            host_ms,
        };
        (row, responses)
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 4;
            println!("(--quick: scaled to 1/4)\n");
        }
        let schedule = zipf_schedule(requests, SEED);
        println!(
            "Sharded scale-out — {CAPACITY} blocks, {MEMORY_SLOTS} total memory slots, \
             {TENANTS} tenants, batch {BATCH_SIZE}, {requests} requests ({})\n",
            schedule.label
        );

        let mut rows = Vec::new();
        let mut responses: Vec<Vec<Vec<u8>>> = Vec::new();
        for shards in SHARD_COUNTS {
            let (row, response) = run_sharded(&schedule, shards);
            rows.push(row);
            responses.push(response);
        }
        let responses_match = responses.iter().all(|r| r == &responses[0]);

        let mut table = Table::new(vec![
            "shards",
            "concurrent I/O",
            "sim wall",
            "I/O throughput",
            "balance",
            "deduped",
            "host time",
        ]);
        for row in &rows {
            table.row(vec![
                row.shards.to_string(),
                format!("{:.1} ms", row.sim_io_us / 1e3),
                format!("{:.1} ms", row.sim_wall_us / 1e3),
                format!("{:.0} req/s", row.io_throughput_rps),
                format!("{:.2}x ideal", row.balance),
                row.deduped.to_string(),
                format!("{:.1} ms", row.host_ms),
            ]);
        }
        println!("{table}");

        let single = &rows[0];
        let gate_row = rows
            .iter()
            .find(|r| r.shards == GATE_SHARDS)
            .expect("gate shard count measured");
        let io_speedup = gate_row.io_throughput_rps / single.io_throughput_rps.max(1e-9);
        let wall_speedup = gate_row.wall_throughput_rps / single.wall_throughput_rps.max(1e-9);
        println!(
            "{GATE_SHARDS} shards vs 1: concurrent-I/O throughput {io_speedup:.2}x, \
             wall throughput {wall_speedup:.2}x, responses match: {responses_match}"
        );

        let pass = io_speedup >= MIN_IO_SPEEDUP && responses_match;
        if pass {
            println!(
                "OK: {GATE_SHARDS}-shard aggregate simulated-I/O throughput >= \
                 {MIN_IO_SPEEDUP}x the single instance, responses identical.\n"
            );
        } else {
            println!("REGRESSION: sharding gate failed.\n");
        }
        let report = Report {
            bench: "sharding",
            requests,
            tenants: TENANTS,
            batch_size: BATCH_SIZE,
            gate_shards: GATE_SHARDS,
            min_io_speedup: MIN_IO_SPEEDUP,
            pass,
            io_speedup,
            wall_speedup,
            responses_match,
            rows,
        };
        GateOutcome {
            name: "sharding",
            pass,
            report: report.to_value(),
        }
    }
}

/// The sharding gate: 4 shards must deliver ≥ 2.5× the single-instance
/// aggregate simulated-I/O throughput on the hit-bound Zipf schedule,
/// with byte-identical responses at every shard count.
pub fn sharding_gate(quick: bool) -> GateOutcome {
    sharding::gate(quick)
}

// ------------------------------------------------------------ parallel

mod parallel {
    use super::*;
    use horam::core::HOramStats;

    const SEED: u64 = 0x9a11;
    const SHARDS: u64 = 4;
    const IO_BATCH: u64 = 32;
    const GATE_THREADS: usize = 4;

    /// The wall-clock speedup the gate demands at 4 threads vs 1, scaled
    /// to what the runner can physically deliver. On a ≥4-core machine
    /// the threaded pump must win ≥1.5×; on 2–3 cores ≥1.15×; on a
    /// single core a wall-clock speedup is physically impossible, so the
    /// gate degrades to an overhead bound (the threaded path may not be
    /// pathologically slower) while the determinism half — byte-identical
    /// responses and stats at every thread count — is enforced
    /// everywhere, unconditionally.
    fn min_wall_speedup(cores: usize) -> f64 {
        if cores >= GATE_THREADS {
            1.5
        } else if cores >= 2 {
            1.15
        } else {
            0.5
        }
    }

    #[derive(Debug, Clone, Serialize)]
    struct ThreadRow {
        threads: usize,
        /// Host-side wall clock of the drained batch, ms (`Instant`).
        wall_ms: f64,
        /// Requests per second of host wall-clock time.
        wall_throughput_rps: f64,
        /// Elapsed simulated time (identical across rows by design).
        sim_wall_us: f64,
        cycles: u64,
        shuffles: u64,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        shards: u64,
        io_batch: u64,
        available_parallelism: usize,
        gate_threads: usize,
        min_wall_speedup: f64,
        /// wall_ms(1 thread) / wall_ms(4 threads).
        wall_speedup: f64,
        responses_match: bool,
        stats_match: bool,
        pass: bool,
        rows: Vec<ThreadRow>,
    }

    /// Drains the whole Zipf schedule through a 4-shard engine at the
    /// given pump width; returns the timing row plus the observables the
    /// determinism check compares.
    fn run_threads(requests: &[Request], threads: usize) -> (ThreadRow, Vec<Vec<u8>>, HOramStats) {
        let base = HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(IO_BATCH)
            .with_worker_threads(threads);
        let mut oram = ShardedOram::new(
            ShardedConfig::new(base, SHARDS),
            MasterKey::from_bytes([0xE1; 32]),
            |_| MemoryHierarchy::dac2019(),
        )
        .expect("builds");
        let started = Instant::now();
        let responses = oram.run_batch(requests).expect("runs");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let stats = oram.stats();
        let row = ThreadRow {
            threads,
            wall_ms,
            wall_throughput_rps: if wall_ms > 0.0 {
                requests.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            sim_wall_us: oram
                .clock()
                .now()
                .duration_since(horam::storage::clock::SimTime::ZERO)
                .as_micros_f64(),
            cycles: stats.cycles,
            shuffles: stats.shuffles,
        };
        (row, responses, stats)
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 24_000usize;
        let mut thread_counts: Vec<usize> = vec![1, 2, 4, 8];
        if quick {
            requests /= 6;
            thread_counts = vec![1, 2, 4];
            println!("(--quick: scaled to 1/6, thread counts 1/2/4)\n");
        }
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threshold = min_wall_speedup(cores);
        let flat = zipf_schedule(requests, SEED).to_trace();
        println!(
            "Wall-clock parallel engine — {SHARDS} shards over {CAPACITY} blocks, \
             {MEMORY_SLOTS} total memory slots, window {IO_BATCH}, {requests} requests, \
             {cores} host core(s)\n"
        );

        let mut rows = Vec::new();
        let mut responses: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut stats: Vec<HOramStats> = Vec::new();
        for &threads in &thread_counts {
            let (row, response, stat) = run_threads(&flat.requests, threads);
            rows.push(row);
            responses.push(response);
            stats.push(stat);
        }
        let responses_match = responses.iter().all(|r| r == &responses[0]);
        let stats_match = stats.iter().all(|s| s == &stats[0]);

        let mut table = Table::new(vec![
            "threads",
            "host wall",
            "host throughput",
            "sim wall",
            "cycles",
            "shuffles",
        ]);
        for row in &rows {
            table.row(vec![
                row.threads.to_string(),
                format!("{:.1} ms", row.wall_ms),
                format!("{:.0} req/s", row.wall_throughput_rps),
                format!("{:.1} ms", row.sim_wall_us / 1e3),
                row.cycles.to_string(),
                row.shuffles.to_string(),
            ]);
        }
        println!("{table}");

        let single = &rows[0];
        let gate_row = rows
            .iter()
            .find(|r| r.threads == GATE_THREADS)
            .expect("gate thread count measured");
        let wall_speedup = single.wall_ms / gate_row.wall_ms.max(f64::MIN_POSITIVE);
        println!(
            "{GATE_THREADS} threads vs 1: wall-clock speedup {wall_speedup:.2}x \
             (required ≥ {threshold:.2}x on {cores} core(s)), responses match: \
             {responses_match}, stats match: {stats_match}"
        );

        let pass = wall_speedup >= threshold && responses_match && stats_match;
        if pass {
            println!(
                "OK: threaded pump meets the wall-clock bar for this host and is \
                 byte-identical to the serial path.\n"
            );
        } else {
            println!("REGRESSION: parallel gate failed.\n");
        }
        let report = Report {
            bench: "parallel",
            requests,
            shards: SHARDS,
            io_batch: IO_BATCH,
            available_parallelism: cores,
            gate_threads: GATE_THREADS,
            min_wall_speedup: threshold,
            wall_speedup,
            responses_match,
            stats_match,
            pass,
            rows,
        };
        GateOutcome {
            name: "parallel",
            pass,
            report: report.to_value(),
        }
    }
}

/// The parallel-engine gate: 4 worker threads must deliver ≥ 1.5× the
/// 1-thread wall-clock throughput on the 4-shard Zipf schedule when the
/// host has ≥ 4 cores (scaled down on smaller runners — a 1-core machine
/// physically cannot show a wall-clock speedup), with byte-identical
/// responses and statistics at every thread count, enforced everywhere.
pub fn parallel_gate(quick: bool) -> GateOutcome {
    parallel::gate(quick)
}

// --------------------------------------------------------- persistence

mod persistence {
    use super::*;
    use horam::protocols::types::BlockContent;
    use horam::storage::calibration::MachineConfig;
    use horam::storage::file::{scratch_dir, FileStoreConfig};
    use horam::storage::trace::TraceEvent;

    const SEED: u64 = 0x9e25;
    /// Memory budget for this gate only: smaller than the shared
    /// `MEMORY_SLOTS` so the period (`n/2` I/O loads) turns several
    /// times even on the hit-bound Zipf mix — a recovery gate that never
    /// crosses a shuffle (the only phase that rewrites the device file)
    /// would not test crash consistency at all.
    const GATE_MEMORY_SLOTS: u64 = 128;
    /// Host wall-clock budget for one snapshot + one restore, ms. The
    /// operations serialize ~100s of KB and replay a journal; on any CI
    /// runner they complete in low single-digit milliseconds, so this
    /// bound only catches pathological regressions (quadratic
    /// serialization, per-slot fsync).
    const MAX_CHECKPOINT_MS: f64 = 2_000.0;
    /// Cycles run past the checkpoint before the kill: enough to cross a
    /// shuffle period at the gate geometry, so the kill lands with the
    /// device file mid-rewrite.
    const KILL_AFTER_CYCLES: u64 = 600;

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        pass: bool,
        snapshot_bytes: usize,
        /// Host wall time of the checkpoint (device sync + state seal).
        snapshot_ms: f64,
        /// Host wall time of recovery (journal rollback + state restore).
        restore_ms: f64,
        max_checkpoint_ms: f64,
        kill_after_cycles: u64,
        replayed_requests: usize,
        responses_match: bool,
        trace_match: bool,
        stats_match: bool,
        clock_match: bool,
    }

    fn engine_config() -> HOramConfig {
        HOramConfig::new(CAPACITY, PAYLOAD_LEN, GATE_MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(16)
    }

    fn file_hierarchy(path: &std::path::Path) -> MemoryHierarchy {
        let config = engine_config();
        let slots = config.partition_count() * config.partition_slots();
        let body = BlockContent::encoded_len(config.payload_len);
        MemoryHierarchy::with_file_storage(
            MachineConfig::dac2019(),
            path,
            FileStoreConfig::new(slots, body).with_write_back_slots(64),
        )
        .expect("file hierarchy builds")
    }

    fn build(path: &std::path::Path) -> HOram {
        HOram::new(
            engine_config(),
            file_hierarchy(path),
            MasterKey::from_bytes([0xC9; 32]),
        )
        .expect("builds")
    }

    fn trace_shape(events: &[TraceEvent]) -> Vec<(u16, u64, u64, u64)> {
        events
            .iter()
            .map(|e| (e.device.0, e.addr, e.bytes, e.at.as_nanos()))
            .collect()
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 8;
            println!("(--quick: scaled to 1/8)\n");
        }
        println!(
            "Durability — {CAPACITY} blocks, {GATE_MEMORY_SLOTS} memory slots, file-backed \
             storage, {requests} Zipf requests: snapshot, kill mid-workload, restore, replay\n"
        );
        let trace = zipf_schedule(requests, SEED).to_trace().requests;
        let (pre, post) = trace.split_at(requests / 2);

        let scratch = scratch_dir("bench-persistence");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&scratch, pre, post, requests)
        }));
        let _ = std::fs::remove_dir_all(&scratch);
        match result {
            Ok(outcome) => outcome,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    fn run(
        scratch: &std::path::Path,
        pre: &[Request],
        post: &[Request],
        requests: usize,
    ) -> GateOutcome {
        // Reference: the uninterrupted run (same file backend).
        let reference_path = scratch.join("reference.horam");
        let mut reference = build(&reference_path);
        reference.run_batch(pre).expect("reference prefix");
        reference.snapshot().expect("reference snapshot");
        let mark = reference.trace().snapshot().len();
        let reference_responses = reference.run_batch(post).expect("reference suffix");
        let reference_trace = trace_shape(&reference.trace().snapshot()[mark..]);
        let reference_stats = reference.stats();
        assert!(
            reference_stats.shuffles >= 2,
            "gate workload must cross shuffle periods"
        );

        // The run that dies: checkpoint, keep working, kill mid-flight.
        let victim_path = scratch.join("victim.horam");
        let mut victim = build(&victim_path);
        victim.run_batch(pre).expect("victim prefix");
        let snapshot_started = Instant::now();
        let snapshot = victim.snapshot().expect("victim snapshot");
        let snapshot_ms = snapshot_started.elapsed().as_secs_f64() * 1e3;
        for request in post {
            victim.enqueue(request.clone()).expect("enqueue");
        }
        let mut ran = 0;
        while ran < KILL_AFTER_CYCLES && !victim.queue().is_drained() {
            ran += victim.run_cycle_window(16).expect("cycles before the kill");
        }
        drop(victim); // the kill: no sync, no checkpoint, buffer mid-flight

        // Recovery: reopen the device file (journal rollback) + restore.
        let restore_started = Instant::now();
        let mut recovered = HOram::restore(
            file_hierarchy(&victim_path),
            MasterKey::from_bytes([0xC9; 32]),
            &snapshot,
        )
        .expect("restore");
        let restore_ms = restore_started.elapsed().as_secs_f64() * 1e3;
        let responses = recovered.run_batch(post).expect("replay");

        let responses_match = responses == reference_responses;
        let trace_match = trace_shape(&recovered.trace().snapshot()) == reference_trace;
        let stats_match = recovered.stats() == reference_stats;
        let clock_match = recovered.clock().now() == reference.clock().now();
        let within_budget = snapshot_ms + restore_ms <= MAX_CHECKPOINT_MS;
        let pass = responses_match && trace_match && stats_match && clock_match && within_budget;

        println!(
            "snapshot: {} KB sealed in {snapshot_ms:.1} ms; restore (journal rollback + \
             state rebuild): {restore_ms:.1} ms",
            snapshot.len() / 1024
        );
        println!(
            "replayed {} requests after killing the engine {ran} cycles past the checkpoint",
            post.len()
        );
        println!(
            "byte-identical to the uninterrupted run — responses: {responses_match}, \
             trace(+timestamps): {trace_match}, stats: {stats_match}, clock: {clock_match}"
        );
        if pass {
            println!(
                "OK: kill → restore → replay is byte-identical and checkpointing stays \
                 under {MAX_CHECKPOINT_MS:.0} ms.\n"
            );
        } else {
            println!("REGRESSION: persistence gate failed.\n");
        }

        let report = Report {
            bench: "persistence",
            requests,
            pass,
            snapshot_bytes: snapshot.len(),
            snapshot_ms,
            restore_ms,
            max_checkpoint_ms: MAX_CHECKPOINT_MS,
            kill_after_cycles: ran,
            replayed_requests: post.len(),
            responses_match,
            trace_match,
            stats_match,
            clock_match,
        };
        GateOutcome {
            name: "persistence",
            pass,
            report: report.to_value(),
        }
    }
}

/// The persistence gate: checkpoint a file-backed engine on the Zipf
/// schedule, kill it mid-workload (write-back buffer and shuffle stream
/// in flight), recover from the snapshot + device file, replay — and
/// require byte-identical responses, traces, statistics, and clock
/// versus the uninterrupted run, with snapshot+restore staying within a
/// host wall-clock budget.
pub fn persistence_gate(quick: bool) -> GateOutcome {
    persistence::gate(quick)
}

// --------------------------------------------------------------- cache

mod cache {
    use super::*;
    use horam::storage::cache::CacheConfig;

    const SEED: u64 = 0xCA4E;
    /// Memory budget for this gate only (like the persistence gate's):
    /// the cache warms exclusively from shuffle-period population, so a
    /// run that never turns a period would measure an empty cache. A
    /// 256-slot tree gives a 128-load period — several shuffles even at
    /// `--quick` scale.
    const GATE_MEMORY_SLOTS: u64 = 256;
    /// Required simulated-I/O speedup of the hit-bound cached engine
    /// over the uncached one on the shared Zipf mix. Hits cost a flat
    /// DRAM copy versus a calibrated HDD access, so once the shuffle has
    /// populated the cache the access-period device busy time collapses;
    /// 1.5× is a conservative floor well under the observed margin.
    const MIN_IO_SPEEDUP: f64 = 1.5;

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        pass: bool,
        /// Cache capacity in blocks (covers every storage slot — the
        /// hit-bound point of the sweep in `cache_sweep`).
        cache_blocks: u64,
        hit_rate: f64,
        io_ms_uncached: f64,
        io_ms_cached: f64,
        io_speedup: f64,
        min_io_speedup: f64,
        responses_match: bool,
        counters_match: bool,
    }

    fn engine(cache: Option<CacheConfig>) -> HOram {
        let base = HOramConfig::new(CAPACITY, PAYLOAD_LEN, GATE_MEMORY_SLOTS).with_seed(SEED);
        let config = match cache {
            Some(cache) => base.with_cache(cache),
            None => base,
        };
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xCA; 32]),
        )
        .expect("builds")
    }

    /// Every protocol counter — the fields a cache must not move.
    fn counters(stats: &HOramStats) -> [u64; 10] {
        [
            stats.requests,
            stats.writes,
            stats.cycles,
            stats.memory_hits,
            stats.dummy_memory_accesses,
            stats.real_io_loads,
            stats.dummy_io_loads,
            stats.prefetched_blocks,
            stats.shuffles,
            stats.spilled_blocks,
        ]
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 8;
            println!("(--quick: scaled to 1/8)\n");
        }
        let slots = {
            let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, GATE_MEMORY_SLOTS);
            config.partition_count() * config.partition_slots()
        };
        println!(
            "Oblivious block cache — {CAPACITY} blocks, {GATE_MEMORY_SLOTS} memory slots, \
             hit-bound LRU cache ({slots} blocks), {requests} Zipf requests\n"
        );
        let trace = zipf_schedule(requests, SEED).to_trace().requests;

        let mut uncached = engine(None);
        let uncached_responses = uncached.run_batch(&trace).expect("uncached runs");
        let uncached_stats = uncached.stats();
        assert!(
            uncached_stats.shuffles >= 2,
            "gate workload must cross shuffle periods (hits come from shuffle population)"
        );

        let mut cached = engine(Some(CacheConfig::lru(slots)));
        let cached_responses = cached.run_batch(&trace).expect("cached runs");
        let cached_stats = cached.stats();
        let cache_stats = cached.cache_stats().expect("cache installed");

        let responses_match = cached_responses == uncached_responses;
        let counters_match = counters(&cached_stats) == counters(&uncached_stats);
        let io_ms_uncached = uncached_stats.io_time.as_secs_f64() * 1e3;
        let io_ms_cached = cached_stats.io_time.as_secs_f64() * 1e3;
        let io_speedup = if io_ms_cached > 0.0 {
            io_ms_uncached / io_ms_cached
        } else {
            0.0
        };
        let pass = responses_match
            && counters_match
            && cache_stats.hits > 0
            && io_speedup >= MIN_IO_SPEEDUP;

        let mut table = Table::new(vec![
            "engine",
            "storage busy (access periods)",
            "req / s of storage time",
            "cache hit rate",
        ]);
        table.row(vec![
            "uncached".into(),
            uncached_stats.io_time.to_string(),
            format!("{:.0}", throughput(requests, uncached_stats.io_time)),
            "n/a".into(),
        ]);
        table.row(vec![
            "hit-bound LRU".into(),
            cached_stats.io_time.to_string(),
            format!("{:.0}", throughput(requests, cached_stats.io_time)),
            format!("{:.1}%", cache_stats.hit_rate() * 100.0),
        ]);
        println!("{table}");
        println!(
            "byte-identical responses: {responses_match}; protocol counters unchanged: \
             {counters_match}; simulated-I/O speedup {io_speedup:.2}× (floor \
             {MIN_IO_SPEEDUP:.1}×)"
        );
        if pass {
            println!("OK: caching is free on semantics and ≥{MIN_IO_SPEEDUP:.1}× on I/O time.\n");
        } else {
            println!("REGRESSION: cache gate failed.\n");
        }

        let report = Report {
            bench: "cache",
            requests,
            pass,
            cache_blocks: slots,
            hit_rate: cache_stats.hit_rate(),
            io_ms_uncached,
            io_ms_cached,
            io_speedup,
            min_io_speedup: MIN_IO_SPEEDUP,
            responses_match,
            counters_match,
        };
        GateOutcome {
            name: "cache",
            pass,
            report: report.to_value(),
        }
    }
}

/// The cache gate: run the shared Zipf mix uncached and with a hit-bound
/// LRU block cache, require byte-identical responses, unchanged protocol
/// counters, and ≥1.5× less simulated storage busy time during access
/// periods. The speedup ratio feeds the trend file.
pub fn cache_gate(quick: bool) -> GateOutcome {
    cache::gate(quick)
}

// --------------------------------------------------------------- chaos

mod chaos {
    use super::*;
    use horam::core::error::HOramError;
    use horam::storage::clock::SimTime;
    use horam::storage::fault::FaultConfig;

    const SEED: u64 = 0xC4A0;
    const SHARDS: u64 = 4;
    /// 1 % of storage reads *and* writes fail transiently — roughly two
    /// orders of magnitude worse than a badly degraded disk, so the
    /// retry layer is exercised thousands of times per run.
    const FAULT_PERMILLE: u32 = 10;
    /// Floor on the faulted run's simulated throughput relative to the
    /// fault-free run. Retries charge capped exponential backoff in
    /// simulated time; at 1 % incidence the charge must stay small
    /// against calibrated device time.
    const MIN_THROUGHPUT_RATIO: f64 = 0.9;

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        shards: u64,
        fault_permille: u32,
        pass: bool,
        /// Transient faults the injector raised (reads + writes).
        injected_transients: u64,
        /// Device-level retries those faults triggered.
        retries: u64,
        /// Simulated backoff charged for them, ms.
        backoff_ms: f64,
        /// Retry budgets exhausted (each fails one shard window).
        exhausted: u64,
        /// Tickets that resolved to a typed failure instead of a
        /// response.
        failed_tickets: u64,
        /// Shards quarantined by the end of the run.
        degraded_shards: usize,
        throughput_clean_rps: f64,
        throughput_faulted_rps: f64,
        /// faulted / clean simulated throughput — the trend metric.
        throughput_ratio: f64,
        min_throughput_ratio: f64,
        /// Every completed ticket byte-identical to the fault-free run.
        responses_match: bool,
    }

    fn engine(fault: Option<u32>) -> ShardedOram {
        let config = ShardedConfig::new(
            HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS).with_seed(SEED),
            SHARDS,
        );
        ShardedOram::new(config, MasterKey::from_bytes([0xFA; 32]), |shard| {
            let hierarchy = MemoryHierarchy::dac2019();
            match fault {
                Some(permille) => hierarchy
                    .with_storage_faults(FaultConfig::transient(SEED ^ (shard + 1), permille)),
                None => hierarchy,
            }
        })
        .expect("builds")
    }

    /// Runs the trace to completion, tolerating per-ticket typed
    /// failures: every ticket resolves to `Some(response)` or `None`
    /// (typed failure — recorded, never a panic).
    fn drive(oram: &mut ShardedOram, trace: &[Request]) -> Vec<Option<Vec<u8>>> {
        let tickets: Vec<Result<u64, HOramError>> = trace
            .iter()
            .map(|request| oram.enqueue(request.clone()))
            .collect();
        while !oram.is_drained() {
            oram.run_cycle_window(16).expect("engine-level failure");
        }
        tickets
            .into_iter()
            .map(|ticket| {
                let ticket = ticket.ok()?;
                match oram.take_response(ticket) {
                    Some(response) => Some(response),
                    None => {
                        // A lost ticket must carry its typed failure.
                        oram.take_failure(ticket)
                            .expect("ticket resolved with neither response nor failure");
                        None
                    }
                }
            })
            .collect()
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 8;
            println!("(--quick: scaled to 1/8)\n");
        }
        println!(
            "Chaos — {SHARDS} shards, {}‰ transient storage faults, {requests} Zipf requests\n",
            FAULT_PERMILLE
        );
        let trace = zipf_schedule(requests, SEED).to_trace().requests;

        let mut clean = engine(None);
        let clean_outcomes = drive(&mut clean, &trace);
        let clean_elapsed = clean.clock().now();
        assert!(
            clean_outcomes.iter().all(Option::is_some),
            "fault-free run must complete every ticket"
        );

        let mut faulted = engine(Some(FAULT_PERMILLE));
        let faulted_outcomes = drive(&mut faulted, &trace);
        let faulted_elapsed = faulted.clock().now();
        let fault_stats = faulted.storage_fault_stats().unwrap_or_default();
        let retry_stats = faulted.storage_retry_stats();

        let failed_tickets = faulted_outcomes.iter().filter(|o| o.is_none()).count() as u64;
        let responses_match =
            clean_outcomes
                .iter()
                .zip(&faulted_outcomes)
                .all(|(clean, faulted)| match faulted {
                    Some(response) => clean.as_ref() == Some(response),
                    None => true,
                });
        let degraded = faulted.degraded_shards().len();
        let throughput_clean = throughput(requests, clean_elapsed.duration_since(SimTime::ZERO));
        let throughput_faulted =
            throughput(requests, faulted_elapsed.duration_since(SimTime::ZERO));
        let throughput_ratio = if throughput_clean > 0.0 {
            throughput_faulted / throughput_clean
        } else {
            0.0
        };
        let injected = fault_stats.transient_reads + fault_stats.transient_writes;
        let pass = responses_match
            && injected > 0
            && retry_stats.retries > 0
            && throughput_ratio >= MIN_THROUGHPUT_RATIO;

        let mut table = Table::new(vec![
            "engine",
            "elapsed (sim)",
            "req / s",
            "retries",
            "failed tickets",
        ]);
        table.row(vec![
            "fault-free".into(),
            format!("{}", clean_elapsed.duration_since(SimTime::ZERO)),
            format!("{throughput_clean:.0}"),
            "0".into(),
            "0".into(),
        ]);
        table.row(vec![
            format!("{FAULT_PERMILLE}‰ transient"),
            format!("{}", faulted_elapsed.duration_since(SimTime::ZERO)),
            format!("{throughput_faulted:.0}"),
            retry_stats.retries.to_string(),
            failed_tickets.to_string(),
        ]);
        println!("{table}");
        println!(
            "injected {injected} transients; {} exhausted budgets; {degraded} degraded \
             shards; completed responses byte-identical: {responses_match}; throughput \
             ratio {throughput_ratio:.3} (floor {MIN_THROUGHPUT_RATIO:.2})",
            retry_stats.exhausted
        );
        if pass {
            println!("OK: typed errors or identical answers under fault injection.\n");
        } else {
            println!("REGRESSION: chaos gate failed.\n");
        }

        let report = Report {
            bench: "chaos",
            requests,
            shards: SHARDS,
            fault_permille: FAULT_PERMILLE,
            pass,
            injected_transients: injected,
            retries: retry_stats.retries,
            backoff_ms: retry_stats.backoff_nanos as f64 / 1e6,
            exhausted: retry_stats.exhausted,
            failed_tickets,
            degraded_shards: degraded,
            throughput_clean_rps: throughput_clean,
            throughput_faulted_rps: throughput_faulted,
            throughput_ratio,
            min_throughput_ratio: MIN_THROUGHPUT_RATIO,
            responses_match,
        };
        GateOutcome {
            name: "chaos",
            pass,
            report: report.to_value(),
        }
    }
}

/// The chaos gate: serve the shared Zipf mix on a 4-shard engine whose
/// every storage store injects seeded 1 % transient faults, and require
/// the end-to-end contract — no panics, every ticket resolves to a typed
/// error or a response byte-identical to the fault-free run's, and
/// simulated throughput within 10 % of fault-free (retry backoff is the
/// only cost). The throughput ratio feeds the trend file.
pub fn chaos_gate(quick: bool) -> GateOutcome {
    chaos::gate(quick)
}

// ------------------------------------------------------------ capacity

mod capacity {
    use super::*;
    use horam::core::{PosmapMode, RecursivePosmapConfig};
    use horam::protocols::types::BlockContent;
    use horam::storage::calibration::MachineConfig;
    use horam::storage::clock::SimTime;
    use horam::storage::file::{scratch_dir, FileStoreConfig};
    use horam::storage::trace::TraceEvent;

    const SEED: u64 = 0xCA9;
    /// Memory budget for the small parity leg: small enough that the
    /// shared Zipf mix turns shuffle periods, so the recursive map's
    /// rebuild path runs inside the comparison, not just steady serving.
    const PARITY_MEMORY_SLOTS: u64 = 256;
    /// The large leg runs at 16× the shared gate capacity — the largest
    /// any other bench touches is `CAPACITY` (4096).
    const LARGE_CAPACITY: u64 = 65_536;
    const LARGE_MEMORY_SLOTS: u64 = 2_048;
    /// Stride of the write/read-back sweep on the large engine (prime, so
    /// the touched set spreads over every partition).
    const LARGE_STRIDE: usize = 509;
    /// At `LARGE_CAPACITY` the recursive map's trusted bytes must undercut
    /// the flat table's by at least this factor.
    const MIN_TRUSTED_SHRINK: f64 = 8.0;
    /// Growing N by 16× may grow the recursive map's trusted bytes by at
    /// most this factor (sublinearity: root is threshold-bounded, levels
    /// grow logarithmically, caches are per-level constants).
    const MAX_TRUSTED_GROWTH: f64 = 8.0;
    /// With durable data and level devices, the recursive engine's
    /// snapshot must undercut the flat engine's at the same N by at least
    /// this factor (the flat snapshot carries the O(N) position table).
    const MIN_SNAPSHOT_SHRINK: f64 = 2.0;
    /// Simulated-throughput floor, recursive / flat at matched small N.
    /// The recursive map's I/O lives on its own simulated devices and
    /// never enters the engine clock, so the expected ratio is exactly
    /// 1.0 — the floor only catches that invariant breaking.
    const MIN_THROUGHPUT_RATIO: f64 = 0.99;

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        requests: usize,
        pass: bool,
        // Small-N parity: flat vs recursive on the shared Zipf mix.
        parity_capacity: u64,
        responses_match: bool,
        trace_match: bool,
        stats_match: bool,
        clock_match: bool,
        throughput_flat_rps: f64,
        throughput_recursive_rps: f64,
        throughput_ratio: f64,
        min_throughput_ratio: f64,
        // Large-N demonstration: durable devices, recursive posmap.
        large_capacity: u64,
        capacity_factor: f64,
        posmap_levels: usize,
        large_roundtrip_ok: bool,
        restore_roundtrip_ok: bool,
        flat_trusted_bytes: u64,
        recursive_trusted_bytes: u64,
        trusted_shrink: f64,
        min_trusted_shrink: f64,
        recursive_small_trusted_bytes: u64,
        trusted_growth: f64,
        max_trusted_growth: f64,
        flat_snapshot_bytes: usize,
        recursive_snapshot_bytes: usize,
        snapshot_shrink: f64,
        min_snapshot_shrink: f64,
    }

    fn recursive_mode(backing: Option<&std::path::Path>) -> PosmapMode {
        PosmapMode::Recursive(RecursivePosmapConfig {
            backing_dir: backing.map(|p| p.to_string_lossy().into_owned()),
            ..RecursivePosmapConfig::default()
        })
    }

    fn parity_engine(posmap: PosmapMode) -> HOram {
        let config = HOramConfig::new(CAPACITY, PAYLOAD_LEN, PARITY_MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(16)
            .with_posmap(posmap);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([0xCA; 32]),
        )
        .expect("parity engine builds")
    }

    fn large_config(posmap: PosmapMode) -> HOramConfig {
        HOramConfig::new(LARGE_CAPACITY, PAYLOAD_LEN, LARGE_MEMORY_SLOTS)
            .with_seed(SEED)
            .with_io_batch(16)
            .with_posmap(posmap)
    }

    fn large_hierarchy(config: &HOramConfig, path: &std::path::Path) -> MemoryHierarchy {
        let slots = config.partition_count() * config.partition_slots();
        let body = BlockContent::encoded_len(config.payload_len);
        MemoryHierarchy::with_file_storage(
            MachineConfig::dac2019(),
            path,
            FileStoreConfig::new(slots, body).with_write_back_slots(64),
        )
        .expect("file hierarchy builds")
    }

    fn large_engine(scratch: &std::path::Path, name: &str, posmap: PosmapMode) -> HOram {
        let config = large_config(posmap);
        let hierarchy = large_hierarchy(&config, &scratch.join(format!("{name}.horam")));
        HOram::new(config, hierarchy, MasterKey::from_bytes([0xCB; 32]))
            .expect("large engine builds")
    }

    fn trace_shape(events: &[TraceEvent]) -> Vec<(u16, u64, u64, u64)> {
        events
            .iter()
            .map(|e| (e.device.0, e.addr, e.bytes, e.at.as_nanos()))
            .collect()
    }

    /// The deterministic payload the large sweep writes to block `id`.
    fn spot_payload(id: u64) -> Vec<u8> {
        let mut payload = vec![0u8; PAYLOAD_LEN];
        payload[..8].copy_from_slice(&id.to_le_bytes());
        payload
    }

    fn spot_ids() -> Vec<u64> {
        (0..LARGE_CAPACITY).step_by(LARGE_STRIDE).collect()
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut requests = 6_000usize;
        if quick {
            requests /= 8;
            println!("(--quick: scaled to 1/8)\n");
        }
        println!(
            "Capacity — flat vs recursive position map at {CAPACITY} blocks \
             ({requests} Zipf requests), then a durable recursive engine at \
             {LARGE_CAPACITY} blocks ({}× the largest other bench)\n",
            LARGE_CAPACITY / CAPACITY
        );

        let scratch = scratch_dir("bench-capacity");
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&scratch, requests)));
        let _ = std::fs::remove_dir_all(&scratch);
        match result {
            Ok(outcome) => outcome,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    fn run(scratch: &std::path::Path, requests: usize) -> GateOutcome {
        // Leg 1 — parity at matched small N: the posmap mode must be
        // invisible on the data ORAM. Responses, the full bus trace
        // (addresses *and* timestamps), protocol counters, and the
        // simulated clock must all be byte-identical.
        let trace = zipf_schedule(requests, SEED).to_trace().requests;

        let mut flat = parity_engine(PosmapMode::Flat);
        let flat_responses = flat.run_batch(&trace).expect("flat parity run");
        let flat_trace = trace_shape(&flat.trace().snapshot());
        let flat_stats = flat.stats();
        assert!(
            flat_stats.shuffles >= 1,
            "parity leg must cross a shuffle period"
        );

        let mut recursive = parity_engine(recursive_mode(None));
        let recursive_responses = recursive.run_batch(&trace).expect("recursive parity run");
        let recursive_trace = trace_shape(&recursive.trace().snapshot());
        let recursive_stats = recursive.stats();

        let responses_match = recursive_responses == flat_responses;
        let trace_match = recursive_trace == flat_trace;
        let stats_match = recursive_stats == flat_stats;
        let clock_match = recursive.clock().now() == flat.clock().now();
        let flat_elapsed = flat.clock().now().duration_since(SimTime::ZERO);
        let recursive_elapsed = recursive.clock().now().duration_since(SimTime::ZERO);
        let throughput_flat_rps = throughput(requests, flat_elapsed);
        let throughput_recursive_rps = throughput(requests, recursive_elapsed);
        let throughput_ratio = if throughput_flat_rps > 0.0 {
            throughput_recursive_rps / throughput_flat_rps
        } else {
            0.0
        };
        let recursive_small_trusted_bytes = recursive.posmap().memory_bytes();

        // Leg 2 — the large engine: durable data device + file-backed
        // posmap levels, write/read-back sweep, snapshot, restore.
        let ids = spot_ids();
        let posmap_dir = scratch.join("posmap");
        let mut large = large_engine(scratch, "recursive", recursive_mode(Some(&posmap_dir)));
        let writes: Vec<Request> = ids
            .iter()
            .map(|&id| Request::write(id, spot_payload(id)))
            .collect();
        large.run_batch(&writes).expect("large writes");
        let reads: Vec<Request> = ids.iter().map(|&id| Request::read(id)).collect();
        let read_back = large.run_batch(&reads).expect("large reads");
        let large_roundtrip_ok = ids
            .iter()
            .zip(&read_back)
            .all(|(&id, got)| *got == spot_payload(id));
        let recursive_trusted_bytes = large.posmap().memory_bytes();
        let posmap_levels = large.posmap().level_views().len();
        let snapshot = large.snapshot().expect("large snapshot");
        let recursive_snapshot_bytes = snapshot.len();
        drop(large);

        // Restore from the snapshot + device files and re-verify a few
        // spot blocks: the PR-5 durability stack at 16× scale.
        let restore_hierarchy = large_hierarchy(
            &large_config(PosmapMode::Flat),
            &scratch.join("recursive.horam"),
        );
        let mut restored = HOram::restore(
            restore_hierarchy,
            MasterKey::from_bytes([0xCB; 32]),
            &snapshot,
        )
        .expect("large restore");
        let spot_checks: Vec<Request> = ids
            .iter()
            .step_by(16)
            .map(|&id| Request::read(id))
            .collect();
        let spot_responses = restored.run_batch(&spot_checks).expect("restored reads");
        let restore_roundtrip_ok = ids
            .iter()
            .step_by(16)
            .zip(&spot_responses)
            .all(|(&id, got)| *got == spot_payload(id));
        drop(restored);

        // The flat yardstick at the same N, same durable device, same
        // sweep: its snapshot embeds the O(N) position table.
        let mut flat_large = large_engine(scratch, "flat", PosmapMode::Flat);
        flat_large.run_batch(&writes).expect("flat large writes");
        let flat_trusted_bytes = flat_large.posmap().memory_bytes();
        let flat_snapshot_bytes = flat_large.snapshot().expect("flat snapshot").len();
        drop(flat_large);

        let trusted_shrink = flat_trusted_bytes as f64 / recursive_trusted_bytes.max(1) as f64;
        let trusted_growth =
            recursive_trusted_bytes as f64 / recursive_small_trusted_bytes.max(1) as f64;
        let snapshot_shrink = flat_snapshot_bytes as f64 / recursive_snapshot_bytes.max(1) as f64;

        let parity_ok = responses_match && trace_match && stats_match && clock_match;
        let pass = parity_ok
            && throughput_ratio >= MIN_THROUGHPUT_RATIO
            && large_roundtrip_ok
            && restore_roundtrip_ok
            && trusted_shrink >= MIN_TRUSTED_SHRINK
            && trusted_growth <= MAX_TRUSTED_GROWTH
            && snapshot_shrink >= MIN_SNAPSHOT_SHRINK;

        let mut table = Table::new(vec![
            "engine",
            "blocks",
            "trusted posmap bytes",
            "snapshot bytes",
        ]);
        table.row(vec![
            "flat".into(),
            format!("{LARGE_CAPACITY}"),
            format!("{flat_trusted_bytes}"),
            format!("{flat_snapshot_bytes}"),
        ]);
        table.row(vec![
            format!("recursive ({posmap_levels} levels)"),
            format!("{LARGE_CAPACITY}"),
            format!("{recursive_trusted_bytes}"),
            format!("{recursive_snapshot_bytes}"),
        ]);
        table.row(vec![
            "recursive".into(),
            format!("{CAPACITY}"),
            format!("{recursive_small_trusted_bytes}"),
            "n/a".into(),
        ]);
        println!("{table}");
        println!(
            "parity at {CAPACITY} blocks — responses: {responses_match}, \
             trace(+timestamps): {trace_match}, stats: {stats_match}, clock: {clock_match}; \
             simulated throughput ratio {throughput_ratio:.3} (floor {MIN_THROUGHPUT_RATIO:.2})"
        );
        println!(
            "large leg — {} spot blocks round-trip: {large_roundtrip_ok}; \
             restore round-trip: {restore_roundtrip_ok}",
            ids.len()
        );
        println!(
            "trusted bytes shrink {trusted_shrink:.1}× (floor {MIN_TRUSTED_SHRINK:.0}×); \
             growth over 16× N: {trusted_growth:.2}× (ceiling {MAX_TRUSTED_GROWTH:.0}×); \
             snapshot shrink {snapshot_shrink:.1}× (floor {MIN_SNAPSHOT_SHRINK:.0}×)"
        );
        if pass {
            println!(
                "OK: recursive map is invisible on the data bus and holds O(log N) \
                 trusted bytes at {LARGE_CAPACITY} blocks.\n"
            );
        } else {
            println!("REGRESSION: capacity gate failed.\n");
        }

        let report = Report {
            bench: "capacity",
            requests,
            pass,
            parity_capacity: CAPACITY,
            responses_match,
            trace_match,
            stats_match,
            clock_match,
            throughput_flat_rps,
            throughput_recursive_rps,
            throughput_ratio,
            min_throughput_ratio: MIN_THROUGHPUT_RATIO,
            large_capacity: LARGE_CAPACITY,
            capacity_factor: LARGE_CAPACITY as f64 / CAPACITY as f64,
            posmap_levels,
            large_roundtrip_ok,
            restore_roundtrip_ok,
            flat_trusted_bytes,
            recursive_trusted_bytes,
            trusted_shrink,
            min_trusted_shrink: MIN_TRUSTED_SHRINK,
            recursive_small_trusted_bytes,
            trusted_growth,
            max_trusted_growth: MAX_TRUSTED_GROWTH,
            flat_snapshot_bytes,
            recursive_snapshot_bytes,
            snapshot_shrink,
            min_snapshot_shrink: MIN_SNAPSHOT_SHRINK,
        };
        GateOutcome {
            name: "capacity",
            pass,
            report: report.to_value(),
        }
    }
}

/// The capacity gate: prove the recursive position map changes the
/// engine's trusted-memory scaling and nothing else. A flat-vs-recursive
/// run at the shared small capacity must be byte-identical (responses,
/// full bus trace, statistics, simulated clock); a durable recursive
/// engine at 16× the largest other bench capacity must round-trip a
/// write/read-back sweep, survive snapshot → restore, and hold trusted
/// posmap bytes ≥8× below the flat table with a snapshot bounded by
/// trusted state rather than N. The simulated throughput ratio (expected
/// exactly 1.0) feeds the trend file.
pub fn capacity_gate(quick: bool) -> GateOutcome {
    capacity::gate(quick)
}

// ------------------------------------------------------------------ rpc

mod rpc {
    use super::*;
    use horam::storage::file::scratch_dir;
    use horam_rpc::server::{
        bind_signals_to_drain, run_server, Checkpoint, ServerConfig, ServerOutcome,
    };
    use horam_rpc::{status, ClientConfig, Endpoint, Listener, RpcClient, RpcError};
    use std::io::BufRead;
    use std::path::Path;
    use std::process::{Command, Stdio};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    const SEED: u64 = 0x59C0;
    /// Real client processes in the throughput phase, one per tenant.
    const CLIENTS: u32 = 4;
    const SHARDS: u64 = 4;
    /// Operations kept in flight per connection (`call_many` batch) —
    /// well under the service's per-tenant queue bound, so the pipeline
    /// never sheds and the comparison measures transport, not
    /// backpressure.
    const PIPELINE: usize = 200;
    /// Writes landed before the SIGTERM in the drain phase.
    const DRAIN_PREFIX: usize = 32;
    /// Writes racing the drain: a prefix lands, the rest shed typed.
    /// Issued in chunks of [`DRAIN_CHUNK`] — a fully pipelined batch
    /// would be admitted wholesale before the signal watcher bridges
    /// SIGTERM onto the drain flag (admitted work is finished, not
    /// shed), so small chunks spread admission across the drain window
    /// and the shed + replay path actually runs.
    const DRAIN_SUFFIX: usize = 256;
    const DRAIN_CHUNK: usize = 8;

    /// Worker processes are this same binary re-exec'd via
    /// `current_exe()`; the role env var routes them into
    /// [`role_hook`] before any bench argument parsing happens.
    const ROLE_ENV: &str = "HORAM_RPC_BENCH_ROLE";
    const ENDPOINT_ENV: &str = "HORAM_RPC_BENCH_ENDPOINT";
    const CLIENT_ENV: &str = "HORAM_RPC_BENCH_CLIENT";
    const OPS_ENV: &str = "HORAM_RPC_BENCH_OPS";
    const CHECKPOINT_ENV: &str = "HORAM_RPC_BENCH_CHECKPOINT";

    /// RPC-vs-in-process throughput floor, host-scaled like the
    /// parallel gate's wall-clock bar: with ≥4 cores the client
    /// processes run beside the server and the single-threaded engine
    /// dominates both sides, so real sockets must sustain ≥80 % of
    /// in-process serving; on smaller hosts the processes time-share
    /// cores with the server and the floor degrades to an overhead
    /// bound. Byte-identical responses are enforced everywhere,
    /// unconditionally.
    fn min_ratio(cores: usize) -> f64 {
        if cores >= 4 {
            0.8
        } else if cores >= 2 {
            0.4
        } else {
            0.2
        }
    }

    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

    /// FNV-1a over the length prefix then the bytes, so response
    /// streams that differ only in framing hash differently.
    fn fnv_update(mut digest: u64, bytes: &[u8]) -> u64 {
        for byte in (bytes.len() as u64)
            .to_le_bytes()
            .into_iter()
            .chain(bytes.iter().copied())
        {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(0x0100_0000_01b3);
        }
        digest
    }

    /// Write payload: a pure function of `(client, index)`.
    fn op_payload(client: u32, index: usize) -> Vec<u8> {
        let mut payload = vec![0u8; PAYLOAD_LEN];
        let tag = (u64::from(client) << 32) | index as u64;
        payload[..8].copy_from_slice(&tag.to_le_bytes());
        let mix = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        payload[8..16].copy_from_slice(&mix.to_le_bytes());
        payload
    }

    /// Client `c`'s deterministic schedule: a mixed read/write stream
    /// (one write per four ops) over its own tenant's disjoint block
    /// range. Disjoint ranges make cross-client interleaving
    /// irrelevant to response bytes, which is what lets N concurrent
    /// processes be compared byte-for-byte against a serial in-process
    /// run of the same streams.
    fn client_ops(client: u32, count: usize) -> Vec<(u64, Option<Vec<u8>>)> {
        let span = CAPACITY / u64::from(CLIENTS);
        let base = u64::from(client) * span;
        (0..count)
            .map(|i| {
                let block = base + (i as u64).wrapping_mul(0x9E37_79B9) % span;
                let payload = (i % 4 == 0).then(|| op_payload(client, i));
                (block, payload)
            })
            .collect()
    }

    /// The gate's service: one per-process build shared by the gate,
    /// the in-process reference, and the re-exec'd server role, so
    /// every side serves the identical deterministic engine.
    fn fresh_service(snapshot: Option<&[u8]>) -> OramService<ShardedOram> {
        let config = ServiceConfig {
            batch_size: BATCH_SIZE,
            ..ServiceConfig::default()
        };
        let base = config
            .engine_config(HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS))
            .with_seed(SEED);
        let master = MasterKey::from_bytes([0xEC; 32]);
        let oram = match snapshot {
            Some(bytes) => ShardedOram::restore(master, |_| MemoryHierarchy::dac2019(), bytes)
                .expect("checkpoint restores"),
            None => ShardedOram::new(ShardedConfig::new(base, SHARDS), master, |_| {
                MemoryHierarchy::dac2019()
            })
            .expect("engine builds"),
        };
        let mut service = OramService::new(oram, Box::new(FifoPolicy), config);
        let span = CAPACITY / u64::from(CLIENTS);
        for tenant in 0..CLIENTS {
            let start = u64::from(tenant) * span;
            service.register_tenant(UserId(tenant), start..start + span, Permission::ReadWrite);
        }
        service
    }

    fn server_config() -> ServerConfig {
        ServerConfig {
            // Sized so four fully-pipelined clients never trip
            // backpressure — this gate measures transport cost, the
            // backpressure path has its own end-to-end tests.
            max_inflight: 4096,
            dedup_window: 8192,
            ..ServerConfig::default()
        }
    }

    /// An in-gate server thread (the throughput server and the
    /// restored post-drain server run inside the gate process; only
    /// the SIGTERM victim needs to be a real child process).
    struct GateServer {
        endpoint: Endpoint,
        drain: Arc<AtomicBool>,
        join: std::thread::JoinHandle<ServerOutcome>,
    }

    fn spawn_server(
        service: OramService<ShardedOram>,
        config: ServerConfig,
        endpoint: &Endpoint,
    ) -> GateServer {
        let listener = Listener::bind(endpoint).expect("gate server binds");
        let endpoint = listener.local_endpoint().expect("local endpoint");
        let drain = Arc::clone(&config.drain);
        let join = std::thread::spawn(move || {
            let mut service = service;
            run_server(&mut service, &listener, &config).expect("gate server drains")
        });
        GateServer {
            endpoint,
            drain,
            join,
        }
    }

    impl GateServer {
        fn drain_join(self) -> ServerOutcome {
            self.drain.store(true, Ordering::Release);
            self.join.join().expect("gate server thread")
        }
    }

    fn gate_client(endpoint: &Endpoint, client_id: u64, tenant: u32) -> RpcClient {
        let mut config = ClientConfig::new(endpoint.clone(), client_id, tenant);
        config.call_deadline = Duration::from_secs(120);
        config.resend_after = Duration::from_secs(2);
        config.backoff = Duration::from_millis(2);
        config.max_redials = 200;
        RpcClient::new(config)
    }

    /// Re-exec hook: when the role env var is set, this process is a
    /// gate worker spawned via `current_exe()`, not the bench — run
    /// the role and exit. Called at the top of every bench `main` that
    /// can host this gate.
    pub(super) fn role_hook() {
        match std::env::var(ROLE_ENV).ok().as_deref() {
            None => {}
            Some("client") => run_client_role(),
            Some("server") => run_server_role(),
            Some(other) => {
                eprintln!("unknown {ROLE_ENV} role {other:?}");
                std::process::exit(2);
            }
        }
    }

    fn role_env(name: &str) -> String {
        std::env::var(name).unwrap_or_else(|_| panic!("{name} must be set for the worker role"))
    }

    /// The client role: run this process's deterministic op stream
    /// through a pipelined [`RpcClient`], then report ops, host
    /// elapsed, and the response digest on stdout for the gate parent.
    fn run_client_role() -> ! {
        let endpoint = Endpoint::parse(&role_env(ENDPOINT_ENV)).expect("role endpoint parses");
        let client_index: u32 = role_env(CLIENT_ENV).parse().expect("client index parses");
        let count: usize = role_env(OPS_ENV).parse().expect("op count parses");
        let ops = client_ops(client_index, count);
        let mut client = gate_client(&endpoint, 1_000 + u64::from(client_index), client_index);
        let started = Instant::now();
        let mut digest = FNV_OFFSET;
        for chunk in ops.chunks(PIPELINE) {
            let outcomes = client.call_many(chunk.to_vec()).expect("batch transport");
            for outcome in outcomes {
                digest = fnv_update(digest, &outcome.expect("op serves"));
            }
        }
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        println!("RESULT {count} {elapsed_ms:.3} {digest:016x}");
        std::process::exit(0);
    }

    /// The server role: the SIGTERM victim. Serves the gate's fresh
    /// engine until the signal-bridged drain completes, then writes
    /// the checkpoint file and exits 0.
    fn run_server_role() -> ! {
        let endpoint = Endpoint::parse(&role_env(ENDPOINT_ENV)).expect("role endpoint parses");
        let checkpoint_path = std::path::PathBuf::from(role_env(CHECKPOINT_ENV));
        let mut service = fresh_service(None);
        let drain = Arc::new(AtomicBool::new(false));
        bind_signals_to_drain(Arc::clone(&drain));
        let config = ServerConfig {
            drain,
            ..server_config()
        };
        let listener = Listener::bind(&endpoint).expect("role server binds");
        println!("READY");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let outcome = run_server(&mut service, &listener, &config).expect("role server drains");
        std::fs::write(&checkpoint_path, outcome.checkpoint.to_bytes())
            .expect("checkpoint file writes");
        if let Endpoint::Unix(path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
        std::process::exit(0);
    }

    #[derive(Debug, Serialize)]
    struct ClientRow {
        client: u32,
        ops: usize,
        /// Host wall clock of the op loop inside the client process.
        elapsed_ms: f64,
        digest: String,
        matches_reference: bool,
    }

    #[derive(Debug, Serialize)]
    struct Report {
        bench: &'static str,
        clients: u32,
        ops_per_client: usize,
        pipeline: usize,
        available_parallelism: usize,
        /// Host wall-clock ratios — deliberately absent from the trend
        /// file, like the parallel gate's (runner-dependent).
        in_process_rps: f64,
        rpc_rps: f64,
        throughput_ratio: f64,
        min_ratio: f64,
        digests_match: bool,
        served: u64,
        connections: u64,
        rows: Vec<ClientRow>,
        drain_writes: usize,
        landed_before_exit: usize,
        suffix_shed_typed: bool,
        drain_exit_ok: bool,
        checkpoint_bytes: usize,
        window_entries: usize,
        restored_epoch: u64,
        epoch_visible: bool,
        replayed: usize,
        state_match: bool,
        pass: bool,
    }

    pub(super) fn gate(quick: bool) -> GateOutcome {
        let mut ops_per_client = 1_200usize;
        if quick {
            ops_per_client /= 4;
            println!("(--quick: scaled to 1/4)\n");
        }
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threshold = min_ratio(cores);
        println!(
            "Network serving — {CLIENTS} client processes × {ops_per_client} pipelined ops \
             against one server ({SHARDS} shards over {CAPACITY} blocks), then SIGTERM \
             drain → checkpoint → restore → replay; {cores} host core(s)\n"
        );

        let scratch = scratch_dir("bench-rpc");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(&scratch, ops_per_client, cores, threshold)
        }));
        let _ = std::fs::remove_dir_all(&scratch);
        match result {
            Ok(outcome) => outcome,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    fn run(scratch: &Path, ops_per_client: usize, cores: usize, threshold: f64) -> GateOutcome {
        // Phase 1 — N real client processes vs the in-process service.
        let server = spawn_server(
            fresh_service(None),
            server_config(),
            &Endpoint::Tcp("127.0.0.1:0".into()),
        );
        let exe = std::env::current_exe().expect("current exe");
        let children: Vec<_> = (0..CLIENTS)
            .map(|client| {
                Command::new(&exe)
                    .env(ROLE_ENV, "client")
                    .env(ENDPOINT_ENV, server.endpoint.to_string())
                    .env(CLIENT_ENV, client.to_string())
                    .env(OPS_ENV, ops_per_client.to_string())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::inherit())
                    .spawn()
                    .expect("client process spawns")
            })
            .collect();

        let mut measured: Vec<(usize, f64, u64)> = Vec::new();
        for child in children {
            let output = child.wait_with_output().expect("client process runs");
            assert!(
                output.status.success(),
                "client process failed: {:?}",
                output.status
            );
            let stdout = String::from_utf8_lossy(&output.stdout);
            let line = stdout
                .lines()
                .rev()
                .find(|line| line.starts_with("RESULT "))
                .unwrap_or_else(|| panic!("no RESULT line in {stdout:?}"));
            let mut fields = line.split_whitespace().skip(1);
            let ops: usize = fields.next().expect("ops field").parse().expect("ops");
            let elapsed_ms: f64 = fields
                .next()
                .expect("elapsed field")
                .parse()
                .expect("elapsed");
            let digest =
                u64::from_str_radix(fields.next().expect("digest field"), 16).expect("digest");
            measured.push((ops, elapsed_ms, digest));
        }
        let outcome = server.drain_join();

        // In-process yardstick: the identical four streams through an
        // identical service, no sockets, same pipelining depth.
        let mut service = fresh_service(None);
        let started = Instant::now();
        let mut reference_digests = Vec::new();
        for client in 0..CLIENTS {
            let ops = client_ops(client, ops_per_client);
            let mut digest = FNV_OFFSET;
            for chunk in ops.chunks(PIPELINE) {
                let tickets: Vec<_> = chunk
                    .iter()
                    .map(|(block, payload)| {
                        let request = match payload {
                            Some(bytes) => Request::write(*block, bytes.clone()),
                            None => Request::read(*block),
                        };
                        service
                            .submit(UserId(client), request)
                            .expect("reference submit")
                    })
                    .collect();
                for ticket in tickets {
                    let response = service
                        .take_result_timeout(ticket, 1_000_000)
                        .expect("reference serves");
                    digest = fnv_update(digest, &response);
                }
            }
            reference_digests.push(digest);
        }
        let in_process_ms = started.elapsed().as_secs_f64() * 1e3;

        let total_ops = ops_per_client * CLIENTS as usize;
        let rpc_ms = measured.iter().map(|(_, ms, _)| *ms).fold(0.0f64, f64::max);
        let rpc_rps = total_ops as f64 / (rpc_ms / 1e3).max(f64::MIN_POSITIVE);
        let in_process_rps = total_ops as f64 / (in_process_ms / 1e3).max(f64::MIN_POSITIVE);
        let ratio = rpc_rps / in_process_rps.max(f64::MIN_POSITIVE);

        let rows: Vec<ClientRow> = measured
            .iter()
            .enumerate()
            .map(|(i, (ops, elapsed_ms, digest))| ClientRow {
                client: i as u32,
                ops: *ops,
                elapsed_ms: *elapsed_ms,
                digest: format!("{digest:016x}"),
                matches_reference: *digest == reference_digests[i],
            })
            .collect();
        let digests_match = rows.iter().all(|row| row.matches_reference);

        let mut table = Table::new(vec!["client", "ops", "wall", "throughput", "matches ref"]);
        for row in &rows {
            table.row(vec![
                row.client.to_string(),
                row.ops.to_string(),
                format!("{:.1} ms", row.elapsed_ms),
                format!("{:.0} req/s", row.ops as f64 / (row.elapsed_ms / 1e3)),
                row.matches_reference.to_string(),
            ]);
        }
        println!("{table}");
        println!(
            "aggregate: {rpc_rps:.0} req/s over sockets vs {in_process_rps:.0} req/s in-process \
             → ratio {ratio:.2} (required ≥ {threshold:.2} on {cores} core(s)); server served \
             {} over {} connections",
            outcome.counters.served, outcome.counters.connections
        );

        // Phase 2 — SIGTERM a real server process mid-load, then
        // restore its checkpoint and replay what the drain shed.
        let sock = scratch.join("drain.sock");
        let ckpt_path = scratch.join("drain.ckpt");
        let mut child = Command::new(&exe)
            .env(ROLE_ENV, "server")
            .env(ENDPOINT_ENV, format!("unix://{}", sock.display()))
            .env(CHECKPOINT_ENV, &ckpt_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("server process spawns");
        {
            let stdout = child.stdout.as_mut().expect("server stdout");
            let mut line = String::new();
            std::io::BufReader::new(stdout)
                .read_line(&mut line)
                .expect("server READY line");
            assert!(line.starts_with("READY"), "server role said {line:?}");
        }

        let span = CAPACITY / u64::from(CLIENTS);
        let drain_ops: Vec<(u64, Vec<u8>)> = (0..DRAIN_PREFIX + DRAIN_SUFFIX)
            .map(|i| ((i as u64).wrapping_mul(13) % span, op_payload(9, i)))
            .collect();
        let endpoint = Endpoint::Unix(sock.clone());
        let mut pusher = gate_client(&endpoint, 9_000, 0);
        let prefix: Vec<(u64, Option<Vec<u8>>)> = drain_ops[..DRAIN_PREFIX]
            .iter()
            .map(|(block, payload)| (*block, Some(payload.clone())))
            .collect();
        for op in pusher.call_many(prefix).expect("pre-drain batch") {
            op.expect("pre-drain write lands");
        }

        let kill = Command::new("kill")
            .args(["-TERM", &child.id().to_string()])
            .status()
            .expect("kill spawns");
        assert!(kill.success(), "kill -TERM failed");
        let suffix: Vec<(u64, Option<Vec<u8>>)> = drain_ops[DRAIN_PREFIX..]
            .iter()
            .map(|(block, payload)| (*block, Some(payload.clone())))
            .collect();
        // The racing writes: because drain is monotonic and admission
        // is per-connection FIFO, whatever lands must be a prefix and
        // everything after it must shed with the typed SHUTTING_DOWN
        // (or never reach a server at all once it has exited — those
        // ops simply join the replay set).
        let mut landed_suffix = 0usize;
        let mut suffix_shed_typed = true;
        'racing: for chunk in suffix.chunks(DRAIN_CHUNK) {
            match pusher.call_many(chunk.to_vec()) {
                Ok(outcomes) => {
                    let mut seen_shed = false;
                    for op in outcomes {
                        match op {
                            Ok(_) if !seen_shed => landed_suffix += 1,
                            Ok(_) => suffix_shed_typed = false,
                            Err(RpcError::Status { code, .. }) if code == status::SHUTTING_DOWN => {
                                seen_shed = true;
                            }
                            Err(_) => suffix_shed_typed = false,
                        }
                    }
                    if seen_shed {
                        break 'racing;
                    }
                }
                // The server finished draining under this chunk; its
                // ops never landed. (Replaying a write that did land
                // would be harmless anyway — same payload, same
                // per-block order.)
                Err(_) => break 'racing,
            }
        }

        let drain_exit_ok = child.wait().expect("server role exits").success();
        let ckpt_bytes = std::fs::read(&ckpt_path).expect("checkpoint file");
        let checkpoint = Checkpoint::from_bytes(&ckpt_bytes).expect("checkpoint parses");
        let window_entries = checkpoint.window.len();

        let restored_epoch = checkpoint.epoch + 1;
        let restored = spawn_server(
            fresh_service(Some(&checkpoint.snapshot)),
            ServerConfig {
                epoch: restored_epoch,
                preload_window: checkpoint.window,
                ..server_config()
            },
            &Endpoint::Unix(scratch.join("restart.sock")),
        );
        let mut replayer = gate_client(&restored.endpoint, 9_001, 0);
        let landed = DRAIN_PREFIX + landed_suffix;
        let replay: Vec<(u64, Option<Vec<u8>>)> = drain_ops[landed..]
            .iter()
            .map(|(block, payload)| (*block, Some(payload.clone())))
            .collect();
        let replayed = replay.len();
        if !replay.is_empty() {
            for op in replayer.call_many(replay).expect("replay batch") {
                op.expect("replayed write lands");
            }
        }

        // Last-write-wins oracle: the uninterrupted run's final state,
        // computed analytically. Reading it back through the restored
        // server proves drain → checkpoint → restore → replay converges
        // on exactly the uninterrupted outcome.
        let mut expected: std::collections::BTreeMap<u64, Vec<u8>> =
            std::collections::BTreeMap::new();
        for (block, payload) in &drain_ops {
            expected.insert(*block, payload.clone());
        }
        let mut state_match = true;
        for (block, payload) in &expected {
            let got = replayer.read(*block).expect("post-restore read-back");
            if got != *payload {
                state_match = false;
            }
        }
        let epoch_visible = replayer.epoch() == Some(restored_epoch);
        let restored_outcome = restored.drain_join();

        println!(
            "drain: {landed}/{} writes landed before exit (suffix shed typed: \
             {suffix_shed_typed}), checkpoint {} KB with {window_entries} window entries, \
             restored epoch {restored_epoch} replayed {replayed} and matches the \
             uninterrupted run: {state_match} (restored server served {})",
            drain_ops.len(),
            ckpt_bytes.len() / 1024,
            restored_outcome.counters.served,
        );

        let pass = digests_match
            && ratio >= threshold
            && drain_exit_ok
            && suffix_shed_typed
            && state_match
            && epoch_visible;
        if pass {
            println!(
                "OK: real client processes sustain the in-process floor byte-identically, \
                 and SIGTERM drain → restore → replay converges on the uninterrupted run.\n"
            );
        } else {
            println!("REGRESSION: rpc gate failed.\n");
        }

        let report = Report {
            bench: "rpc",
            clients: CLIENTS,
            ops_per_client,
            pipeline: PIPELINE,
            available_parallelism: cores,
            in_process_rps,
            rpc_rps,
            throughput_ratio: ratio,
            min_ratio: threshold,
            digests_match,
            served: outcome.counters.served,
            connections: outcome.counters.connections,
            rows,
            drain_writes: drain_ops.len(),
            landed_before_exit: landed,
            suffix_shed_typed,
            drain_exit_ok,
            checkpoint_bytes: ckpt_bytes.len(),
            window_entries,
            restored_epoch,
            epoch_visible,
            replayed,
            state_match,
            pass,
        };
        GateOutcome {
            name: "rpc",
            pass,
            report: report.to_value(),
        }
    }
}

/// The rpc gate: four real client processes (re-exec'd via
/// `current_exe()`) pipeline deterministic op streams over TCP against
/// one `horam-rpc` server and must sustain the host-scaled fraction
/// (≥80 % on ≥4 cores) of in-process serving throughput with
/// byte-identical responses; then a real server process takes a SIGTERM
/// mid-load, drains gracefully (suffix shed with the typed
/// `SHUTTING_DOWN`), writes its checkpoint, and a restore + replay of
/// the shed writes must converge on exactly the uninterrupted run's
/// state. Host wall-clock ratios stay out of the trend file.
pub fn rpc_gate(quick: bool) -> GateOutcome {
    rpc::gate(quick)
}

/// Re-exec hook for the rpc gate's worker processes. Every bench
/// binary that can host the gate calls this first in `main`; when the
/// role env var is set the process runs as a gate worker (client or
/// SIGTERM-victim server) and exits instead of benching.
pub fn rpc_role_hook() {
    rpc::role_hook();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_suite(serving: f64, io_zipf: f64, sharding: f64) -> Value {
        let gate = |name: &str, report: Value| {
            Value::Map(vec![
                ("gate".into(), Value::Str(name.into())),
                ("pass".into(), Value::Bool(true)),
                ("report".into(), report),
            ])
        };
        let num = |v: f64| Value::Num(serde::Number::F(v));
        Value::Map(vec![(
            "gates".into(),
            Value::Seq(vec![
                gate(
                    "serving",
                    Value::Map(vec![
                        ("vs_sequential".into(), num(serving)),
                        ("vs_per_request".into(), num(serving * 4.0)),
                    ]),
                ),
                gate(
                    "io_pipeline",
                    Value::Map(vec![(
                        "workloads".into(),
                        Value::Seq(vec![Value::Map(vec![
                            ("workload".into(), Value::Str("zipf-hit-bound".into())),
                            ("io_speedup".into(), num(io_zipf)),
                            ("wall_speedup".into(), num(io_zipf / 2.0)),
                        ])]),
                    )]),
                ),
                gate(
                    "sharding",
                    Value::Map(vec![
                        ("io_speedup".into(), num(sharding)),
                        ("wall_speedup".into(), num(sharding)),
                    ]),
                ),
            ]),
        )])
    }

    #[test]
    fn trend_metrics_cover_all_three_gates_including_nested_io_rows() {
        let metrics = trend_metrics(&fake_suite(1.5, 2.0, 3.0));
        let names: Vec<&str> = metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"serving.vs_sequential"));
        assert!(names.contains(&"serving.vs_per_request"));
        assert!(names.contains(&"io_pipeline.zipf-hit-bound.io_speedup"));
        assert!(names.contains(&"io_pipeline.zipf-hit-bound.wall_speedup"));
        assert!(names.contains(&"sharding.io_speedup"));
        assert_eq!(metrics.len(), 6);
    }

    #[test]
    fn baseline_diff_flags_regressions_and_missing_metrics() {
        let baseline = fake_suite(1.5, 2.0, 3.0);
        // Identical: clean.
        assert!(baseline_regressions(&fake_suite(1.5, 2.0, 3.0), &baseline, 0.25).is_empty());
        // Within tolerance: clean.
        assert!(baseline_regressions(&fake_suite(1.2, 1.6, 2.4), &baseline, 0.25).is_empty());
        // The nested io_pipeline ratio regressing below the floor trips.
        let regressions = baseline_regressions(&fake_suite(1.5, 1.0, 3.0), &baseline, 0.25);
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("io_pipeline.zipf-hit-bound.io_speedup")),
            "{regressions:?}"
        );
        // A metric vanishing from the fresh report trips too.
        let gutted = fake_suite(1.5, 2.0, 3.0);
        let Value::Map(mut entries) = gutted else {
            unreachable!()
        };
        let Value::Seq(gates) = &mut entries[0].1 else {
            unreachable!()
        };
        gates.pop(); // drop the sharding gate
        let regressions = baseline_regressions(&Value::Map(entries), &baseline, 0.25);
        assert!(regressions
            .iter()
            .any(|r| r.contains("sharding.io_speedup")));
    }
}

//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Tables 5-3 and 5-4 of the paper compare H-ORAM against the
//! tree-top-cache Path ORAM baseline on the same machine and request
//! trace. [`run_horam`] and [`run_tree_top_baseline`] execute those two
//! systems under identical [`TableParams`] and return the row quantities
//! the paper reports.
//!
//! **Payload scaling.** The paper's experiments move gigabytes of 1 KB
//! blocks; the simulator charges timing for full 1 KB blocks while storing
//! small payloads (`TableParams::payload_len`), so the harness reproduces
//! the timing at a small fraction of the host cost. See DESIGN.md §2.
//!
//! **Workload calibration.** The paper says only that 80 % of requests
//! fall "in a certain area". Working backwards from its measured I/O
//! counts (7 228 of 25 000 and 129 235 of 500 000): subtracting the
//! unavoidable cold-miss floor (20 % uniform traffic) leaves room for a
//! hot region of ≈`n/8` blocks warmed once per period — that sizing
//! reproduces both tables' I/O counts within ~15 %, so the harness uses
//! it; EXPERIMENTS.md records the sensitivity.

use horam::prelude::*;
use horam::protocols::{build_tree_top_cache, Oram, PathOramConfig, TreeBackend};
use horam::storage::calibration::MachineConfig;
use horam::storage::clock::SimClock;
use horam::workload::WorkloadGenerator;

pub mod gates;

/// Parameters of one table experiment.
#[derive(Debug, Clone)]
pub struct TableParams {
    /// Dataset size in blocks (1 KB logical blocks).
    pub capacity_blocks: u64,
    /// Memory budget in block slots.
    pub memory_slots: u64,
    /// Number of requests to drive.
    pub requests: usize,
    /// Stored payload bytes (timing always charges the 1 KB block).
    pub payload_len: usize,
    /// Workload / protocol seed.
    pub seed: u64,
}

impl TableParams {
    /// Table 5-3: 64 MB dataset, 8 MB memory, 25 000 requests.
    pub fn table_5_3() -> Self {
        Self {
            capacity_blocks: 64 * 1024, // 64 MB of 1 KB blocks
            memory_slots: 8 * 1024,     // 8 MB
            requests: 25_000,
            payload_len: 16,
            seed: 53,
        }
    }

    /// Table 5-4: 1 GB dataset, 128 MB memory, 500 000 requests.
    pub fn table_5_4() -> Self {
        Self {
            capacity_blocks: 1 << 20, // 1 GB of 1 KB blocks
            memory_slots: 1 << 17,    // 128 MB
            requests: 500_000,
            payload_len: 16,
            seed: 54,
        }
    }

    /// Divides the scale for a smoke-test run (`--quick`).
    pub fn quick(mut self) -> Self {
        self.capacity_blocks /= 8;
        self.memory_slots /= 8;
        self.requests /= 8;
        self
    }

    /// The paper-calibrated hot-region workload (see module docs).
    pub fn workload(&self) -> Vec<Request> {
        let hot_fraction = (self.memory_slots as f64 / 8.0) / self.capacity_blocks as f64;
        let mut generator =
            HotspotWorkload::new(self.capacity_blocks, 0.8, hot_fraction, 0.0, 0, self.seed);
        generator.generate(self.requests)
    }
}

/// Row quantities of the paper's Tables 5-3/5-4 for one system.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// Storage footprint in bytes.
    pub storage_bytes: u64,
    /// Memory footprint in bytes.
    pub memory_bytes: u64,
    /// Number of I/O accesses issued.
    pub io_accesses: u64,
    /// Mean storage time per I/O access.
    pub io_latency: SimDuration,
    /// Total shuffle time and shuffle count (zero for the baseline).
    pub shuffle_time: SimDuration,
    /// Number of shuffles.
    pub shuffles: u64,
    /// Total simulated wall-clock time.
    pub total_time: SimDuration,
}

/// Runs H-ORAM under `params`, returning its table row.
pub fn run_horam(params: &TableParams) -> SystemRow {
    let config = HOramConfig::new(
        params.capacity_blocks,
        params.payload_len,
        params.memory_slots,
    )
    .with_seed(params.seed);
    let mut oram = HOram::new(
        config,
        MemoryHierarchy::dac2019(),
        MasterKey::from_bytes([0xB5; 32]),
    )
    .expect("h-oram builds");

    let requests = params.workload();
    oram.run_batch(&requests).expect("batch completes");

    let stats = oram.stats();
    SystemRow {
        storage_bytes: oram.storage_bytes(),
        memory_bytes: params.memory_slots * 1024,
        io_accesses: stats.total_io_loads(),
        io_latency: stats.mean_io_latency(),
        shuffle_time: stats.shuffle_wall_time,
        shuffles: stats.shuffles,
        total_time: stats.total_wall_time(),
    }
}

/// Runs the tree-top-cache Path ORAM baseline under `params`.
pub fn run_tree_top_baseline(params: &TableParams) -> SystemRow {
    let machine = MachineConfig::dac2019();
    let clock = SimClock::new();
    let (mut oram, _split) = build_tree_top_cache(
        PathOramConfig::new(params.capacity_blocks, params.payload_len),
        params.memory_slots,
        machine.build_memory(clock.clone(), None),
        machine.build_storage(clock.clone(), None),
        &MasterKey::from_bytes([0xA4; 32]).derive("bench/ttc", 0),
    )
    .expect("baseline builds");

    // The baseline starts with the dataset resident (the paper's setting).
    oram.bulk_load(
        (0..params.capacity_blocks).map(|i| (BlockId(i), vec![0u8; params.payload_len])),
    )
    .expect("bulk load");
    // Construction traffic must not pollute the measured run.
    let (construction_memory, construction_storage) = oram.backend().stats();

    let requests = params.workload();
    for request in &requests {
        oram.access(request).expect("access");
    }

    let (memory, storage) = oram.backend().stats();
    let memory = memory.delta_since(&construction_memory);
    let storage = storage.delta_since(&construction_storage);
    let geometry_slots = oram.geometry().total_slots();
    SystemRow {
        storage_bytes: geometry_slots.saturating_sub(params.memory_slots) * 1024,
        memory_bytes: params.memory_slots * 1024,
        io_accesses: requests.len() as u64,
        io_latency: storage.busy / requests.len() as u64,
        shuffle_time: SimDuration::ZERO,
        shuffles: 0,
        total_time: storage.busy + memory.busy,
    }
}

/// Command-line options shared by every bench binary. Historically each
/// binary hand-parsed its flags (`--quick` here, `--out` there); this is
/// the one parser they all go through now, so flags cannot drift in
/// meaning between binaries.
///
/// Recognized flags:
///
/// * `--quick` — scale the experiment down for smoke runs;
/// * `--out <path>` — where the machine-readable JSON report goes;
/// * `--baseline <path>` — a previously committed report to diff the
///   fresh one against (the suite's trend-regression check).
///
/// Unknown arguments are ignored (binaries historically tolerated them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--quick` was given.
    pub quick: bool,
    /// `--out <path>`, if given.
    pub out: Option<std::path::PathBuf>,
    /// `--baseline <path>`, if given.
    pub baseline: Option<std::path::PathBuf>,
}

impl BenchArgs {
    /// Parses the process's command line.
    ///
    /// # Panics
    ///
    /// Panics if `--out` or `--baseline` is given without a following
    /// path (CI treats that as a failed run, loudly).
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable core of
    /// [`parse`](Self::parse)).
    ///
    /// # Panics
    ///
    /// As [`parse`](Self::parse).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut parsed = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => parsed.quick = true,
                "--out" => {
                    parsed.out = Some(args.next().expect("--out requires a path argument").into());
                }
                "--baseline" => {
                    parsed.baseline = Some(
                        args.next()
                            .expect("--baseline requires a path argument")
                            .into(),
                    );
                }
                _ => {}
            }
        }
        parsed
    }

    /// The report path: `--out` if given, else `default`.
    pub fn out_or(&self, default: &str) -> std::path::PathBuf {
        self.out.clone().unwrap_or_else(|| default.into())
    }
}

/// Parses the conventional `--quick` flag (thin wrapper over
/// [`BenchArgs`]; prefer parsing once).
pub fn quick_flag() -> bool {
    BenchArgs::parse().quick
}

/// Formats a speedup factor.
pub fn speedup(baseline: SimDuration, ours: SimDuration) -> String {
    if ours.as_nanos() == 0 {
        return "n/a".into();
    }
    format!(
        "{:.1}x",
        baseline.as_nanos() as f64 / ours.as_nanos() as f64
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_args_parse_flags_in_any_order() {
        let args = BenchArgs::parse_from(
            ["--out", "a.json", "--quick", "--baseline", "b.json", "junk"].map(String::from),
        );
        assert!(args.quick);
        assert_eq!(args.out_or("x.json"), std::path::PathBuf::from("a.json"));
        assert_eq!(args.baseline, Some("b.json".into()));
        let defaults = BenchArgs::parse_from([]);
        assert!(!defaults.quick);
        assert_eq!(
            defaults.out_or("x.json"),
            std::path::PathBuf::from("x.json")
        );
    }

    #[test]
    #[should_panic(expected = "--out requires a path")]
    fn out_without_path_panics() {
        let _ = BenchArgs::parse_from(["--out".to_string()]);
    }

    #[test]
    fn quick_scales_down() {
        let params = TableParams::table_5_3().quick();
        assert_eq!(params.capacity_blocks, 8 * 1024);
        assert_eq!(params.requests, 3_125);
    }

    #[test]
    fn workload_is_hot_heavy() {
        let params = TableParams::table_5_3().quick();
        let requests = params.workload();
        let hot_bound = params.memory_slots / 2;
        let hot = requests.iter().filter(|r| r.id.0 < hot_bound).count();
        assert!(hot as f64 / requests.len() as f64 > 0.7);
    }

    #[test]
    fn tiny_experiment_shapes_hold() {
        // A miniature of Table 5-3: H-ORAM must beat the baseline on total
        // time and use fewer I/O accesses.
        let params = TableParams {
            capacity_blocks: 2048,
            memory_slots: 256,
            requests: 600,
            payload_len: 8,
            seed: 5,
        };
        let horam = run_horam(&params);
        let baseline = run_tree_top_baseline(&params);
        assert!(
            horam.io_accesses < baseline.io_accesses,
            "H-ORAM {} vs baseline {} I/O accesses",
            horam.io_accesses,
            baseline.io_accesses
        );
        assert!(
            horam.total_time < baseline.total_time,
            "H-ORAM {} vs baseline {}",
            horam.total_time,
            baseline.total_time
        );
        assert!(horam.io_latency < baseline.io_latency);
    }
}

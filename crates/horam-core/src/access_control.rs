//! Access control for the multi-user scheduler (paper §5.3.2).
//!
//! "To protect the access pattern from potential malicious users, some
//! access control protection is required and can be added to our
//! scheduler." This module adds it: a per-user block-range capability
//! table checked in the trusted control layer **before** requests enter
//! the ROB, so a rejected request produces *no observable access at all*
//! (rejections cost only trusted-side work — an adversary cannot learn a
//! victim's ranges by timing probe rejections).

use crate::multi_user::UserId;
use oram_protocols::types::{BlockId, Request, RequestOp};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::ops::Range;

/// Rights a user can hold on a block range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Permission {
    /// Read-only access.
    ReadOnly,
    /// Read and write access.
    ReadWrite,
}

impl Permission {
    fn allows(&self, op: &RequestOp) -> bool {
        match (self, op) {
            (_, RequestOp::Read) => true,
            (Permission::ReadWrite, RequestOp::Write(_)) => true,
            (Permission::ReadOnly, RequestOp::Write(_)) => false,
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessDenied {
    /// No grant covers the block.
    NoGrant {
        /// The requesting user.
        user: UserId,
        /// The block requested.
        block: BlockId,
    },
    /// A grant covers the block but forbids writing.
    ReadOnly {
        /// The requesting user.
        user: UserId,
        /// The block requested.
        block: BlockId,
    },
}

impl fmt::Display for AccessDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessDenied::NoGrant { user, block } => {
                write!(f, "{user} holds no grant covering {block}")
            }
            AccessDenied::ReadOnly { user, block } => {
                write!(f, "{user} may not write {block} (read-only grant)")
            }
        }
    }
}

impl Error for AccessDenied {}

/// A per-user capability table over block ranges.
///
/// # Example
///
/// ```
/// use horam_core::access_control::{AccessControl, Permission};
/// use horam_core::multi_user::UserId;
/// use oram_protocols::types::Request;
///
/// let mut acl = AccessControl::new();
/// acl.grant(UserId(0), 0..100, Permission::ReadWrite);
/// acl.grant(UserId(1), 50..100, Permission::ReadOnly);
///
/// assert!(acl.check(UserId(0), &Request::write(10u64, vec![1])).is_ok());
/// assert!(acl.check(UserId(1), &Request::read(60u64)).is_ok());
/// assert!(acl.check(UserId(1), &Request::write(60u64, vec![1])).is_err());
/// assert!(acl.check(UserId(1), &Request::read(10u64)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    /// user → (range start → (range end, permission)); ranges may overlap,
    /// the most permissive covering grant wins.
    grants: BTreeMap<UserId, Vec<(Range<u64>, Permission)>>,
}

impl AccessControl {
    /// An empty table (everything denied).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `user` the permission over `range` (half-open block ids).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn grant(&mut self, user: UserId, range: Range<u64>, permission: Permission) {
        assert!(range.start < range.end, "grant range must be non-empty");
        self.grants
            .entry(user)
            .or_default()
            .push((range, permission));
    }

    /// Revokes every grant of `user`.
    pub fn revoke_all(&mut self, user: UserId) {
        self.grants.remove(&user);
    }

    /// Number of users holding grants.
    pub fn users(&self) -> usize {
        self.grants.len()
    }

    /// Checks one request.
    ///
    /// # Errors
    ///
    /// [`AccessDenied::NoGrant`] when no range covers the block,
    /// [`AccessDenied::ReadOnly`] when coverage exists but writing is
    /// forbidden.
    pub fn check(&self, user: UserId, request: &Request) -> Result<(), AccessDenied> {
        let Some(grants) = self.grants.get(&user) else {
            return Err(AccessDenied::NoGrant {
                user,
                block: request.id,
            });
        };
        let covering: Vec<&(Range<u64>, Permission)> = grants
            .iter()
            .filter(|(range, _)| range.contains(&request.id.0))
            .collect();
        if covering.is_empty() {
            return Err(AccessDenied::NoGrant {
                user,
                block: request.id,
            });
        }
        if covering.iter().any(|(_, p)| p.allows(&request.op)) {
            Ok(())
        } else {
            Err(AccessDenied::ReadOnly {
                user,
                block: request.id,
            })
        }
    }

    /// Filters a user's queue down to its permitted requests, returning
    /// the rejections alongside. This is the scheduler's admission step:
    /// rejected requests never reach the ROB, so they generate no bus
    /// traffic.
    pub fn admit(
        &self,
        user: UserId,
        requests: Vec<Request>,
    ) -> (Vec<Request>, Vec<(Request, AccessDenied)>) {
        let mut admitted = Vec::with_capacity(requests.len());
        let mut rejected = Vec::new();
        for request in requests {
            match self.check(user, &request) {
                Ok(()) => admitted.push(request),
                Err(denial) => rejected.push((request, denial)),
            }
        }
        (admitted, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deny() {
        let acl = AccessControl::new();
        let err = acl.check(UserId(0), &Request::read(1u64)).unwrap_err();
        assert!(matches!(err, AccessDenied::NoGrant { .. }));
    }

    #[test]
    fn read_write_grants() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(1), 10..20, Permission::ReadWrite);
        assert!(acl.check(UserId(1), &Request::read(15u64)).is_ok());
        assert!(acl
            .check(UserId(1), &Request::write(15u64, vec![0]))
            .is_ok());
        assert!(
            acl.check(UserId(1), &Request::read(20u64)).is_err(),
            "end is exclusive"
        );
    }

    #[test]
    fn read_only_rejects_writes() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(2), 0..5, Permission::ReadOnly);
        assert!(acl.check(UserId(2), &Request::read(3u64)).is_ok());
        let err = acl
            .check(UserId(2), &Request::write(3u64, vec![0]))
            .unwrap_err();
        assert!(matches!(err, AccessDenied::ReadOnly { .. }));
    }

    #[test]
    fn overlapping_grants_take_the_most_permissive() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(3), 0..10, Permission::ReadOnly);
        acl.grant(UserId(3), 5..10, Permission::ReadWrite);
        assert!(acl.check(UserId(3), &Request::write(7u64, vec![0])).is_ok());
        assert!(acl
            .check(UserId(3), &Request::write(2u64, vec![0]))
            .is_err());
    }

    #[test]
    fn users_are_isolated() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(0), 0..10, Permission::ReadWrite);
        assert!(acl.check(UserId(1), &Request::read(5u64)).is_err());
    }

    #[test]
    fn revoke_all_removes_access() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(0), 0..10, Permission::ReadWrite);
        acl.revoke_all(UserId(0));
        assert!(acl.check(UserId(0), &Request::read(5u64)).is_err());
        assert_eq!(acl.users(), 0);
    }

    #[test]
    fn admit_partitions_queues() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(0), 0..4, Permission::ReadOnly);
        let queue = vec![
            Request::read(1u64),
            Request::write(1u64, vec![0]),
            Request::read(9u64),
        ];
        let (admitted, rejected) = acl.admit(UserId(0), queue);
        assert_eq!(admitted.len(), 1);
        assert_eq!(rejected.len(), 2);
    }

    #[test]
    fn denial_messages_are_specific() {
        let mut acl = AccessControl::new();
        acl.grant(UserId(4), 0..2, Permission::ReadOnly);
        let err = acl
            .check(UserId(4), &Request::write(1u64, vec![0]))
            .unwrap_err();
        assert!(err.to_string().contains("read-only"));
    }
}

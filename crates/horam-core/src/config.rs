//! H-ORAM configuration.
//!
//! Collects every knob the paper defines: dataset size `N`, memory tree
//! budget `n`, the stage schedule for the grouping factor `c` (§4.2,
//! evaluated with `{c₁=1, c₂=3, c₃=5}` over fractions `{0.20, 0.13,
//! 0.67}` of the period, ĉ ≈ 3.94), the prefetch distance `d > c`, the
//! oblivious shuffle used by the tree evict, and the partial-shuffle ratio
//! of §5.3.1.

use crate::pipeline::PipelineConfig;
use oram_shuffle::ShuffleAlgorithm;

/// One stage of the scheduler's `c` schedule (§4.2): during the given
/// fraction of the access period, each cycle groups `c` in-memory requests
/// with one I/O load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePlan {
    /// Grouping factor for this stage.
    pub c: u32,
    /// Fraction of the period's I/O budget this stage covers (0, 1].
    pub fraction: f64,
}

/// Full-system configuration. Build with [`HOramConfig::new`] and adjust
/// fields through the `with_*` methods.
///
/// # Example
///
/// ```
/// use horam_core::config::HOramConfig;
///
/// let config = HOramConfig::new(1 << 16, 64, 1 << 12)
///     .with_seed(7)
///     .with_prefetch_distance(20);
/// assert_eq!(config.period_io_limit(), 1 << 11);
/// assert!((config.average_c() - 3.94).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HOramConfig {
    /// Dataset size `N` in blocks.
    pub capacity: u64,
    /// Application payload bytes per block.
    pub payload_len: usize,
    /// Memory tree budget `n` in block slots.
    pub memory_slots: u64,
    /// Path ORAM bucket size (paper: 4).
    pub z: u32,
    /// The `c` schedule (paper default: 1/3/5 over 0.20/0.13/0.67).
    pub stages: Vec<StagePlan>,
    /// Prefetch window `d` in ROB entries; must exceed every stage `c`.
    pub prefetch_distance: usize,
    /// Oblivious shuffle for the tree-evict buffer (§4.3.1).
    pub evict_shuffle: ShuffleAlgorithm,
    /// In-enclave shuffle for partition rebuilds (§4.3.2; paper uses
    /// CacheShuffle).
    pub partition_shuffle: ShuffleAlgorithm,
    /// Partial-shuffle ratio `r` (§5.3.1): shuffle `⌈r·√N⌉` partitions per
    /// period. `None` (the default) shuffles every partition.
    pub partial_shuffle_ratio: Option<f64>,
    /// I/O loads issued per [`StorageLayer::load_batch`] scatter read when
    /// the scheduler drains in windowed mode: up to `io_batch` scheduling
    /// cycles are planned control-side, their loads submitted to the
    /// device as one queued batch, and their memory halves executed in
    /// plan order. `1` (the default) reproduces the per-block sequential
    /// path cycle for cycle; higher values coalesce per-op device overhead
    /// without changing the observable access pattern.
    ///
    /// [`StorageLayer::load_batch`]: crate::storage_layer::StorageLayer::load_batch
    pub io_batch: u64,
    /// Route block crypto through the zero-copy path (in-place open/seal,
    /// pooled buffers). Simulated timing is identical either way; `false`
    /// restores the allocating legacy path for host-cost ablations.
    pub zero_copy_io: bool,
    /// Wall-clock worker threads for the parallel execution engine:
    /// per-shard cycle windows (`ShardedOram`) and the shuffle's
    /// data-parallel seal/open stream (`StorageLayer::rebuild_window`)
    /// run across this many OS threads. `1` is the fully serial path;
    /// the default is the host's available parallelism. On error-free
    /// runs, responses, storage traces, and statistics are
    /// **byte-identical for every value** — the thread count changes
    /// wall-clock time only (see `docs/ARCHITECTURE.md` §8 and
    /// `tests/parallel.rs`). Errors are fail-stop everywhere (the
    /// instance must be discarded); only on those discarded-instance
    /// paths may internal state differ by thread count, because a
    /// threaded round finishes its sibling shards before reporting where
    /// the serial round stops at the first failure.
    pub worker_threads: usize,
    /// Extra slot headroom per storage partition, as a factor ≥ 1.0. The
    /// tree evict randomizes which partition each hot block lands in, so
    /// partition occupancy drifts; headroom absorbs it (excess flows to
    /// later partitions via capacity-aware piece sizing). Default 1.10:
    /// per-period flux is ~√(2·hot/√N) blocks per partition, well under
    /// 10 % for every evaluated configuration, and the shuffle streams
    /// every physical slot, so headroom directly scales shuffle time.
    pub partition_headroom: f64,
    /// Optional block cache (and middle tier) installed in front of the
    /// storage device. `Some` overrides whatever the machine's
    /// `MachineConfig` installed; `None` (the default) leaves the
    /// machine's choice in place. Caching changes simulated I/O time
    /// only: responses, protocol counters, and the device-visible trace
    /// shape are byte-identical cache-on vs. cache-off (see
    /// `oram_storage::cache` and `docs/ARCHITECTURE.md` §10).
    pub cache: Option<oram_storage::cache::CacheConfig>,
    /// Pipelined cycle scheduling: how many scheduling windows may be in
    /// flight at once (see [`crate::pipeline`]). `depth: None` (the
    /// default) adopts the machine's hint, falling back to 1 — the
    /// strictly sequential scheduler. Responses, traces, stats, and the
    /// simulated clock are byte-identical at every depth
    /// (`tests/pipeline.rs`); the knob changes wall-clock time only.
    pub pipeline: PipelineConfig,
    /// Position-map implementation: flat in-RAM tables (the default) or
    /// the recursive O(log N)-trusted-memory variant (see
    /// [`crate::posmap`] and `docs/ARCHITECTURE.md` §12). The choice is
    /// invisible on the data ORAM's bus: responses, storage traces, and
    /// simulated time are byte-identical either way.
    pub posmap: PosmapMode,
    /// Master seed for all protocol randomness (fully replayable runs).
    pub seed: u64,
}

/// Which position-map implementation the engine builds.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PosmapMode {
    /// Both per-block tables as plain vectors in trusted memory: O(N)
    /// trusted bytes, zero per-query overhead. The seed behaviour.
    #[default]
    Flat,
    /// Path ORAM-style recursion: position entries packed into pages and
    /// stored in progressively smaller ORAMs, O(log N) steady-state
    /// trusted bytes.
    Recursive(RecursivePosmapConfig),
}

/// Sizing knobs for the recursive position map.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursivePosmapConfig {
    /// Position entries packed per page. `None` derives it: 32, or from
    /// [`levels`](Self::levels) when that is set. Must be ≥ 2 when given.
    pub fanout: Option<u64>,
    /// Target number of recursion levels. `None` (the default) recurses
    /// until a level fits under [`root_threshold`](Self::root_threshold);
    /// `Some(k)` instead solves for the fanout that reaches the threshold
    /// in `k` levels.
    pub levels: Option<u32>,
    /// Recursion stops once a level has at most this many pages; their
    /// leaf labels form the flat trusted root. Default 64.
    pub root_threshold: u64,
    /// Pinned page-cache budget per level, in pages (≥ 1). Trusted memory
    /// per level is `cache_pages + stash` pages. Default 8.
    pub cache_pages: usize,
    /// Directory for file-backed level devices. `None` keeps levels in
    /// volatile stores (snapshots then embed the level blocks); `Some`
    /// persists them like the data device, shrinking snapshots to the
    /// trusted state. Sharded configs append `shard-{i}/` per shard.
    pub backing_dir: Option<String>,
}

impl Default for RecursivePosmapConfig {
    fn default() -> Self {
        Self {
            fanout: None,
            levels: None,
            root_threshold: 64,
            cache_pages: 8,
            backing_dir: None,
        }
    }
}

impl RecursivePosmapConfig {
    /// The fanout actually used for a table of `entries` entries:
    /// explicit [`fanout`](Self::fanout) wins; otherwise a
    /// [`levels`](Self::levels) target solves `⌈(entries/threshold)^(1/k)⌉`
    /// (clamped to ≥ 2); otherwise 32.
    pub fn effective_fanout(&self, entries: u64) -> u64 {
        if let Some(fanout) = self.fanout {
            return fanout.max(2);
        }
        let Some(levels) = self.levels else {
            return 32;
        };
        let ratio = entries.max(1) as f64 / self.root_threshold.max(1) as f64;
        let mut fanout = (ratio.powf(1.0 / levels as f64).ceil() as u64).max(2);
        // Float round-off can leave the estimate one level short or long;
        // fix up against the actual level count.
        while fanout > 2 && count_levels(entries, fanout - 1, self.root_threshold) <= levels {
            fanout -= 1;
        }
        while count_levels(entries, fanout, self.root_threshold) > levels {
            fanout += 1;
        }
        fanout
    }

    /// Validates the knobs (called from [`HOramConfig::validate`]).
    ///
    /// # Panics
    ///
    /// Panics on a fanout below 2, a zero cache budget, a zero root
    /// threshold, or a zero level target.
    pub fn validate(&self) {
        if let Some(fanout) = self.fanout {
            assert!(fanout >= 2, "posmap fanout must be at least 2");
        }
        if let Some(levels) = self.levels {
            assert!(levels >= 1, "posmap levels must be at least 1");
        }
        assert!(
            self.root_threshold >= 1,
            "posmap root threshold must be at least 1"
        );
        assert!(
            self.cache_pages >= 1,
            "posmap cache budget must be at least 1 page"
        );
    }
}

/// Levels a recursion over `entries` entries needs at `fanout` before
/// fitting under `root_threshold` pages.
fn count_levels(entries: u64, fanout: u64, root_threshold: u64) -> u32 {
    let mut pages = entries.div_ceil(fanout.max(2)).max(1);
    let mut levels = 1;
    while pages > root_threshold {
        pages = pages.div_ceil(fanout.max(2));
        levels += 1;
    }
    levels
}

impl HOramConfig {
    /// A configuration with the paper's defaults for everything but the
    /// three sizing parameters.
    pub fn new(capacity: u64, payload_len: usize, memory_slots: u64) -> Self {
        Self {
            capacity,
            payload_len,
            memory_slots,
            z: 4,
            stages: Self::paper_stages(),
            prefetch_distance: 15, // 3 × c_max, like the paper's d=9 for c=3
            evict_shuffle: ShuffleAlgorithm::Bitonic,
            partition_shuffle: ShuffleAlgorithm::Cache,
            partial_shuffle_ratio: None,
            io_batch: 1,
            zero_copy_io: true,
            worker_threads: default_worker_threads(),
            partition_headroom: 1.10,
            cache: None,
            pipeline: PipelineConfig::default(),
            posmap: PosmapMode::Flat,
            seed: DEFAULT_SEED,
        }
    }

    /// The paper's evaluation schedule: `{c=1: 20 %, c=3: 13 %, c=5: 67 %}`.
    pub fn paper_stages() -> Vec<StagePlan> {
        vec![
            StagePlan {
                c: 1,
                fraction: 0.20,
            },
            StagePlan {
                c: 3,
                fraction: 0.13,
            },
            StagePlan {
                c: 5,
                fraction: 0.67,
            },
        ]
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the stage schedule.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, any `c` is zero, or fractions do not
    /// sum to ≈1.
    pub fn with_stages(mut self, stages: Vec<StagePlan>) -> Self {
        assert!(!stages.is_empty(), "at least one stage required");
        assert!(stages.iter().all(|s| s.c >= 1), "stage c must be ≥ 1");
        let total: f64 = stages.iter().map(|s| s.fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "stage fractions must sum to 1, got {total}"
        );
        self.stages = stages;
        self
    }

    /// Uses a single fixed `c` for the whole period.
    pub fn with_fixed_c(self, c: u32) -> Self {
        self.with_stages(vec![StagePlan { c, fraction: 1.0 }])
    }

    /// Replaces the prefetch distance `d`.
    pub fn with_prefetch_distance(mut self, d: usize) -> Self {
        self.prefetch_distance = d;
        self
    }

    /// Enables partial shuffling at ratio `r` (§5.3.1).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r ≤ 1`.
    pub fn with_partial_shuffle(mut self, r: f64) -> Self {
        assert!(
            r > 0.0 && r <= 1.0,
            "partial shuffle ratio must be in (0, 1]"
        );
        self.partial_shuffle_ratio = Some(r);
        self
    }

    /// Replaces the evict-buffer shuffle algorithm.
    pub fn with_evict_shuffle(mut self, algo: ShuffleAlgorithm) -> Self {
        self.evict_shuffle = algo;
        self
    }

    /// Sets the I/O batch window (see [`io_batch`](Self::io_batch)).
    ///
    /// # Panics
    ///
    /// Panics if `io_batch` is zero.
    pub fn with_io_batch(mut self, io_batch: u64) -> Self {
        assert!(io_batch >= 1, "io_batch must be at least 1");
        self.io_batch = io_batch;
        self
    }

    /// Toggles the zero-copy crypto path (see
    /// [`zero_copy_io`](Self::zero_copy_io)).
    pub fn with_zero_copy_io(mut self, zero_copy: bool) -> Self {
        self.zero_copy_io = zero_copy;
        self
    }

    /// Sets the wall-clock worker-thread count (see
    /// [`worker_threads`](Self::worker_threads); `1` = serial).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "worker_threads must be at least 1");
        self.worker_threads = threads;
        self
    }

    /// Installs a block cache in front of the storage device (see
    /// [`cache`](Self::cache)).
    pub fn with_cache(mut self, cache: oram_storage::cache::CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Pins the pipeline depth (see [`pipeline`](Self::pipeline); `1` =
    /// the sequential scheduler, ignoring any machine hint).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_pipeline_depth(self, depth: u64) -> Self {
        self.with_pipeline(PipelineConfig::with_depth(depth))
    }

    /// Replaces the pipeline configuration wholesale (see
    /// [`pipeline`](Self::pipeline)).
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        pipeline.validate();
        self.pipeline = pipeline;
        self
    }

    /// Switches to the recursive position map: `levels` is a target level
    /// count (`None` = auto-recurse to the default root threshold),
    /// `cache_pages` the pinned page budget per level. For full control
    /// (fanout, root threshold, file backing) use
    /// [`with_posmap`](Self::with_posmap).
    ///
    /// # Panics
    ///
    /// Panics if `cache_pages` is zero or `levels` is `Some(0)`.
    pub fn with_recursive_posmap(mut self, levels: Option<u32>, cache_pages: usize) -> Self {
        let rcfg = RecursivePosmapConfig {
            levels,
            cache_pages,
            ..RecursivePosmapConfig::default()
        };
        rcfg.validate();
        self.posmap = PosmapMode::Recursive(rcfg);
        self
    }

    /// Replaces the position-map mode wholesale (see
    /// [`posmap`](Self::posmap)).
    pub fn with_posmap(mut self, posmap: PosmapMode) -> Self {
        self.posmap = posmap;
        self
    }

    /// Validates cross-field constraints. Called by `HOram::new`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent sizing (zero capacity, memory budget smaller
    /// than one bucket, `d` not exceeding the largest `c`).
    pub fn validate(&self) {
        assert!(self.capacity > 0, "capacity must be positive");
        assert!(self.payload_len > 0, "payload length must be positive");
        assert!(
            self.memory_slots >= self.z as u64,
            "memory budget smaller than one bucket"
        );
        assert!(self.z > 0, "bucket size must be positive");
        let c_max = self
            .stages
            .iter()
            .map(|s| s.c)
            .max()
            .expect("non-empty stages");
        assert!(
            self.prefetch_distance > c_max as usize,
            "prefetch distance d={} must exceed the largest stage c={c_max}",
            self.prefetch_distance
        );
        if let Some(cache) = &self.cache {
            cache.validate();
        }
        if let PosmapMode::Recursive(rcfg) = &self.posmap {
            rcfg.validate();
        }
        self.pipeline.validate();
        assert!(
            self.partition_headroom >= 1.0,
            "headroom factor must be ≥ 1.0"
        );
        assert!(self.io_batch >= 1, "io_batch must be at least 1");
        assert!(
            self.worker_threads >= 1,
            "worker_threads must be at least 1"
        );
        let total: f64 = self.stages.iter().map(|s| s.fraction).sum();
        assert!((total - 1.0).abs() < 1e-6, "stage fractions must sum to 1");
    }

    /// I/O loads allowed per access period: `n/2` (paper §4.1: the tree
    /// supports up to n/2 I/O fetches before the next shuffle).
    pub fn period_io_limit(&self) -> u64 {
        (self.memory_slots / 2).max(1)
    }

    /// The schedule-weighted average ĉ (paper Eq. 5-1).
    pub fn average_c(&self) -> f64 {
        self.stages.iter().map(|s| s.c as f64 * s.fraction).sum()
    }

    /// The stage in effect after `io_used` of the period's I/O budget.
    pub fn stage_c(&self, io_used: u64) -> u32 {
        let limit = self.period_io_limit() as f64;
        let progress = io_used as f64 / limit;
        let mut cumulative = 0.0;
        for stage in &self.stages {
            cumulative += stage.fraction;
            if progress < cumulative {
                return stage.c;
            }
        }
        self.stages.last().expect("non-empty stages").c
    }

    /// Number of storage partitions: `⌈√N⌉` (paper §4.3.2).
    pub fn partition_count(&self) -> u64 {
        (self.capacity as f64).sqrt().ceil() as u64
    }

    /// Slots per storage partition including headroom.
    pub fn partition_slots(&self) -> u64 {
        let balanced = self.capacity.div_ceil(self.partition_count());
        ((balanced as f64 * self.partition_headroom).ceil() as u64).max(balanced + 2)
    }

    /// Partitions reshuffled per period under the configured ratio.
    pub fn partitions_per_shuffle(&self) -> u64 {
        match self.partial_shuffle_ratio {
            None => self.partition_count(),
            Some(r) => ((self.partition_count() as f64 * r).ceil() as u64).max(1),
        }
    }
}

/// Default protocol seed (arbitrary; fixed for replayability).
const DEFAULT_SEED: u64 = 0x04a3_2019;

/// Default worker-thread count: everything the host offers. Results are
/// byte-identical at any count, so the default trades nothing but CPUs.
fn default_worker_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let config = HOramConfig::new(1 << 20, 1024, 1 << 17);
        config.validate();
        assert!((config.average_c() - 3.94).abs() < 1e-9);
        assert_eq!(config.period_io_limit(), 65_536);
        assert_eq!(config.partition_count(), 1024);
        assert_eq!(config.partitions_per_shuffle(), 1024);
    }

    #[test]
    fn stage_schedule_progression() {
        let config = HOramConfig::new(1 << 20, 1024, 1 << 17);
        let limit = config.period_io_limit();
        assert_eq!(config.stage_c(0), 1);
        assert_eq!(config.stage_c(limit / 10), 1); // 10 % < 20 %
        assert_eq!(config.stage_c(limit / 4), 3); // 25 % in (20, 33]
        assert_eq!(config.stage_c(limit / 2), 5); // 50 % > 33 %
        assert_eq!(config.stage_c(limit), 5); // beyond the end: last stage
    }

    #[test]
    fn fixed_c_schedule() {
        let config = HOramConfig::new(1024, 64, 256).with_fixed_c(4);
        assert_eq!(config.average_c(), 4.0);
        assert_eq!(config.stage_c(0), 4);
        assert_eq!(config.stage_c(100), 4);
    }

    #[test]
    fn partial_shuffle_partitions() {
        let config = HOramConfig::new(1 << 20, 1024, 1 << 17).with_partial_shuffle(0.25);
        assert_eq!(config.partitions_per_shuffle(), 256);
    }

    #[test]
    fn partition_headroom_slots() {
        let config = HOramConfig::new(1 << 20, 1024, 1 << 17);
        // balanced = 1024; headroom 1.10 → 1127 slots.
        assert_eq!(config.partition_slots(), 1127);
    }

    #[test]
    fn io_pipeline_knobs() {
        let config = HOramConfig::new(1024, 64, 256)
            .with_io_batch(32)
            .with_zero_copy_io(false);
        config.validate();
        assert_eq!(config.io_batch, 32);
        assert!(!config.zero_copy_io);
        let defaults = HOramConfig::new(1024, 64, 256);
        assert_eq!(
            defaults.io_batch, 1,
            "default must reproduce the sequential path"
        );
        assert!(defaults.zero_copy_io);
    }

    #[test]
    #[should_panic(expected = "io_batch must be at least 1")]
    fn zero_io_batch_rejected() {
        let _ = HOramConfig::new(1024, 64, 256).with_io_batch(0);
    }

    #[test]
    fn pipeline_knob() {
        let defaults = HOramConfig::new(1024, 64, 256);
        assert_eq!(
            defaults.pipeline.depth, None,
            "default adopts the machine hint (or sequential)"
        );
        assert_eq!(defaults.pipeline.effective_depth(None), 1);
        let deep = HOramConfig::new(1024, 64, 256).with_pipeline_depth(4);
        deep.validate();
        assert_eq!(deep.pipeline.depth, Some(4));
        assert_eq!(deep.pipeline.effective_depth(Some(2)), 4);
    }

    #[test]
    #[should_panic(expected = "pipeline depth must be at least 1")]
    fn zero_pipeline_depth_rejected() {
        let _ = HOramConfig::new(1024, 64, 256).with_pipeline_depth(0);
    }

    #[test]
    fn worker_thread_knob() {
        let defaults = HOramConfig::new(1024, 64, 256);
        assert!(defaults.worker_threads >= 1, "auto default is at least 1");
        let serial = defaults.clone().with_worker_threads(1);
        serial.validate();
        assert_eq!(serial.worker_threads, 1);
        assert_eq!(
            HOramConfig::new(1024, 64, 256)
                .with_worker_threads(4)
                .worker_threads,
            4
        );
    }

    #[test]
    #[should_panic(expected = "worker_threads must be at least 1")]
    fn zero_worker_threads_rejected() {
        let _ = HOramConfig::new(1024, 64, 256).with_worker_threads(0);
    }

    #[test]
    #[should_panic(expected = "must exceed the largest stage c")]
    fn validate_checks_prefetch_distance() {
        HOramConfig::new(1024, 64, 256)
            .with_prefetch_distance(3)
            .validate();
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn stage_fractions_must_sum_to_one() {
        HOramConfig::new(1024, 64, 256).with_stages(vec![StagePlan {
            c: 1,
            fraction: 0.5,
        }]);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn partial_ratio_validated() {
        HOramConfig::new(1024, 64, 256).with_partial_shuffle(0.0);
    }

    #[test]
    fn posmap_defaults_to_flat() {
        let config = HOramConfig::new(1024, 64, 256);
        assert_eq!(config.posmap, PosmapMode::Flat);
        config.validate();
    }

    #[test]
    fn recursive_posmap_builder() {
        let config = HOramConfig::new(1 << 16, 64, 1 << 10).with_recursive_posmap(None, 4);
        config.validate();
        let PosmapMode::Recursive(rcfg) = &config.posmap else {
            panic!("expected recursive mode");
        };
        assert_eq!(rcfg.cache_pages, 4);
        assert_eq!(rcfg.effective_fanout(1 << 16), 32);
    }

    #[test]
    fn level_target_solves_fanout() {
        let rcfg = RecursivePosmapConfig {
            levels: Some(2),
            ..RecursivePosmapConfig::default()
        };
        let fanout = rcfg.effective_fanout(1 << 20);
        assert_eq!(count_levels(1 << 20, fanout, rcfg.root_threshold), 2);
        // And the next smaller fanout would need more levels.
        assert!(count_levels(1 << 20, fanout - 1, rcfg.root_threshold) > 2);
        // Degenerate tiny tables still work.
        assert!(rcfg.effective_fanout(4) >= 2);
    }

    #[test]
    #[should_panic(expected = "cache budget must be at least 1")]
    fn zero_posmap_cache_rejected() {
        let _ = HOramConfig::new(1024, 64, 256).with_recursive_posmap(None, 0);
    }
}

//! The pumpable-engine interface the serving layer drives.
//!
//! `horam-server`'s `OramService` multiplexes tenants onto *some* ORAM
//! back-end: a single [`HOram`] instance, or a [`ShardedOram`] spreading
//! the address space over many instances. Both expose the same ticketed
//! enqueue/pump/collect machinery; [`OramEngine`] is that contract, so the
//! serving layer is generic over the back-end instead of hard-wired to one
//! instance.
//!
//! The trait deliberately mirrors the subset of [`HOram`]'s inherent API
//! the serving layer actually uses — geometry validation, ticketed
//! submission, windowed pumping, response collection, stats and the
//! simulated clock — and nothing else, so implementing it for a new
//! back-end (a remote pool, a replicated group) stays small.
//!
//! [`HOram`]: crate::horam::HOram
//! [`ShardedOram`]: crate::shard::ShardedOram

use crate::error::HOramError;
use crate::stats::HOramStats;
use oram_protocols::error::OramError;
use oram_protocols::types::Request;
use oram_storage::clock::SimTime;

/// A ticketed ORAM back-end the serving layer can pump.
///
/// Semantics every implementation must honour:
///
/// * tickets are unique per engine and collect exactly one response;
/// * [`validate`](Self::validate) accepts exactly the requests
///   [`enqueue`](Self::enqueue) would accept, without observable accesses;
/// * [`run_cycle_window`](Self::run_cycle_window) makes progress whenever
///   [`pending_requests`](Self::pending_requests) is non-zero;
/// * requests to the same block complete in submission order (the
///   read-your-writes guarantee batches rely on).
pub trait OramEngine {
    /// Checks a request against the engine's geometry without queueing it.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] / [`OramError::PayloadSize`] exactly
    /// as [`enqueue`](Self::enqueue) would report them.
    fn validate(&self, request: &Request) -> Result<(), OramError>;

    /// Queues a request; returns the ticket to collect its response.
    ///
    /// # Errors
    ///
    /// As [`validate`](Self::validate); invalid requests never produce
    /// observable accesses. Sharded engines additionally report
    /// [`HOramError::ShardDegraded`] when the request routes to a shard
    /// that has been quarantined — still with no observable access.
    fn enqueue(&mut self, request: Request) -> Result<u64, HOramError>;

    /// Removes and returns the response for `ticket`, if serviced.
    fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>>;

    /// Removes and returns the *failure* recorded for `ticket`, if its
    /// request was lost to a shard failure instead of completing. A
    /// ticket resolves through exactly one of
    /// [`take_response`](Self::take_response) or this method. Engines
    /// without partial-failure handling (a single instance is all-or-
    /// nothing) never record any.
    fn take_failure(&mut self, _ticket: u64) -> Option<HOramError> {
        None
    }

    /// Indices of shards currently quarantined (empty for healthy or
    /// single-instance engines). Degraded shards serve no requests but
    /// the engine keeps pumping the rest.
    fn degraded_shards(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Runs up to `max_cycles` scheduling cycles (per shard, for sharded
    /// engines) as one I/O window; returns the cycles executed.
    ///
    /// Engines may execute the window on real worker threads (see
    /// `HOramConfig::worker_threads`); the contract requires that
    /// responses, statistics, and simulated time stay byte-identical at
    /// any thread count, so the serving layer never observes *how* a
    /// window ran — only that it did.
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate and are fail-stop for the
    /// failing instance. Engines with independent shards absorb per-shard
    /// failures instead (quarantining the shard and recording failures
    /// for its tickets — see [`take_failure`](Self::take_failure)), so an
    /// `Err` from a sharded engine means the engine as a whole cannot
    /// continue.
    fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, HOramError>;

    /// Runs up to `max_windows` consecutive I/O windows of up to
    /// `max_cycles` cycles each, letting pipelined engines keep several
    /// windows in flight (see [`PipelineConfig`](crate::PipelineConfig));
    /// returns the total cycles executed. The determinism contract of
    /// [`run_cycle_window`](Self::run_cycle_window) extends across depths:
    /// `run_cycle_burst(c, n)` leaves the engine in exactly the state `n`
    /// sequential `run_cycle_window(c)` calls would.
    ///
    /// The default implementation is that sequential loop (stopping early
    /// once the engine runs out of work), so non-pipelined engines get the
    /// burst API for free.
    ///
    /// # Errors
    ///
    /// As [`run_cycle_window`](Self::run_cycle_window).
    fn run_cycle_burst(&mut self, max_cycles: u64, max_windows: u64) -> Result<u64, HOramError> {
        let mut executed = 0;
        for _ in 0..max_windows {
            if self.pending_requests() == 0 {
                break;
            }
            let ran = self.run_cycle_window(max_cycles)?;
            executed += ran;
            if ran == 0 {
                break;
            }
        }
        Ok(executed)
    }

    /// Requests queued and not yet serviced.
    fn pending_requests(&self) -> usize;

    /// Aggregate run statistics (summed across shards for sharded
    /// engines; every counter stays monotone, so deltas attribute work to
    /// pump windows exactly as for a single instance).
    fn aggregate_stats(&self) -> HOramStats;

    /// Per-shard statistics breakdown; a single instance reports itself
    /// as one shard.
    fn per_shard_stats(&self) -> Vec<HOramStats>;

    /// The engine's simulated wall-clock frontier. For sharded engines
    /// this is the shared clock the round-robin pump advances, not any
    /// individual shard's timeline.
    fn now(&self) -> SimTime;

    /// Number of independent instances behind this engine.
    fn shard_count(&self) -> usize {
        1
    }

    /// Seals the engine's complete trusted state into an encrypted,
    /// authenticated snapshot (committing durable devices first). The
    /// engine must be drained; the serving layer's checkpoint operation
    /// guarantees it. Restore goes through the concrete type
    /// ([`HOram::restore`](crate::horam::HOram::restore) /
    /// [`ShardedOram::restore`](crate::shard::ShardedOram::restore)) —
    /// it needs the master key and fresh devices, which the trait
    /// deliberately does not model.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] when requests are in flight;
    /// storage backend errors propagate.
    fn snapshot(&mut self) -> Result<Vec<u8>, OramError>;
}

impl OramEngine for crate::horam::HOram {
    fn validate(&self, request: &Request) -> Result<(), OramError> {
        self.queue().validate(request)
    }

    fn enqueue(&mut self, request: Request) -> Result<u64, HOramError> {
        self.enqueue(request).map_err(HOramError::from)
    }

    fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        self.take_response(ticket)
    }

    fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, HOramError> {
        self.run_cycle_window(max_cycles).map_err(HOramError::from)
    }

    fn run_cycle_burst(&mut self, max_cycles: u64, max_windows: u64) -> Result<u64, HOramError> {
        self.run_cycle_burst(max_cycles, max_windows)
            .map_err(HOramError::from)
    }

    fn pending_requests(&self) -> usize {
        self.queue().pending()
    }

    fn aggregate_stats(&self) -> HOramStats {
        self.stats()
    }

    fn per_shard_stats(&self) -> Vec<HOramStats> {
        vec![self.stats()]
    }

    fn now(&self) -> SimTime {
        self.clock().now()
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, OramError> {
        self.snapshot()
    }
}

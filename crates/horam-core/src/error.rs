//! The system-level error taxonomy.
//!
//! [`HOramError`] is what the serving boundary sees: either a protocol
//! error bubbled up from one instance ([`OramError`], itself wrapping
//! [`StorageError`](oram_storage::StorageError) /
//! [`CryptoError`](oram_crypto::CryptoError) / persistence failures), or
//! the sharded layer's own verdict that a shard has been taken out of
//! service. Every fallible hot path in this crate reports through this
//! taxonomy instead of panicking, so one lying disk degrades one shard's
//! tenants instead of aborting the process — see `docs/ARCHITECTURE.md`
//! §11 for the failure model.

use oram_protocols::error::OramError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the assembled H-ORAM system (single or sharded).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HOramError {
    /// A protocol-level failure from the instance serving the request:
    /// geometry violations, storage faults, authentication failures,
    /// snapshot problems, or internal invariant violations.
    Protocol(OramError),
    /// The shard that owns the request has been quarantined and could not
    /// be restored (permanent media failure, no recovery checkpoint, or a
    /// failed restore). Requests routed to other shards keep serving.
    ShardDegraded {
        /// The degraded shard's index.
        shard: usize,
        /// Why the shard was taken out of service.
        reason: String,
    },
}

impl HOramError {
    /// Collapses into a protocol error (for callers on the plain
    /// [`Oram`](oram_protocols::oram_trait::Oram) interface, which
    /// predates sharding). A degraded shard reports as
    /// [`OramError::Internal`] — from a single-interface caller's view
    /// the instance is unrecoverable either way.
    pub fn into_protocol(self) -> OramError {
        match self {
            HOramError::Protocol(e) => e,
            HOramError::ShardDegraded { shard, reason } => {
                OramError::internal(format!("shard {shard} degraded: {reason}"))
            }
        }
    }
}

impl fmt::Display for HOramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HOramError::Protocol(e) => write!(f, "{e}"),
            HOramError::ShardDegraded { shard, reason } => {
                write!(f, "shard {shard} degraded: {reason}")
            }
        }
    }
}

impl Error for HOramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HOramError::Protocol(e) => Some(e),
            HOramError::ShardDegraded { .. } => None,
        }
    }
}

impl From<OramError> for HOramError {
    fn from(e: OramError) -> Self {
        HOramError::Protocol(e)
    }
}

impl From<oram_storage::StorageError> for HOramError {
    fn from(e: oram_storage::StorageError) -> Self {
        HOramError::Protocol(OramError::Storage(e))
    }
}

impl From<oram_crypto::CryptoError> for HOramError {
    fn from(e: oram_crypto::CryptoError) -> Self {
        HOramError::Protocol(OramError::Crypto(e))
    }
}

impl From<oram_crypto::persist::PersistError> for HOramError {
    fn from(e: oram_crypto::persist::PersistError) -> Self {
        HOramError::Protocol(OramError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_storage::StorageError;

    #[test]
    fn wraps_every_lower_layer() {
        let storage: HOramError = StorageError::PermanentFault {
            device: "hdd".into(),
            addr: 9,
        }
        .into();
        assert!(storage.to_string().contains("permanent slot failure"));
        let crypto: HOramError = oram_crypto::CryptoError::TagMismatch { block_id: 3 }.into();
        assert!(matches!(crypto, HOramError::Protocol(OramError::Crypto(_))));
    }

    #[test]
    fn degraded_collapses_to_internal() {
        let e = HOramError::ShardDegraded {
            shard: 2,
            reason: "dead sector".into(),
        };
        assert!(e.to_string().contains("shard 2"));
        let OramError::Internal { context } = e.into_protocol() else {
            panic!("expected Internal");
        };
        assert!(context.contains("dead sector"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HOramError>();
    }
}

//! Oblivious tree evict (paper §4.3.1).
//!
//! When an access period ends, the in-memory Path ORAM tree must return
//! its resident blocks to storage without revealing which tree slots held
//! real data. The paper's procedure, implemented here:
//!
//! 1. read **every** slot of the tree (real and dummy) into a temporary
//!    buffer — one streaming memory pass;
//! 2. run an **oblivious shuffle** over that buffer (the shuffle's touch
//!    sequence is data-independent, so the adversary learns nothing);
//! 3. scan the shuffled buffer and drop the dummies — positions of
//!    survivors are now uncorrelated with their tree positions.
//!
//! The shuffled order also determines which storage partition each block
//! joins (piece `i` of the output concatenates with partition `i`,
//! §4.3.2), so the shuffle's uniformity doubles as the randomizer of the
//! group+partition shuffle.

use oram_protocols::path_oram::PathOram;
use oram_protocols::types::BlockId;
use oram_protocols::OramError;
use oram_shuffle::ShuffleAlgorithm;
use oram_storage::clock::SimDuration;
use oram_storage::device::AccessKind;

/// Outcome of one oblivious tree evict.
#[derive(Debug)]
pub struct EvictOutcome {
    /// The evicted real blocks, in obliviously shuffled order.
    pub blocks: Vec<(BlockId, Vec<u8>)>,
    /// Memory-device time: streaming tree read + shuffle touches.
    pub memory_time: SimDuration,
    /// Number of buffer slots the shuffle touched (observable work).
    pub shuffle_touches: u64,
}

/// Runs the oblivious evict against the memory-layer Path ORAM.
///
/// The tree is left torn down; the caller rebuilds it with
/// [`PathOram::rebuild_empty`] after the storage shuffle completes.
///
/// # Errors
///
/// Storage/crypto errors from the tree read propagate.
pub fn oblivious_tree_evict(
    memory: &mut PathOram,
    algorithm: ShuffleAlgorithm,
    seed: u64,
) -> Result<EvictOutcome, OramError> {
    let total_slots = memory.geometry().total_slots();
    let (blocks, receipt) = memory.evict_all()?;

    // Reconstitute the buffer the paper shuffles: every tree slot, real or
    // dummy. (evict_all returns the decrypt of the same streamed read.)
    // The buffer must cover *every* resident block, not just the tree
    // image: with a tiny tree the stash can hold spill beyond the slot
    // count at period end, and sizing the buffer to `total_slots` alone
    // would silently drop those blocks (the position map would keep
    // claiming them memory-resident — permanent data loss). Pad to at
    // least the tree image; in healthy configurations (period budget ≤
    // tree slots) the length is exactly `total_slots` and behaviour is
    // unchanged. When spill does push the buffer longer, the extra
    // touches reveal only the stash-spill count, which the stash bound
    // already caps.
    let mut buffer: Vec<Option<(BlockId, Vec<u8>)>> = blocks.into_iter().map(Some).collect();
    let buffer_len = buffer.len().max(total_slots as usize);
    buffer.resize_with(buffer_len, || None);

    let stats = algorithm.shuffle(&mut buffer, seed);

    // The buffer lives in (untrusted) memory during the shuffle: charge its
    // touches to the memory device as one streaming transfer.
    let block_bytes = memory.device().charged_block_bytes();
    let shuffle_cost =
        memory
            .device_mut()
            .charge(AccessKind::Read, 0, stats.touches.max(1) * block_bytes);

    let survivors: Vec<(BlockId, Vec<u8>)> = buffer.into_iter().flatten().collect();
    Ok(EvictOutcome {
        blocks: survivors,
        memory_time: receipt.memory + shuffle_cost,
        shuffle_touches: stats.touches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_protocols::path_oram::PathOram;
    use oram_protocols::Oram;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use std::collections::HashSet;

    fn memory_oram() -> PathOram {
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        let keys = MasterKey::from_bytes([6; 32]).derive("evict-test", 0);
        PathOram::for_slot_budget(256, Some(1 << 16), 8, device, &keys, 3).unwrap()
    }

    fn populate(oram: &mut PathOram, ids: &[u64]) {
        for &id in ids {
            oram.insert_block(BlockId(id), vec![id as u8; 8]).unwrap();
        }
        // Drive a few accesses so blocks migrate from stash into the tree.
        for &id in ids.iter().take(4) {
            oram.read(BlockId(id)).unwrap();
        }
    }

    #[test]
    fn evict_returns_every_resident_block() {
        let mut oram = memory_oram();
        let ids: Vec<u64> = (0..40).map(|i| i * 31 % 1000).collect();
        populate(&mut oram, &ids);
        let outcome = oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Bitonic, 1).unwrap();
        let got: HashSet<u64> = outcome.blocks.iter().map(|(id, _)| id.0).collect();
        let want: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(got, want);
        for (id, payload) in &outcome.blocks {
            assert_eq!(payload, &vec![id.0 as u8; 8], "payload of {id}");
        }
    }

    #[test]
    fn evict_is_lossless_when_residents_exceed_tree_slots() {
        // A one-bucket tree (slot budget 10 → 4 slots at z = 4) whose
        // stash holds more blocks than the tree has slots: the evict
        // buffer must grow past the tree image rather than truncate.
        let device = MachineConfig::dac2019().build_memory(SimClock::new(), None);
        let keys = MasterKey::from_bytes([6; 32]).derive("evict-test", 0);
        let mut oram = PathOram::for_slot_budget(10, Some(64), 8, device, &keys, 3).unwrap();
        assert!(
            oram.geometry().total_slots() < 6,
            "fixture needs a tiny tree"
        );
        for id in 0..6u64 {
            oram.insert_block(BlockId(id), vec![id as u8; 8]).unwrap();
        }
        let outcome = oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Bitonic, 11).unwrap();
        let got: HashSet<u64> = outcome.blocks.iter().map(|(id, _)| id.0).collect();
        assert_eq!(got, (0..6).collect::<HashSet<u64>>());
    }

    #[test]
    fn evict_order_is_shuffled() {
        let mut oram = memory_oram();
        let ids: Vec<u64> = (0..64).collect();
        populate(&mut oram, &ids);
        let outcome = oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Bitonic, 42).unwrap();
        let order: Vec<u64> = outcome.blocks.iter().map(|(id, _)| id.0).collect();
        assert_ne!(order, ids, "order should not be the insertion order");
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let mk = |seed| {
            let mut oram = memory_oram();
            populate(&mut oram, &(0..64).collect::<Vec<_>>());
            oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Bitonic, seed)
                .unwrap()
                .blocks
                .iter()
                .map(|(id, _)| id.0)
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn shuffle_work_is_size_dependent_not_content_dependent() {
        // Same tree size, different resident sets: identical touch counts.
        let mut a = memory_oram();
        populate(&mut a, &[1, 2, 3]);
        let mut b = memory_oram();
        populate(&mut b, &(100..160).collect::<Vec<_>>());
        let oa = oblivious_tree_evict(&mut a, ShuffleAlgorithm::Bitonic, 5).unwrap();
        let ob = oblivious_tree_evict(&mut b, ShuffleAlgorithm::Bitonic, 9).unwrap();
        assert_eq!(oa.shuffle_touches, ob.shuffle_touches);
    }

    #[test]
    fn evict_charges_memory_time() {
        let mut oram = memory_oram();
        populate(&mut oram, &[1, 2, 3, 4, 5]);
        let outcome = oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Cache, 7).unwrap();
        assert!(outcome.memory_time > SimDuration::ZERO);
    }

    #[test]
    fn tree_is_reusable_after_rebuild() {
        let mut oram = memory_oram();
        populate(&mut oram, &[1, 2, 3]);
        oblivious_tree_evict(&mut oram, ShuffleAlgorithm::Bitonic, 3).unwrap();
        oram.rebuild_empty().unwrap();
        oram.insert_block(BlockId(9), vec![9; 8]).unwrap();
        assert_eq!(oram.read(BlockId(9)).unwrap(), vec![9; 8]);
    }
}

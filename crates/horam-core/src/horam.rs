//! The H-ORAM instance: control + memory + storage layers, scheduled.
//!
//! [`HOram`] wires together the pieces the paper's Figure 4-1 draws:
//!
//! * the **control layer** — ROB table, secure scheduler, permutation
//!   list, position map (all trusted-side, no observable accesses);
//! * the **memory layer** — an in-memory Path ORAM tree used as a cache
//!   ([`PathOram`] on the DRAM device);
//! * the **storage layer** — the flat permuted partition grid on the slow
//!   device ([`StorageLayer`]).
//!
//! Execution alternates between **access periods** (scheduling cycles of
//! `c` memory path accesses overlapped with one I/O load, until `n/2`
//! loads have been issued) and **shuffle periods** (oblivious tree evict →
//! group+partition shuffle → fresh tree), exactly as §4.1 describes.
//!
//! # Example
//!
//! ```
//! use horam_core::{HOram, HOramConfig};
//! use oram_protocols::{Oram, BlockId, Request};
//! use oram_storage::MemoryHierarchy;
//! use oram_crypto::keys::MasterKey;
//!
//! # fn main() -> Result<(), oram_protocols::OramError> {
//! let config = HOramConfig::new(256, 16, 64).with_seed(1);
//! let mut oram = HOram::new(config, MemoryHierarchy::dac2019(),
//!                           MasterKey::from_bytes([1; 32]))?;
//! oram.write(BlockId(3), &[7u8; 16])?;
//! assert_eq!(oram.read(BlockId(3))?, vec![7u8; 16]);
//! # Ok(())
//! # }
//! ```

use crate::config::HOramConfig;
use crate::evict::oblivious_tree_evict;
use crate::persist::{self, KIND_SINGLE, SNAPSHOT_DOMAIN};
use crate::queue::RequestQueue;
use crate::scheduler::CyclePlan;
use crate::stats::HOramStats;
use crate::storage_layer::{LoadPlan, StorageLayer};
use oram_crypto::keys::{KeyHierarchy, MasterKey, SubKeys};
use oram_crypto::persist::{open_envelope, seal_envelope, StateReader, StateWriter};
use oram_crypto::prf::Prf;
use oram_protocols::error::OramError;
use oram_protocols::oram_trait::Oram;
use oram_protocols::path_oram::PathOram;
use oram_protocols::types::{BlockId, Request, RequestOp};
use oram_storage::clock::{SimClock, SimDuration};
use oram_storage::hierarchy::MemoryHierarchy;
use oram_storage::trace::AccessTrace;

/// The hybrid ORAM. See the [module docs](self).
#[derive(Debug)]
pub struct HOram {
    config: HOramConfig,
    memory: PathOram,
    storage: StorageLayer,
    clock: SimClock,
    trace: AccessTrace,
    queue: RequestQueue,
    io_used_in_period: u64,
    period_seq: u64,
    seed_prf: Prf,
    stats: HOramStats,
    /// Keys sealing this instance's snapshots (derived from the master).
    snapshot_keys: SubKeys,
}

impl HOram {
    /// Builds an H-ORAM instance on the given machine.
    ///
    /// Construction installs the initial storage layout and an empty
    /// memory tree, then **resets all accounting** (clock, traces, device
    /// stats), so reported numbers cover steady-state operation only.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout writes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`HOramConfig::validate`]).
    pub fn new(
        config: HOramConfig,
        hierarchy: MemoryHierarchy,
        master: MasterKey,
    ) -> Result<Self, OramError> {
        config.validate();
        let clock = hierarchy.clock().clone();
        let trace = hierarchy.trace().clone();
        let MemoryHierarchy {
            memory: memory_device,
            storage: storage_device,
            ..
        } = hierarchy;

        let memory = Self::build_memory_layer(&config, memory_device, &master)?;
        let posmap = crate::posmap::build_posmap(&config, &master, false)?;
        let storage = StorageLayer::new(
            &config,
            storage_device,
            KeyHierarchy::new(master.clone(), "horam/storage"),
            posmap,
        )?;

        let seed_prf = Prf::new(master.derive("horam/seeds", 0).prf().to_owned());
        let queue = RequestQueue::new(config.capacity, config.payload_len);
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let mut horam = Self {
            config,
            memory,
            storage,
            clock,
            trace,
            queue,
            io_used_in_period: 0,
            period_seq: 0,
            seed_prf,
            stats: HOramStats::default(),
            snapshot_keys,
        };
        horam.reset_accounting();
        Ok(horam)
    }

    /// Builds the in-memory Path ORAM cache layer the way [`new`](Self::new)
    /// does — shared with [`restore`](Self::restore) so derived key and
    /// seed material cannot drift between the two construction paths.
    fn build_memory_layer(
        config: &HOramConfig,
        device: oram_storage::device::Device,
        master: &MasterKey,
    ) -> Result<PathOram, OramError> {
        let memory_keys = master.derive("horam/memory", 0);
        PathOram::for_slot_budget(
            config.memory_slots,
            Some(config.capacity),
            config.payload_len,
            device,
            &memory_keys,
            config.seed ^ 0x6d65_6d6f,
        )
    }

    /// Seals the complete trusted client state into an encrypted,
    /// authenticated snapshot — stash, position map, permutation list,
    /// key epochs, scheduling counters, clock, and statistics — and
    /// **commits the storage device** first (a durable device flushes its
    /// write-back buffer, fsyncs, and truncates its undo journal), so the
    /// on-disk image a later recovery adopts is exactly the one this
    /// snapshot describes.
    ///
    /// The snapshot leaks nothing beyond its size (and whether two
    /// snapshots captured identical state — the envelope nonce is a
    /// keyed PRF of the body); see `docs/ARCHITECTURE.md` §9 for the
    /// trust-boundary argument.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] if requests are still queued
    /// (snapshots are taken at batch boundaries — the serving layer's
    /// checkpoint drains first); storage backend errors propagate.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, OramError> {
        if !self.queue.is_drained() {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "{} requests still queued; drain before snapshotting",
                    self.queue.pending()
                ),
            });
        }
        // Commit point: everything the snapshot's control state refers to
        // must be on stable storage before the snapshot exists.
        self.memory
            .device_mut()
            .sync()
            .map_err(OramError::Storage)?;
        self.storage
            .device_mut()
            .sync()
            .map_err(OramError::Storage)?;
        self.storage.posmap_mut().sync()?;

        let mut w = StateWriter::new();
        persist::save_config(&self.config, &mut w);
        w.put_u64(self.clock.now().as_nanos());
        w.put_u64(self.io_used_in_period);
        w.put_u64(self.period_seq);
        self.stats.save_state(&mut w);
        self.queue.save_state(&mut w);
        self.memory.save_state(&mut w)?;
        self.storage.save_state(&mut w)?;

        let body = w.into_bytes();
        let seq = persist::envelope_seq(&self.snapshot_keys, &body);
        Ok(seal_envelope(&self.snapshot_keys, KIND_SINGLE, seq, &body))
    }

    /// Rebuilds an instance from a snapshot sealed by
    /// [`snapshot`](Self::snapshot), the same master key, and a hierarchy
    /// whose storage device holds the snapshot's data: the durable device
    /// file for a file-backed hierarchy (its undo journal rolls partial
    /// post-snapshot writes back on open), or nothing for a fully
    /// volatile hierarchy (the snapshot embeds the data).
    ///
    /// The restored instance is byte-equivalent to the one the snapshot
    /// captured: replaying the same request stream produces identical
    /// responses, an identical bus trace (timestamps continue from the
    /// snapshot's clock), and identical statistics —
    /// `tests/persistence.rs` property-tests this end to end.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] for a truncated, corrupted,
    /// wrong-key, or geometry-incompatible snapshot. Restores fail
    /// closed: an error never yields a partially restored instance.
    pub fn restore(
        hierarchy: MemoryHierarchy,
        master: MasterKey,
        snapshot: &[u8],
    ) -> Result<Self, OramError> {
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let body = open_envelope(&snapshot_keys, KIND_SINGLE, snapshot)?;
        let mut r = StateReader::new(&body);
        let config = persist::load_config(&mut r)?;
        config.validate();

        let clock = hierarchy.clock().clone();
        let trace = hierarchy.trace().clone();
        let MemoryHierarchy {
            memory: memory_device,
            storage: storage_device,
            ..
        } = hierarchy;

        let clock_nanos = r.get_u64()?;
        let io_used_in_period = r.get_u64()?;
        let period_seq = r.get_u64()?;
        let stats = HOramStats::load_state(&mut r)?;
        let mut queue = RequestQueue::new(config.capacity, config.payload_len);
        queue.load_state(&mut r)?;
        let mut memory = Self::build_memory_layer(&config, memory_device, &master)?;
        memory.load_state(&mut r)?;
        let posmap = crate::posmap::build_posmap(&config, &master, true)?;
        let storage = StorageLayer::restore(
            &config,
            storage_device,
            KeyHierarchy::new(master.clone(), "horam/storage"),
            posmap,
            &mut r,
        )?;
        r.finish()?;

        // The hierarchy's accounting restarts at the snapshot's instant:
        // the trace is empty (the adversary's pre-crash view is already
        // recorded elsewhere) and the clock continues where it stopped,
        // so post-restore trace timestamps line up with an uninterrupted
        // run.
        trace.clear();
        clock.reset();
        clock.advance(SimDuration::from_nanos(clock_nanos));

        let seed_prf = Prf::new(master.derive("horam/seeds", 0).prf().to_owned());
        Ok(Self {
            config,
            memory,
            storage,
            clock,
            trace,
            queue,
            io_used_in_period,
            period_seq,
            seed_prf,
            stats,
            snapshot_keys,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HOramConfig {
        &self.config
    }

    /// Run statistics.
    pub fn stats(&self) -> HOramStats {
        self.stats
    }

    /// The shared bus trace (adversary view) of this instance.
    pub fn trace(&self) -> &AccessTrace {
        &self.trace
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Memory-layer device statistics.
    pub fn memory_device_stats(&self) -> oram_storage::stats::DeviceStats {
        *self.memory.device().stats()
    }

    /// Storage-layer device statistics.
    pub fn storage_device_stats(&self) -> oram_storage::stats::DeviceStats {
        *self.storage.device().stats()
    }

    /// Block-cache counters of the storage device, when a cache is
    /// installed (via [`HOramConfig::cache`] or the machine description).
    ///
    /// [`HOramConfig::cache`]: crate::config::HOramConfig::cache
    pub fn cache_stats(&self) -> Option<oram_storage::cache::CacheStats> {
        self.storage.cache_stats()
    }

    /// Peak stash occupancy of the memory layer.
    pub fn memory_stash_peak(&self) -> usize {
        self.memory.stash_peak()
    }

    /// The position map (control-layer view): trusted-byte accounting,
    /// activity counters, and — on the recursive variant — per-level
    /// oblivious traces.
    pub fn posmap(&self) -> &dyn crate::posmap::PositionMap {
        self.storage.posmap()
    }

    /// Total storage footprint in bytes (for the paper's size rows).
    pub fn storage_bytes(&self) -> u64 {
        self.storage
            .storage_bytes(self.storage.device().charged_block_bytes())
    }

    /// Wraps the storage device's backing store in a deterministic fault
    /// injector ([`oram_storage::fault::FaultyStore`]) — the entry point
    /// fault-injection tests use to make an already-populated, healthy
    /// instance start failing mid-run. Calling again stacks another
    /// injector over the first.
    pub fn inject_storage_faults(&mut self, config: oram_storage::fault::FaultConfig) {
        self.storage
            .device_mut()
            .wrap_store(|inner| Box::new(oram_storage::fault::FaultyStore::new(inner, config)));
    }

    /// Test fixture access to the storage device (e.g. the doc-hidden
    /// leaky-retry fixture the leakage battery must detect).
    #[doc(hidden)]
    pub fn storage_device_mut(&mut self) -> &mut oram_storage::device::Device {
        self.storage.device_mut()
    }

    /// Counters of injected storage faults, when
    /// [`inject_storage_faults`](Self::inject_storage_faults) (or a
    /// faulted hierarchy) is in effect.
    pub fn storage_fault_stats(&self) -> Option<oram_storage::fault::FaultStats> {
        self.storage.device().fault_stats()
    }

    /// Transient-fault retry counters of the storage device (volatile;
    /// not part of snapshots).
    pub fn storage_retry_stats(&self) -> oram_storage::device::RetryStats {
        self.storage.device().retry_stats()
    }

    /// Clears all timing/tracing/statistics state (not data).
    pub fn reset_accounting(&mut self) {
        self.memory.device_mut().reset_accounting();
        self.storage.device_mut().reset_accounting();
        self.storage.posmap_mut().reset_accounting();
        self.trace.clear();
        self.clock.reset();
        self.stats = HOramStats::default();
    }

    fn period_seed(&self, purpose: u64) -> u64 {
        self.seed_prf
            .eval_words("period-seed", &[self.period_seq, purpose, self.config.seed])
    }

    /// The admission queue: pending count, per-ticket response readiness.
    pub fn queue(&self) -> &RequestQueue {
        &self.queue
    }

    /// Queues a request; returns the ticket to collect its response.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids beyond the capacity and
    /// [`OramError::PayloadSize`] for mis-sized write payloads — requests
    /// are validated before they can reach the scheduler (see
    /// [`RequestQueue::submit`]).
    pub fn enqueue(&mut self, request: Request) -> Result<u64, OramError> {
        self.queue.submit(request)
    }

    /// Removes and returns the response for `ticket`, if it has been
    /// serviced. The serving layer uses this to collect responses
    /// incrementally while batches from other tenants are still queued.
    pub fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        self.queue.take_response(ticket)
    }

    /// Runs scheduling cycles until the ROB drains, then returns responses
    /// for the given tickets in order.
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate; queued requests that were
    /// already serviced keep their responses.
    /// [`OramError::UnknownTicket`] for a ticket that was never issued or
    /// whose response was already collected (e.g. via
    /// [`take_response`](Self::take_response)).
    pub fn drain(&mut self, tickets: &[u64]) -> Result<Vec<Vec<u8>>, OramError> {
        while !self.queue.is_drained() {
            self.run_cycle_window(self.config.io_batch)?;
        }
        let mut out = Vec::with_capacity(tickets.len());
        for ticket in tickets {
            let response = self
                .queue
                .take_response(*ticket)
                .ok_or(OramError::UnknownTicket { ticket: *ticket })?;
            out.push(response);
        }
        Ok(out)
    }

    /// Queues a whole batch and drains it — the paper's evaluation mode
    /// (a request trace pushed through the scheduler).
    ///
    /// # Errors
    ///
    /// As [`drain`](Self::drain).
    pub fn run_batch(&mut self, requests: &[Request]) -> Result<Vec<Vec<u8>>, OramError> {
        let tickets: Vec<u64> = requests
            .iter()
            .map(|r| self.enqueue(r.clone()))
            .collect::<Result<_, _>>()?;
        self.drain(&tickets)
    }

    /// Executes one scheduling cycle: up to `c` memory accesses overlapped
    /// with exactly one I/O load (real or dummy), then period bookkeeping.
    /// Equivalent to [`run_cycle_window`](Self::run_cycle_window) with a
    /// window of one.
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate.
    pub fn run_cycle(&mut self) -> Result<(), OramError> {
        self.run_cycle_window(1).map(|_| ())
    }

    /// Executes up to `max_cycles` scheduling cycles as one I/O window:
    ///
    /// 1. **plan** — each cycle is planned exactly as in the sequential
    ///    path (hit hoisting, miss selection, padding). Planning mutates
    ///    control-layer state only — the ROB, the permutation list, the
    ///    period markers ([`StorageLayer::plan_io`]) — so cycle `j+1`'s
    ///    hit test already observes cycle `j`'s load, and the per-cycle
    ///    decisions are *identical* to running
    ///    [`run_cycle`](Self::run_cycle) `max_cycles` times;
    /// 2. **commit** — the window's loads go to the storage device as one
    ///    queued scatter read ([`StorageLayer::commit_io`]), coalescing
    ///    per-op device overhead;
    /// 3. **execute** — the memory halves run in plan order, each cycle's
    ///    loaded block landing in the tree before the next cycle's hits
    ///    are served.
    ///
    /// The observable storage access sequence (slots, order, sizes) is
    /// byte-identical to the sequential path — only the simulated cost
    /// shrinks. The window never crosses a period boundary (it is clamped
    /// to the period's remaining I/O budget) and stops early when the ROB
    /// drains. Returns the number of cycles executed.
    ///
    /// [`StorageLayer::plan_io`]: crate::storage_layer::StorageLayer::plan_io
    /// [`StorageLayer::commit_io`]: crate::storage_layer::StorageLayer::commit_io
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate and are **fail-stop**:
    /// planned cycles have already mutated the ROB and location table, so
    /// after an error the instance's trusted metadata no longer matches
    /// the device and the instance must be discarded (the same corruption
    /// cases were fatal to the request on the sequential path).
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero.
    pub fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, OramError> {
        assert!(
            max_cycles >= 1,
            "a cycle window must cover at least one cycle"
        );
        // Clamp to the period budget: shuffles happen between windows, so
        // the once-per-period invariant never spans a commit.
        let window = max_cycles.min(self.config.period_io_limit() - self.io_used_in_period);

        // Phase 1: plan the window's cycles (control-layer state only).
        let d = self.config.prefetch_distance;
        let mut plans: Vec<CyclePlan> = Vec::with_capacity(window as usize);
        for offset in 0..window {
            if offset > 0 && self.queue.is_drained() {
                break;
            }
            let c = self.config.stage_c(self.io_used_in_period + offset);
            let storage = &mut self.storage;
            let plan: CyclePlan = self.queue.plan(c, d, |id| storage.is_in_memory(id));
            self.storage.plan_io(match plan.miss_block {
                Some(id) => LoadPlan::Miss(id),
                None => LoadPlan::Dummy,
            })?;
            plans.push(plan);
        }

        // Phase 2: the window's I/O as one scatter read.
        let batch = self.storage.commit_io()?;

        // Phase 3: memory halves in plan order.
        let mut memory_total = SimDuration::ZERO;
        for (plan, io_load) in plans.iter().zip(batch.loads) {
            let mut memory_time = SimDuration::ZERO;
            for entry in &plan.hits {
                let (data, receipt) = match &entry.request.op {
                    RequestOp::Read => self.memory.access_read(entry.request.id)?,
                    RequestOp::Write(payload) => {
                        self.stats.writes += 1;
                        self.memory.access_write(entry.request.id, payload)?
                    }
                };
                memory_time += receipt.memory;
                self.queue.complete(entry.ticket, data);
                self.stats.memory_hits += 1;
                self.stats.requests += 1;
            }
            for _ in 0..plan.dummy_memory {
                memory_time += self.memory.dummy_access()?.memory;
                self.stats.dummy_memory_accesses += 1;
            }
            match plan.miss_block {
                Some(_) => self.stats.real_io_loads += 1,
                None => {
                    self.stats.dummy_io_loads += 1;
                    if io_load.block.is_some() {
                        self.stats.prefetched_blocks += 1;
                    }
                }
            }
            if let Some((id, payload)) = io_load.block {
                self.memory.insert_block(id, payload)?;
            }
            memory_total += memory_time;
            self.stats.cycles += 1;
        }

        // Wall clock: the paper overlaps the path accesses with the loads
        // ("the I/O loads and in-memory reads are conducted simultaneously");
        // a window overlaps its whole memory stream with its whole batch.
        let executed = plans.len() as u64;
        let wall = memory_total.max(batch.io_time);
        self.clock.advance(wall);
        self.stats.access_wall_time += wall;
        self.stats.memory_time += memory_total;
        self.stats.io_time += batch.io_time;

        self.io_used_in_period += executed;
        if self.io_used_in_period >= self.config.period_io_limit() {
            self.shuffle_period()?;
        }
        Ok(executed)
    }

    /// Runs the shuffle period now (normally triggered automatically when
    /// the period's I/O budget is spent): oblivious tree evict →
    /// group+partition shuffle (full or partial) → fresh memory tree.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn shuffle_period(&mut self) -> Result<(), OramError> {
        // 1. Oblivious tree evict (§4.3.1).
        let evict_seed = self.period_seed(1);
        let outcome =
            oblivious_tree_evict(&mut self.memory, self.config.evict_shuffle, evict_seed)?;

        // 2. Group + partition shuffle (§4.3.2 / §5.3.1).
        let shuffle_seed = self.period_seed(2);
        let report = match self.config.partial_shuffle_ratio {
            None => self.storage.rebuild_full(outcome.blocks, shuffle_seed)?,
            Some(_) => self.storage.rebuild_partial(
                outcome.blocks,
                self.config.partitions_per_shuffle(),
                shuffle_seed,
            )?,
        };

        // 3. Fresh in-memory tree (§4.1.2: "evicted back to the storage and
        //    will be reconstructed again").
        let rebuild = self.memory.rebuild_empty()?;

        // Evict and tree rebuild are memory-side and serialize with the
        // pipelined storage pass.
        let wall = outcome.memory_time + report.wall_time + rebuild.memory;
        self.clock.advance(wall);
        self.stats.shuffle_wall_time += wall;
        self.stats.shuffles += 1;
        self.stats.spilled_blocks += report.spilled;
        self.io_used_in_period = 0;
        self.period_seq += 1;
        // The evict returned every cached block to storage: in-flight loads
        // are void, pending misses must be re-issueable.
        self.queue.void_in_flight_io();
        Ok(())
    }
}

impl Oram for HOram {
    fn capacity(&self) -> u64 {
        self.config.capacity
    }

    fn payload_len(&self) -> usize {
        self.config.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        let mut out = self.run_batch(&[Request::read(id)])?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        let mut out = self.run_batch(&[Request::write(id, data.to_vec())])?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::rng::DeterministicRng;
    use rand::Rng;
    use std::collections::HashMap;

    fn build(capacity: u64, memory_slots: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots).with_seed(17);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([9; 32]),
        )
        .unwrap()
    }

    #[test]
    fn read_your_writes_single() {
        let mut oram = build(256, 64);
        oram.write(BlockId(5), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(oram.read(BlockId(5)).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn batch_preserves_request_order() {
        let mut oram = build(256, 64);
        let requests: Vec<Request> = (0..20u64)
            .map(|i| Request::write(i, vec![i as u8; 8]))
            .chain((0..20u64).map(Request::read))
            .collect();
        let responses = oram.run_batch(&requests).unwrap();
        assert_eq!(responses.len(), 40);
        for (i, response) in responses.iter().skip(20).enumerate() {
            assert_eq!(response, &vec![i as u8; 8], "read-back of block {i}");
        }
    }

    #[test]
    fn survives_shuffle_periods() {
        // Memory 64 slots ⇒ period = 32 I/O loads; 300 requests with a
        // small hot set forces several periods.
        let mut oram = build(256, 64);
        let mut rng = DeterministicRng::from_u64_seed(3);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        for _ in 0..300 {
            let id = rng.gen_range(0..256u64);
            if rng.gen_bool(0.3) {
                let payload = vec![rng.gen::<u8>(); 8];
                oram.write(BlockId(id), &payload).unwrap();
                reference.insert(id, payload);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                let expected = reference.get(&id).cloned().unwrap_or(vec![0u8; 8]);
                assert_eq!(got, expected, "block {id}");
            }
        }
        assert!(
            oram.stats().shuffles >= 1,
            "workload must cross a period boundary"
        );
    }

    fn build_batched(capacity: u64, memory_slots: u64, io_batch: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(17)
            .with_io_batch(io_batch);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([9; 32]),
        )
        .unwrap()
    }

    #[test]
    fn windowed_drain_matches_sequential_exactly() {
        // Identical responses, identical storage access sequence
        // (oblivious-trace equality), identical cycle/load/shuffle counts;
        // strictly less simulated I/O time. The workload crosses several
        // shuffle periods (memory 64 ⇒ period 32) and mixes hits, misses
        // and writes.
        let mut rng = DeterministicRng::from_u64_seed(41);
        let requests: Vec<Request> = (0..220)
            .map(|_| {
                let id = rng.gen_range(0..256u64);
                if rng.gen_bool(0.3) {
                    Request::write(id, vec![rng.gen::<u8>(); 8])
                } else {
                    Request::read(id)
                }
            })
            .collect();

        let mut sequential = build(256, 64);
        let seq_responses = sequential.run_batch(&requests).unwrap();
        let storage_id = sequential.storage.device().id();
        let seq_addrs = sequential.trace().address_sequence(storage_id);

        let mut batched = build_batched(256, 64, 8);
        let bat_responses = batched.run_batch(&requests).unwrap();
        let bat_addrs = batched.trace().address_sequence(storage_id);

        assert_eq!(seq_responses, bat_responses);
        assert_eq!(seq_addrs, bat_addrs, "storage access patterns diverged");
        let (seq_stats, bat_stats) = (sequential.stats(), batched.stats());
        assert!(seq_stats.shuffles >= 2, "setup: must cross periods");
        assert_eq!(seq_stats.cycles, bat_stats.cycles);
        assert_eq!(seq_stats.total_io_loads(), bat_stats.total_io_loads());
        assert_eq!(seq_stats.real_io_loads, bat_stats.real_io_loads);
        assert_eq!(seq_stats.shuffles, bat_stats.shuffles);
        assert_eq!(seq_stats.memory_time, bat_stats.memory_time);
        assert!(
            bat_stats.io_time < seq_stats.io_time,
            "batched I/O {:?} !< sequential {:?}",
            bat_stats.io_time,
            seq_stats.io_time
        );
        assert!(bat_stats.access_wall_time <= seq_stats.access_wall_time);
    }

    #[test]
    fn cycle_window_never_crosses_a_period_boundary() {
        let mut oram = build_batched(256, 16, 64); // period = 8 ≪ window
        let requests: Vec<Request> = (0..40u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert!(stats.shuffles >= 2);
        // One load per cycle still holds under windows, and the period
        // limit was honored (each window clamps to the remaining budget).
        assert_eq!(stats.total_io_loads(), stats.cycles);
    }

    #[test]
    fn cycle_window_stops_when_the_rob_drains() {
        let mut oram = build_batched(256, 64, 32);
        oram.enqueue(Request::read(1u64)).unwrap();
        oram.enqueue(Request::read(2u64)).unwrap();
        let executed = oram.run_cycle_window(32).unwrap();
        assert!(
            executed < 32,
            "window should stop early, ran {executed} cycles"
        );
        assert!(oram.queue().is_drained());
    }

    #[test]
    fn every_cycle_issues_exactly_one_io() {
        let mut oram = build(256, 64);
        let requests: Vec<Request> = (0..30u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert_eq!(stats.total_io_loads(), stats.cycles);
    }

    #[test]
    fn hot_workload_hits_in_memory() {
        let mut oram = build(256, 128);
        // Touch 4 blocks repeatedly: after the first misses, everything is
        // a hit and I/O loads become dummies.
        let requests: Vec<Request> = (0..100u64).map(|i| Request::read(i % 4)).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert_eq!(stats.real_io_loads, 4, "only the cold misses hit storage");
        assert!(stats.requests_per_io() > 2.0);
    }

    #[test]
    fn grouping_overlaps_memory_under_io() {
        let mut oram = build(1024, 256);
        let requests: Vec<Request> = (0..200u64).map(|i| Request::read(i % 8)).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        // Wall time of the access period must be below the serial sum.
        assert!(stats.access_wall_time < stats.memory_time + stats.io_time);
        // And at least the larger component.
        assert!(stats.access_wall_time >= stats.io_time.max(stats.memory_time));
    }

    #[test]
    fn period_limit_triggers_shuffles() {
        let mut oram = build(256, 16); // period = 8 I/O loads
        let requests: Vec<Request> = (0..40u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        assert!(oram.stats().shuffles >= 2);
        assert!(oram.stats().shuffle_wall_time > SimDuration::ZERO);
    }

    #[test]
    fn partial_shuffle_mode_works_end_to_end() {
        let config = HOramConfig::new(256, 8, 16)
            .with_seed(5)
            .with_partial_shuffle(0.25);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([8; 32]),
        )
        .unwrap();
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = DeterministicRng::from_u64_seed(6);
        for _ in 0..120 {
            let id = rng.gen_range(0..256u64);
            if rng.gen_bool(0.4) {
                let payload = vec![rng.gen::<u8>(); 8];
                oram.write(BlockId(id), &payload).unwrap();
                reference.insert(id, payload);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                assert_eq!(got, reference.get(&id).cloned().unwrap_or(vec![0u8; 8]));
            }
        }
        assert!(oram.stats().shuffles >= 1);
    }

    #[test]
    fn stash_stays_bounded() {
        let mut oram = build(512, 64);
        let mut rng = DeterministicRng::from_u64_seed(12);
        let requests: Vec<Request> = (0..400)
            .map(|_| Request::read(rng.gen_range(0..512u64)))
            .collect();
        oram.run_batch(&requests).unwrap();
        assert!(
            oram.memory_stash_peak() < 200,
            "stash peak {}",
            oram.memory_stash_peak()
        );
    }

    #[test]
    fn accounting_reset_zeroes_reports() {
        let mut oram = build(256, 64);
        oram.read(BlockId(1)).unwrap();
        oram.reset_accounting();
        assert_eq!(oram.stats(), HOramStats::default());
        assert_eq!(oram.clock().now().as_nanos(), 0);
        assert!(oram.trace().is_empty());
    }

    #[test]
    fn payload_validation() {
        let mut oram = build(256, 64);
        assert!(matches!(
            oram.write(BlockId(0), &[1, 2]),
            Err(OramError::PayloadSize {
                expected: 8,
                got: 2
            })
        ));
    }

    #[test]
    fn drain_of_collected_or_unknown_ticket_is_an_error() {
        let mut oram = build(256, 64);
        let ticket = oram.enqueue(Request::read(1u64)).unwrap();
        while !oram.queue().is_drained() {
            oram.run_cycle().unwrap();
        }
        assert_eq!(oram.take_response(ticket), Some(vec![0u8; 8]));
        // Already collected incrementally: a later drain must not panic.
        assert!(matches!(
            oram.drain(&[ticket]),
            Err(OramError::UnknownTicket { ticket: t }) if t == ticket
        ));
        assert!(matches!(
            oram.drain(&[999]),
            Err(OramError::UnknownTicket { ticket: 999 })
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Arbitrary batched read/write interleavings agree with a
            /// plain map, across period boundaries.
            #[test]
            fn batches_match_reference(
                ops in proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..80),
                splits in proptest::collection::vec(1usize..20, 0..4),
            ) {
                let mut oram = build(64, 16); // period = 8 loads: shuffles happen
                let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

                // Split ops into batches at the given points.
                let mut batches: Vec<Vec<(u64, Option<u8>)>> = Vec::new();
                let mut rest = ops.as_slice();
                for &split in &splits {
                    let take = split.min(rest.len());
                    let (head, tail) = rest.split_at(take);
                    if !head.is_empty() {
                        batches.push(head.to_vec());
                    }
                    rest = tail;
                }
                if !rest.is_empty() {
                    batches.push(rest.to_vec());
                }

                for batch in batches {
                    let requests: Vec<Request> = batch
                        .iter()
                        .map(|(id, write)| match write {
                            Some(byte) => Request::write(*id, vec![*byte; 8]),
                            None => Request::read(*id),
                        })
                        .collect();
                    let responses = oram.run_batch(&requests).expect("batch");
                    for ((id, write), response) in batch.iter().zip(responses) {
                        let expected = match write {
                            Some(byte) => reference
                                .insert(*id, vec![*byte; 8])
                                .unwrap_or(vec![0u8; 8]),
                            None => {
                                reference.get(id).cloned().unwrap_or(vec![0u8; 8])
                            }
                        };
                        prop_assert_eq!(response, expected, "block {}", id);
                    }
                }
            }

            /// The cycle invariant holds for any workload shape: exactly
            /// one I/O load per cycle.
            #[test]
            fn one_io_per_cycle(ids in proptest::collection::vec(0u64..128, 1..60)) {
                let mut oram = build(128, 32);
                let requests: Vec<Request> = ids.into_iter().map(Request::read).collect();
                oram.run_batch(&requests).expect("batch");
                let stats = oram.stats();
                prop_assert_eq!(stats.total_io_loads(), stats.cycles);
            }

            /// Memory-resident count never exceeds the tree's real-block
            /// budget within a period (the n/2 invariant behind the
            /// period length).
            #[test]
            fn resident_blocks_bounded(ids in proptest::collection::vec(0u64..256, 1..50)) {
                let mut oram = build(256, 64);
                for id in ids {
                    oram.read(BlockId(id)).expect("read");
                    let resident = oram.storage.posmap().in_memory_count();
                    prop_assert!(
                        resident <= oram.config.period_io_limit() + oram.config().memory_slots,
                        "resident {} beyond budget",
                        resident
                    );
                }
            }
        }
    }
}

//! The H-ORAM instance: control + memory + storage layers, scheduled.
//!
//! [`HOram`] wires together the pieces the paper's Figure 4-1 draws:
//!
//! * the **control layer** — ROB table, secure scheduler, permutation
//!   list, position map (all trusted-side, no observable accesses);
//! * the **memory layer** — an in-memory Path ORAM tree used as a cache
//!   ([`PathOram`] on the DRAM device);
//! * the **storage layer** — the flat permuted partition grid on the slow
//!   device ([`StorageLayer`]).
//!
//! Execution alternates between **access periods** (scheduling cycles of
//! `c` memory path accesses overlapped with one I/O load, until `n/2`
//! loads have been issued) and **shuffle periods** (oblivious tree evict →
//! group+partition shuffle → fresh tree), exactly as §4.1 describes.
//!
//! Beyond the paper, the cycle driver is **pipelined** (see
//! [`crate::pipeline`] and `docs/PIPELINE.md`): while one window's device
//! and crypto phases are in flight, the next windows' control sweeps run
//! ahead, with every observable — responses, bus trace, statistics,
//! simulated clock — byte-identical at any pipeline depth.
//!
//! # Example
//!
//! ```
//! use horam_core::{HOram, HOramConfig};
//! use oram_protocols::{Oram, BlockId, Request};
//! use oram_storage::MemoryHierarchy;
//! use oram_crypto::keys::MasterKey;
//!
//! # fn main() -> Result<(), oram_protocols::OramError> {
//! let config = HOramConfig::new(256, 16, 64).with_seed(1);
//! let mut oram = HOram::new(config, MemoryHierarchy::dac2019(),
//!                           MasterKey::from_bytes([1; 32]))?;
//! oram.write(BlockId(3), &[7u8; 16])?;
//! assert_eq!(oram.read(BlockId(3))?, vec![7u8; 16]);
//! # Ok(())
//! # }
//! ```

use crate::config::HOramConfig;
use crate::evict::oblivious_tree_evict;
use crate::persist::{self, KIND_SINGLE, SNAPSHOT_DOMAIN};
use crate::pipeline::{HazardTracker, PipelineStats};
use crate::queue::RequestQueue;
use crate::scheduler::CyclePlan;
use crate::stats::HOramStats;
use crate::storage_layer::{BatchLoad, BatchOpener, LoadPlan, RawBatch, StorageLayer};
use oram_crypto::keys::{KeyHierarchy, MasterKey, SubKeys};
use oram_crypto::persist::{open_envelope, seal_envelope, StateReader, StateWriter};
use oram_crypto::prf::Prf;
use oram_protocols::error::OramError;
use oram_protocols::oram_trait::Oram;
use oram_protocols::path_oram::{AccessReceipt, PathOram};
use oram_protocols::types::{BlockId, Request, RequestOp};
use oram_storage::clock::{SimClock, SimDuration};
use oram_storage::hierarchy::MemoryHierarchy;
use oram_storage::trace::AccessTrace;
use std::collections::VecDeque;

/// One planned scheduling cycle, carried from the plan phase to the
/// execute phase of its window: the control-layer decisions, the storage
/// half's reservation, and the cycle's **pre-drawn** memory-layer
/// randomness. Pre-drawing at plan time pins the memory RNG stream to
/// plan order — which is the same at every pipeline depth — so overlapped
/// execution consumes exactly the randomness the sequential path would.
#[derive(Debug)]
struct PlannedCycle {
    plan: CyclePlan,
    /// One remap leaf per hit, in hit order.
    hit_leaves: Vec<u64>,
    /// One path per padding access, in issue order.
    dummy_leaves: Vec<u64>,
    /// The arriving block's tree position (exactly when the cycle's I/O
    /// load is expected to return a real block).
    insert_leaf: Option<u64>,
}

/// A fully planned I/O window — the unit the pipeline keeps in flight.
#[derive(Debug)]
struct PlannedWindow {
    cycles: Vec<PlannedCycle>,
}

/// The hybrid ORAM. See the [module docs](self).
#[derive(Debug)]
pub struct HOram {
    config: HOramConfig,
    memory: PathOram,
    storage: StorageLayer,
    clock: SimClock,
    trace: AccessTrace,
    queue: RequestQueue,
    io_used_in_period: u64,
    /// I/O loads *planned* in the current period, including windows still
    /// in flight. Equal to `io_used_in_period` whenever no window is in
    /// flight; transient, never persisted (snapshots require a drained,
    /// settled instance where the two coincide).
    io_planned_in_period: u64,
    period_seq: u64,
    seed_prf: Prf,
    stats: HOramStats,
    /// Resolved pipeline depth: how many I/O windows may be in flight at
    /// once (config knob, falling back to the machine hint; 1 =
    /// sequential).
    pipeline_depth: u64,
    /// Structural-hazard ledger for in-flight windows.
    hazards: HazardTracker,
    /// Volatile pipeline counters (never part of snapshots or
    /// [`HOramStats`] — they describe *how* windows ran, which is exactly
    /// what the determinism contract keeps unobservable).
    pipeline_stats: PipelineStats,
    /// Doc-hidden leaky fixture: lookahead ignores the period boundary.
    hazard_skip: bool,
    /// Keys sealing this instance's snapshots (derived from the master).
    snapshot_keys: SubKeys,
}

impl HOram {
    /// Builds an H-ORAM instance on the given machine.
    ///
    /// Construction installs the initial storage layout and an empty
    /// memory tree, then **resets all accounting** (clock, traces, device
    /// stats), so reported numbers cover steady-state operation only.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout writes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`HOramConfig::validate`]).
    pub fn new(
        config: HOramConfig,
        hierarchy: MemoryHierarchy,
        master: MasterKey,
    ) -> Result<Self, OramError> {
        config.validate();
        let clock = hierarchy.clock().clone();
        let trace = hierarchy.trace().clone();
        let pipeline_depth = config.pipeline.effective_depth(hierarchy.pipeline_hint());
        let MemoryHierarchy {
            memory: memory_device,
            storage: storage_device,
            ..
        } = hierarchy;

        let memory = Self::build_memory_layer(&config, memory_device, &master)?;
        let posmap = crate::posmap::build_posmap(&config, &master, false)?;
        let storage = StorageLayer::new(
            &config,
            storage_device,
            KeyHierarchy::new(master.clone(), "horam/storage"),
            posmap,
        )?;

        let seed_prf = Prf::new(master.derive("horam/seeds", 0).prf().to_owned());
        let queue = RequestQueue::new(config.capacity, config.payload_len);
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let mut horam = Self {
            config,
            memory,
            storage,
            clock,
            trace,
            queue,
            io_used_in_period: 0,
            io_planned_in_period: 0,
            period_seq: 0,
            seed_prf,
            stats: HOramStats::default(),
            pipeline_depth,
            hazards: HazardTracker::new(),
            pipeline_stats: PipelineStats::default(),
            hazard_skip: false,
            snapshot_keys,
        };
        horam.reset_accounting();
        Ok(horam)
    }

    /// Builds the in-memory Path ORAM cache layer the way [`new`](Self::new)
    /// does — shared with [`restore`](Self::restore) so derived key and
    /// seed material cannot drift between the two construction paths.
    fn build_memory_layer(
        config: &HOramConfig,
        device: oram_storage::device::Device,
        master: &MasterKey,
    ) -> Result<PathOram, OramError> {
        let memory_keys = master.derive("horam/memory", 0);
        PathOram::for_slot_budget(
            config.memory_slots,
            Some(config.capacity),
            config.payload_len,
            device,
            &memory_keys,
            config.seed ^ 0x6d65_6d6f,
        )
    }

    /// Seals the complete trusted client state into an encrypted,
    /// authenticated snapshot — stash, position map, permutation list,
    /// key epochs, scheduling counters, clock, and statistics — and
    /// **commits the storage device** first (a durable device flushes its
    /// write-back buffer, fsyncs, and truncates its undo journal), so the
    /// on-disk image a later recovery adopts is exactly the one this
    /// snapshot describes.
    ///
    /// The snapshot leaks nothing beyond its size (and whether two
    /// snapshots captured identical state — the envelope nonce is a
    /// keyed PRF of the body); see `docs/ARCHITECTURE.md` §9 for the
    /// trust-boundary argument.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] if requests are still queued
    /// (snapshots are taken at batch boundaries — the serving layer's
    /// checkpoint drains first); storage backend errors propagate.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, OramError> {
        if !self.queue.is_drained() {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "{} requests still queued; drain before snapshotting",
                    self.queue.pending()
                ),
            });
        }
        // Commit point: everything the snapshot's control state refers to
        // must be on stable storage before the snapshot exists.
        self.memory
            .device_mut()
            .sync()
            .map_err(OramError::Storage)?;
        self.storage
            .device_mut()
            .sync()
            .map_err(OramError::Storage)?;
        self.storage.posmap_mut().sync()?;

        let mut w = StateWriter::new();
        persist::save_config(&self.config, &mut w);
        w.put_u64(self.clock.now().as_nanos());
        w.put_u64(self.io_used_in_period);
        w.put_u64(self.period_seq);
        self.stats.save_state(&mut w);
        self.queue.save_state(&mut w);
        self.memory.save_state(&mut w)?;
        self.storage.save_state(&mut w)?;

        let body = w.into_bytes();
        let seq = persist::envelope_seq(&self.snapshot_keys, &body);
        Ok(seal_envelope(&self.snapshot_keys, KIND_SINGLE, seq, &body))
    }

    /// Rebuilds an instance from a snapshot sealed by
    /// [`snapshot`](Self::snapshot), the same master key, and a hierarchy
    /// whose storage device holds the snapshot's data: the durable device
    /// file for a file-backed hierarchy (its undo journal rolls partial
    /// post-snapshot writes back on open), or nothing for a fully
    /// volatile hierarchy (the snapshot embeds the data).
    ///
    /// The restored instance is byte-equivalent to the one the snapshot
    /// captured: replaying the same request stream produces identical
    /// responses, an identical bus trace (timestamps continue from the
    /// snapshot's clock), and identical statistics —
    /// `tests/persistence.rs` property-tests this end to end.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] for a truncated, corrupted,
    /// wrong-key, or geometry-incompatible snapshot. Restores fail
    /// closed: an error never yields a partially restored instance.
    pub fn restore(
        hierarchy: MemoryHierarchy,
        master: MasterKey,
        snapshot: &[u8],
    ) -> Result<Self, OramError> {
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let body = open_envelope(&snapshot_keys, KIND_SINGLE, snapshot)?;
        let mut r = StateReader::new(&body);
        let config = persist::load_config(&mut r)?;
        config.validate();

        let clock = hierarchy.clock().clone();
        let trace = hierarchy.trace().clone();
        let pipeline_depth = config.pipeline.effective_depth(hierarchy.pipeline_hint());
        let MemoryHierarchy {
            memory: memory_device,
            storage: storage_device,
            ..
        } = hierarchy;

        let clock_nanos = r.get_u64()?;
        let io_used_in_period = r.get_u64()?;
        let period_seq = r.get_u64()?;
        let stats = HOramStats::load_state(&mut r)?;
        let mut queue = RequestQueue::new(config.capacity, config.payload_len);
        queue.load_state(&mut r)?;
        let mut memory = Self::build_memory_layer(&config, memory_device, &master)?;
        memory.load_state(&mut r)?;
        let posmap = crate::posmap::build_posmap(&config, &master, true)?;
        let storage = StorageLayer::restore(
            &config,
            storage_device,
            KeyHierarchy::new(master.clone(), "horam/storage"),
            posmap,
            &mut r,
        )?;
        r.finish()?;

        // The hierarchy's accounting restarts at the snapshot's instant:
        // the trace is empty (the adversary's pre-crash view is already
        // recorded elsewhere) and the clock continues where it stopped,
        // so post-restore trace timestamps line up with an uninterrupted
        // run.
        trace.clear();
        clock.reset();
        clock.advance(SimDuration::from_nanos(clock_nanos));

        let seed_prf = Prf::new(master.derive("horam/seeds", 0).prf().to_owned());
        Ok(Self {
            config,
            memory,
            storage,
            clock,
            trace,
            queue,
            io_used_in_period,
            // Snapshots are taken drained and settled, so planned == used.
            io_planned_in_period: io_used_in_period,
            period_seq,
            seed_prf,
            stats,
            pipeline_depth,
            hazards: HazardTracker::new(),
            pipeline_stats: PipelineStats::default(),
            hazard_skip: false,
            snapshot_keys,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HOramConfig {
        &self.config
    }

    /// Run statistics.
    pub fn stats(&self) -> HOramStats {
        self.stats
    }

    /// The shared bus trace (adversary view) of this instance.
    pub fn trace(&self) -> &AccessTrace {
        &self.trace
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Memory-layer device statistics.
    pub fn memory_device_stats(&self) -> oram_storage::stats::DeviceStats {
        *self.memory.device().stats()
    }

    /// Storage-layer device statistics.
    pub fn storage_device_stats(&self) -> oram_storage::stats::DeviceStats {
        *self.storage.device().stats()
    }

    /// Block-cache counters of the storage device, when a cache is
    /// installed (via [`HOramConfig::cache`] or the machine description).
    ///
    /// [`HOramConfig::cache`]: crate::config::HOramConfig::cache
    pub fn cache_stats(&self) -> Option<oram_storage::cache::CacheStats> {
        self.storage.cache_stats()
    }

    /// Peak stash occupancy of the memory layer.
    pub fn memory_stash_peak(&self) -> usize {
        self.memory.stash_peak()
    }

    /// The position map (control-layer view): trusted-byte accounting,
    /// activity counters, and — on the recursive variant — per-level
    /// oblivious traces.
    pub fn posmap(&self) -> &dyn crate::posmap::PositionMap {
        self.storage.posmap()
    }

    /// Total storage footprint in bytes (for the paper's size rows).
    pub fn storage_bytes(&self) -> u64 {
        self.storage
            .storage_bytes(self.storage.device().charged_block_bytes())
    }

    /// Wraps the storage device's backing store in a deterministic fault
    /// injector ([`oram_storage::fault::FaultyStore`]) — the entry point
    /// fault-injection tests use to make an already-populated, healthy
    /// instance start failing mid-run. Calling again stacks another
    /// injector over the first.
    pub fn inject_storage_faults(&mut self, config: oram_storage::fault::FaultConfig) {
        self.storage
            .device_mut()
            .wrap_store(|inner| Box::new(oram_storage::fault::FaultyStore::new(inner, config)));
    }

    /// Test fixture access to the storage device (e.g. the doc-hidden
    /// leaky-retry fixture the leakage battery must detect).
    #[doc(hidden)]
    pub fn storage_device_mut(&mut self) -> &mut oram_storage::device::Device {
        self.storage.device_mut()
    }

    /// Counters of injected storage faults, when
    /// [`inject_storage_faults`](Self::inject_storage_faults) (or a
    /// faulted hierarchy) is in effect.
    pub fn storage_fault_stats(&self) -> Option<oram_storage::fault::FaultStats> {
        self.storage.device().fault_stats()
    }

    /// Transient-fault retry counters of the storage device (volatile;
    /// not part of snapshots).
    pub fn storage_retry_stats(&self) -> oram_storage::device::RetryStats {
        self.storage.device().retry_stats()
    }

    /// The resolved cycle-pipeline depth this instance runs at: the
    /// [`HOramConfig::pipeline`] knob, falling back to the machine's
    /// [`MemoryHierarchy::pipeline_hint`], falling back to 1 (sequential).
    ///
    /// [`HOramConfig::pipeline`]: crate::config::HOramConfig::pipeline
    pub fn pipeline_depth(&self) -> u64 {
        self.pipeline_depth
    }

    /// Volatile pipeline counters: overlapped commits, windows planned
    /// ahead, period-boundary stalls, overlapped shuffles. Diagnostic
    /// only — never part of [`HOramStats`] or snapshots, because they
    /// describe scheduling mechanics the determinism contract keeps out
    /// of every observable.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline_stats
    }

    /// Test fixture: makes *lookahead* planning ignore the period
    /// boundary, so at depths ≥ 2 windows are planned across a pending
    /// shuffle and the shuffle is delayed — a deliberate determinism
    /// leak the pipeline battery must detect (head windows stay clamped,
    /// so depth-1 behavior is unchanged and the leak is invisible to
    /// everything but a cross-depth differential test).
    #[doc(hidden)]
    pub fn set_hazard_skip(&mut self, enabled: bool) {
        self.hazard_skip = enabled;
    }

    /// Clears all timing/tracing/statistics state (not data).
    pub fn reset_accounting(&mut self) {
        self.memory.device_mut().reset_accounting();
        self.storage.device_mut().reset_accounting();
        self.storage.posmap_mut().reset_accounting();
        self.trace.clear();
        self.clock.reset();
        self.stats = HOramStats::default();
        self.pipeline_stats = PipelineStats::default();
    }

    fn period_seed(&self, purpose: u64) -> u64 {
        self.seed_prf
            .eval_words("period-seed", &[self.period_seq, purpose, self.config.seed])
    }

    /// The admission queue: pending count, per-ticket response readiness.
    pub fn queue(&self) -> &RequestQueue {
        &self.queue
    }

    /// Queues a request; returns the ticket to collect its response.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids beyond the capacity and
    /// [`OramError::PayloadSize`] for mis-sized write payloads — requests
    /// are validated before they can reach the scheduler (see
    /// [`RequestQueue::submit`]).
    pub fn enqueue(&mut self, request: Request) -> Result<u64, OramError> {
        self.queue.submit(request)
    }

    /// Removes and returns the response for `ticket`, if it has been
    /// serviced. The serving layer uses this to collect responses
    /// incrementally while batches from other tenants are still queued.
    pub fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        self.queue.take_response(ticket)
    }

    /// Runs scheduling cycles until the ROB drains, then returns responses
    /// for the given tickets in order.
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate; queued requests that were
    /// already serviced keep their responses.
    /// [`OramError::UnknownTicket`] for a ticket that was never issued or
    /// whose response was already collected (e.g. via
    /// [`take_response`](Self::take_response)).
    pub fn drain(&mut self, tickets: &[u64]) -> Result<Vec<Vec<u8>>, OramError> {
        while !self.queue.is_drained() {
            self.run_cycle_burst(self.config.io_batch, u64::MAX)?;
        }
        let mut out = Vec::with_capacity(tickets.len());
        for ticket in tickets {
            let response = self
                .queue
                .take_response(*ticket)
                .ok_or(OramError::UnknownTicket { ticket: *ticket })?;
            out.push(response);
        }
        Ok(out)
    }

    /// Queues a whole batch and drains it — the paper's evaluation mode
    /// (a request trace pushed through the scheduler).
    ///
    /// # Errors
    ///
    /// As [`drain`](Self::drain).
    pub fn run_batch(&mut self, requests: &[Request]) -> Result<Vec<Vec<u8>>, OramError> {
        let tickets: Vec<u64> = requests
            .iter()
            .map(|r| self.enqueue(r.clone()))
            .collect::<Result<_, _>>()?;
        self.drain(&tickets)
    }

    /// Executes one scheduling cycle: up to `c` memory accesses overlapped
    /// with exactly one I/O load (real or dummy), then period bookkeeping.
    /// Equivalent to [`run_cycle_window`](Self::run_cycle_window) with a
    /// window of one.
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate.
    pub fn run_cycle(&mut self) -> Result<(), OramError> {
        self.run_cycle_window(1).map(|_| ())
    }

    /// Executes up to `max_cycles` scheduling cycles as one I/O window:
    ///
    /// 1. **plan** — each cycle is planned exactly as in the sequential
    ///    path (hit hoisting, miss selection, padding). Planning mutates
    ///    control-layer state only — the ROB, the permutation list, the
    ///    period markers ([`StorageLayer::plan_io`]) — so cycle `j+1`'s
    ///    hit test already observes cycle `j`'s load, and the per-cycle
    ///    decisions are *identical* to running
    ///    [`run_cycle`](Self::run_cycle) `max_cycles` times;
    /// 2. **commit** — the window's loads go to the storage device as one
    ///    queued scatter read ([`StorageLayer::commit_io`]), coalescing
    ///    per-op device overhead;
    /// 3. **execute** — the memory halves run in plan order, each cycle's
    ///    loaded block landing in the tree before the next cycle's hits
    ///    are served.
    ///
    /// The observable storage access sequence (slots, order, sizes) is
    /// byte-identical to the sequential path — only the simulated cost
    /// shrinks. The window never crosses a period boundary (it is clamped
    /// to the period's remaining I/O budget) and stops early when the ROB
    /// drains. Returns the number of cycles executed.
    ///
    /// [`StorageLayer::plan_io`]: crate::storage_layer::StorageLayer::plan_io
    /// [`StorageLayer::commit_io`]: crate::storage_layer::StorageLayer::commit_io
    ///
    /// # Errors
    ///
    /// Storage/crypto/protocol errors propagate and are **fail-stop**:
    /// planned cycles have already mutated the ROB and location table, so
    /// after an error the instance's trusted metadata no longer matches
    /// the device and the instance must be discarded (the same corruption
    /// cases were fatal to the request on the sequential path).
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero.
    pub fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, OramError> {
        self.run_cycle_burst(max_cycles, 1)
    }

    /// Runs up to `max_windows` I/O windows of up to `max_cycles` cycles
    /// each through the **pipelined cycle driver**, stopping early when
    /// the ROB drains. Returns the total number of cycles executed.
    ///
    /// While one window's device scatter and crypto open are in flight,
    /// up to `pipeline depth − 1` further windows are planned ahead
    /// (control sweep: hit classification, I/O reservation, randomness
    /// pre-draw, hazard registration). The contract — enforced by
    /// `tests/pipeline.rs` — is that every observable is **byte-identical
    /// at any depth**: planning mutates only control-layer state, device
    /// and memory phases run on the driver thread in canonical order, and
    /// each cycle's randomness is pre-drawn at plan time, so only host
    /// wall-clock behavior changes. A burst of `w` windows executes
    /// exactly the cycles `w` successive [`run_cycle_window`] calls
    /// would.
    ///
    /// Lookahead planning stalls (deterministically) at a period
    /// boundary: a window of the next period is never planned while this
    /// period's windows are in flight, so the shuffle always runs at the
    /// same cycle index as the sequential path.
    ///
    /// [`run_cycle_window`]: Self::run_cycle_window
    ///
    /// # Errors
    ///
    /// As [`run_cycle_window`](Self::run_cycle_window): fail-stop.
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` or `max_windows` is zero.
    pub fn run_cycle_burst(&mut self, max_cycles: u64, max_windows: u64) -> Result<u64, OramError> {
        assert!(
            max_cycles >= 1,
            "a cycle window must cover at least one cycle"
        );
        assert!(max_windows >= 1, "a burst must cover at least one window");
        let mut planned_windows: u64 = 1;
        let mut executed_total: u64 = 0;
        let mut queued: VecDeque<PlannedWindow> = VecDeque::new();
        // The head window is planned unconditionally: an empty queue
        // still runs one padded (all-dummy) cycle, exactly as the
        // sequential path always has.
        queued.push_back(self.plan_window(max_cycles, true)?);

        while let Some(window) = queued.pop_front() {
            // Device half on the driver thread, in canonical order.
            let opener = self.storage.batch_opener();
            let raw = self.storage.commit_scatter(window.cycles.len())?;
            // Crypto half (decrypt + verify), overlapped with planning
            // the next windows when the pipeline is deeper than one.
            let batch = self.open_window(
                opener,
                raw,
                max_cycles,
                max_windows,
                &mut planned_windows,
                &mut queued,
            )?;
            // Memory half in plan order.
            executed_total += self.execute_window(&window, batch)?;

            if queued.is_empty() {
                // Nothing in flight: period boundaries are safe to cross.
                if self.io_used_in_period >= self.config.period_io_limit() {
                    self.shuffle_period()?;
                }
                if planned_windows < max_windows && !self.queue.is_drained() {
                    queued.push_back(self.plan_window(max_cycles, true)?);
                    planned_windows += 1;
                }
            }
        }
        Ok(executed_total)
    }

    /// Plans one I/O window: the control sweep of up to `max_cycles`
    /// cycles (clamped to the period's remaining *planned* I/O budget
    /// when `clamp_to_period`, which is always except for the doc-hidden
    /// leaky fixture's lookahead). Mutates control-layer state only —
    /// ROB, permutation-list markers, position map, hazard ledger, and
    /// the memory layer's RNG (pre-drawn here, consumed at execute).
    fn plan_window(
        &mut self,
        max_cycles: u64,
        clamp_to_period: bool,
    ) -> Result<PlannedWindow, OramError> {
        let window = if clamp_to_period {
            max_cycles.min(
                self.config
                    .period_io_limit()
                    .saturating_sub(self.io_planned_in_period),
            )
        } else {
            max_cycles
        };
        let d = self.config.prefetch_distance;
        let mut cycles: Vec<PlannedCycle> = Vec::with_capacity(window as usize);
        let mut slots: Vec<u64> = Vec::new();
        let mut inserts = 0u64;
        for offset in 0..window {
            if offset > 0 && self.queue.is_drained() {
                break;
            }
            let c = self.config.stage_c(self.io_planned_in_period + offset);
            let storage = &mut self.storage;
            let plan: CyclePlan = self.queue.plan(c, d, |id| storage.is_in_memory(id));
            let io = self.storage.plan_io(match plan.miss_block {
                Some(id) => LoadPlan::Miss(id),
                None => LoadPlan::Dummy,
            })?;
            // Pre-draw the cycle's memory-layer randomness in execution
            // order — hit remaps, then padding paths, then the arrival's
            // tree position — pinning the RNG stream at plan time.
            let hit_leaves: Vec<u64> = plan.hits.iter().map(|_| self.memory.draw_leaf()).collect();
            let dummy_leaves: Vec<u64> = (0..plan.dummy_memory)
                .map(|_| self.memory.draw_leaf())
                .collect();
            let insert_leaf = io.expect.map(|_| self.memory.draw_leaf());
            if let Some(slot) = io.slot {
                slots.push(slot);
            }
            inserts += u64::from(io.expect.is_some());
            cycles.push(PlannedCycle {
                plan,
                hit_leaves,
                dummy_leaves,
                insert_leaf,
            });
        }
        self.hazards.reserve_window(&slots, inserts)?;
        self.pipeline_stats.max_windows_in_flight = self
            .pipeline_stats
            .max_windows_in_flight
            .max(self.hazards.in_flight() as u64);
        self.pipeline_stats.stash_reserved_peak = self
            .pipeline_stats
            .stash_reserved_peak
            .max(self.hazards.stash_reserved_peak());
        self.io_planned_in_period += cycles.len() as u64;
        Ok(PlannedWindow { cycles })
    }

    /// Plans further windows while the in-flight window's crypto open
    /// runs: refills the lookahead queue to `pipeline depth − 1`
    /// windows, stopping — deterministically, independent of how fast
    /// the open finishes — when the ROB drains, the burst's window
    /// allowance is spent, or the period's I/O budget is exhausted (a
    /// **period stall**: the next window belongs after the shuffle).
    fn top_up(
        &mut self,
        max_cycles: u64,
        max_windows: u64,
        planned_windows: &mut u64,
        queued: &mut VecDeque<PlannedWindow>,
    ) -> Result<(), OramError> {
        while (queued.len() as u64) < self.pipeline_depth.saturating_sub(1)
            && *planned_windows < max_windows
            && !self.queue.is_drained()
        {
            let budget = self
                .config
                .period_io_limit()
                .saturating_sub(self.io_planned_in_period);
            if budget == 0 && !self.hazard_skip {
                self.pipeline_stats.period_stalls += 1;
                break;
            }
            let window = self.plan_window(max_cycles, !self.hazard_skip)?;
            if window.cycles.is_empty() {
                break;
            }
            *planned_windows += 1;
            self.pipeline_stats.planned_ahead_windows += 1;
            queued.push_back(window);
        }
        Ok(())
    }

    /// Opens a committed scatter batch (decrypt + verify), overlapping
    /// the open with lookahead planning when the pipeline is deeper than
    /// one window. The open is a pure function of the raw batch and the
    /// (cloned) sealer, and planning touches control state only, so the
    /// two are disjoint; without a worker pool the same two steps run on
    /// this thread in the same control-transition order.
    fn open_window(
        &mut self,
        opener: BatchOpener,
        raw: RawBatch,
        max_cycles: u64,
        max_windows: u64,
        planned_windows: &mut u64,
        queued: &mut VecDeque<PlannedWindow>,
    ) -> Result<BatchLoad, OramError> {
        if self.pipeline_depth <= 1 {
            return opener.open(raw);
        }
        match self.storage.workers() {
            None => {
                let batch = opener.open(raw)?;
                self.top_up(max_cycles, max_windows, planned_windows, queued)?;
                Ok(batch)
            }
            Some(pool) => {
                let mut opened: Option<Result<BatchLoad, OramError>> = None;
                let mut planned: Result<(), OramError> = Ok(());
                {
                    let opened = &mut opened;
                    pool.scope(|scope| {
                        scope.spawn(move || *opened = Some(opener.open(raw)));
                        planned = self.top_up(max_cycles, max_windows, planned_windows, queued);
                    });
                }
                planned?;
                self.pipeline_stats.overlapped_commits += 1;
                opened
                    .ok_or_else(|| OramError::internal("overlapped batch open returned nothing"))?
            }
        }
    }

    /// Executes one planned window's memory half in plan order, consuming
    /// the pre-drawn randomness, then advances the simulated clock by the
    /// overlapped wall time and retires the window's hazard claims.
    fn execute_window(
        &mut self,
        window: &PlannedWindow,
        batch: BatchLoad,
    ) -> Result<u64, OramError> {
        let mut memory_total = SimDuration::ZERO;
        for (cycle, io_load) in window.cycles.iter().zip(batch.loads) {
            let mut memory_time = SimDuration::ZERO;
            for (entry, &new_leaf) in cycle.plan.hits.iter().zip(&cycle.hit_leaves) {
                let (data, receipt) = match &entry.request.op {
                    RequestOp::Read => self.memory.access_read_at(entry.request.id, new_leaf)?,
                    RequestOp::Write(payload) => {
                        self.stats.writes += 1;
                        self.memory
                            .access_write_at(entry.request.id, new_leaf, payload)?
                    }
                };
                memory_time += receipt.memory;
                self.queue.complete(entry.ticket, data);
                self.stats.memory_hits += 1;
                self.stats.requests += 1;
            }
            for &leaf in &cycle.dummy_leaves {
                memory_time += self.memory.dummy_access_at(leaf)?.memory;
                self.stats.dummy_memory_accesses += 1;
            }
            match cycle.plan.miss_block {
                Some(_) => self.stats.real_io_loads += 1,
                None => {
                    self.stats.dummy_io_loads += 1;
                    if io_load.block.is_some() {
                        self.stats.prefetched_blocks += 1;
                    }
                }
            }
            if let Some((id, payload)) = io_load.block {
                let leaf = cycle
                    .insert_leaf
                    .ok_or_else(|| OramError::internal("I/O arrival without a pre-drawn leaf"))?;
                self.memory.insert_block_at(id, payload, leaf)?;
            }
            memory_total += memory_time;
            self.stats.cycles += 1;
        }
        self.hazards.retire_window();

        // Wall clock: the paper overlaps the path accesses with the loads
        // ("the I/O loads and in-memory reads are conducted simultaneously");
        // a window overlaps its whole memory stream with its whole batch.
        let executed = window.cycles.len() as u64;
        let wall = memory_total.max(batch.io_time);
        self.clock.advance(wall);
        self.stats.access_wall_time += wall;
        self.stats.memory_time += memory_total;
        self.stats.io_time += batch.io_time;
        self.io_used_in_period += executed;
        Ok(executed)
    }

    /// Runs the shuffle period now (normally triggered automatically when
    /// the period's I/O budget is spent): oblivious tree evict →
    /// group+partition shuffle (full or partial) → fresh memory tree.
    ///
    /// At pipeline depths above one (with a worker pool available), the
    /// full shuffle's position-map rewrite is overlapped with installing
    /// the fresh in-memory tree: the position map owns its own clock and
    /// per-level trace, and the tree rebuild touches only the memory
    /// device, so the two rebuilds are disjoint and the overlap is
    /// invisible in every observable (see `docs/PIPELINE.md`).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn shuffle_period(&mut self) -> Result<(), OramError> {
        // 1. Oblivious tree evict (§4.3.1).
        let evict_seed = self.period_seed(1);
        let outcome =
            oblivious_tree_evict(&mut self.memory, self.config.evict_shuffle, evict_seed)?;

        // 2. Group + partition shuffle (§4.3.2 / §5.3.1), then
        // 3. fresh in-memory tree (§4.1.2: "evicted back to the storage
        //    and will be reconstructed again") — overlapped with the
        //    shuffle's position-map rewrite when pipelining allows.
        let shuffle_seed = self.period_seed(2);
        let pool = if self.pipeline_depth > 1 && self.config.partial_shuffle_ratio.is_none() {
            self.storage.workers()
        } else {
            None
        };
        let (report, rebuild) = match pool {
            Some(pool) => {
                let (report, image) = self
                    .storage
                    .rebuild_full_deferred(outcome.blocks, shuffle_seed)?;
                let mut posmap_done: Option<Result<(), OramError>> = None;
                let mut rebuilt: Option<Result<AccessReceipt, OramError>> = None;
                {
                    let posmap = self.storage.posmap_mut();
                    let memory = &mut self.memory;
                    let posmap_done = &mut posmap_done;
                    pool.scope(|scope| {
                        scope.spawn(move || *posmap_done = Some(posmap.rebuild_all(&image)));
                        rebuilt = Some(memory.rebuild_empty());
                    });
                }
                posmap_done.ok_or_else(|| {
                    OramError::internal("overlapped posmap rebuild went missing")
                })??;
                let rebuild = rebuilt
                    .ok_or_else(|| OramError::internal("overlapped tree rebuild went missing"))??;
                self.pipeline_stats.shuffle_overlaps += 1;
                (report, rebuild)
            }
            None => {
                let report = match self.config.partial_shuffle_ratio {
                    None => self.storage.rebuild_full(outcome.blocks, shuffle_seed)?,
                    Some(_) => self.storage.rebuild_partial(
                        outcome.blocks,
                        self.config.partitions_per_shuffle(),
                        shuffle_seed,
                    )?,
                };
                (report, self.memory.rebuild_empty()?)
            }
        };

        // Evict and tree rebuild are memory-side and serialize with the
        // pipelined storage pass.
        let wall = outcome.memory_time + report.wall_time + rebuild.memory;
        self.clock.advance(wall);
        self.stats.shuffle_wall_time += wall;
        self.stats.shuffles += 1;
        self.stats.spilled_blocks += report.spilled;
        self.io_used_in_period = 0;
        self.io_planned_in_period = 0;
        self.period_seq += 1;
        self.hazards.clear();
        // The evict returned every cached block to storage: in-flight loads
        // are void, pending misses must be re-issueable.
        self.queue.void_in_flight_io();
        Ok(())
    }
}

impl Oram for HOram {
    fn capacity(&self) -> u64 {
        self.config.capacity
    }

    fn payload_len(&self) -> usize {
        self.config.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        let mut out = self.run_batch(&[Request::read(id)])?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        let mut out = self.run_batch(&[Request::write(id, data.to_vec())])?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::rng::DeterministicRng;
    use rand::Rng;
    use std::collections::HashMap;

    fn build(capacity: u64, memory_slots: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots).with_seed(17);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([9; 32]),
        )
        .unwrap()
    }

    #[test]
    fn read_your_writes_single() {
        let mut oram = build(256, 64);
        oram.write(BlockId(5), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(oram.read(BlockId(5)).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn batch_preserves_request_order() {
        let mut oram = build(256, 64);
        let requests: Vec<Request> = (0..20u64)
            .map(|i| Request::write(i, vec![i as u8; 8]))
            .chain((0..20u64).map(Request::read))
            .collect();
        let responses = oram.run_batch(&requests).unwrap();
        assert_eq!(responses.len(), 40);
        for (i, response) in responses.iter().skip(20).enumerate() {
            assert_eq!(response, &vec![i as u8; 8], "read-back of block {i}");
        }
    }

    #[test]
    fn survives_shuffle_periods() {
        // Memory 64 slots ⇒ period = 32 I/O loads; 300 requests with a
        // small hot set forces several periods.
        let mut oram = build(256, 64);
        let mut rng = DeterministicRng::from_u64_seed(3);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        for _ in 0..300 {
            let id = rng.gen_range(0..256u64);
            if rng.gen_bool(0.3) {
                let payload = vec![rng.gen::<u8>(); 8];
                oram.write(BlockId(id), &payload).unwrap();
                reference.insert(id, payload);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                let expected = reference.get(&id).cloned().unwrap_or(vec![0u8; 8]);
                assert_eq!(got, expected, "block {id}");
            }
        }
        assert!(
            oram.stats().shuffles >= 1,
            "workload must cross a period boundary"
        );
    }

    fn build_batched(capacity: u64, memory_slots: u64, io_batch: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(17)
            .with_io_batch(io_batch);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([9; 32]),
        )
        .unwrap()
    }

    #[test]
    fn windowed_drain_matches_sequential_exactly() {
        // Identical responses, identical storage access sequence
        // (oblivious-trace equality), identical cycle/load/shuffle counts;
        // strictly less simulated I/O time. The workload crosses several
        // shuffle periods (memory 64 ⇒ period 32) and mixes hits, misses
        // and writes.
        let mut rng = DeterministicRng::from_u64_seed(41);
        let requests: Vec<Request> = (0..220)
            .map(|_| {
                let id = rng.gen_range(0..256u64);
                if rng.gen_bool(0.3) {
                    Request::write(id, vec![rng.gen::<u8>(); 8])
                } else {
                    Request::read(id)
                }
            })
            .collect();

        let mut sequential = build(256, 64);
        let seq_responses = sequential.run_batch(&requests).unwrap();
        let storage_id = sequential.storage.device().id();
        let seq_addrs = sequential.trace().address_sequence(storage_id);

        let mut batched = build_batched(256, 64, 8);
        let bat_responses = batched.run_batch(&requests).unwrap();
        let bat_addrs = batched.trace().address_sequence(storage_id);

        assert_eq!(seq_responses, bat_responses);
        assert_eq!(seq_addrs, bat_addrs, "storage access patterns diverged");
        let (seq_stats, bat_stats) = (sequential.stats(), batched.stats());
        assert!(seq_stats.shuffles >= 2, "setup: must cross periods");
        assert_eq!(seq_stats.cycles, bat_stats.cycles);
        assert_eq!(seq_stats.total_io_loads(), bat_stats.total_io_loads());
        assert_eq!(seq_stats.real_io_loads, bat_stats.real_io_loads);
        assert_eq!(seq_stats.shuffles, bat_stats.shuffles);
        assert_eq!(seq_stats.memory_time, bat_stats.memory_time);
        assert!(
            bat_stats.io_time < seq_stats.io_time,
            "batched I/O {:?} !< sequential {:?}",
            bat_stats.io_time,
            seq_stats.io_time
        );
        assert!(bat_stats.access_wall_time <= seq_stats.access_wall_time);
    }

    #[test]
    fn cycle_window_never_crosses_a_period_boundary() {
        let mut oram = build_batched(256, 16, 64); // period = 8 ≪ window
        let requests: Vec<Request> = (0..40u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert!(stats.shuffles >= 2);
        // One load per cycle still holds under windows, and the period
        // limit was honored (each window clamps to the remaining budget).
        assert_eq!(stats.total_io_loads(), stats.cycles);
    }

    #[test]
    fn cycle_window_stops_when_the_rob_drains() {
        let mut oram = build_batched(256, 64, 32);
        oram.enqueue(Request::read(1u64)).unwrap();
        oram.enqueue(Request::read(2u64)).unwrap();
        let executed = oram.run_cycle_window(32).unwrap();
        assert!(
            executed < 32,
            "window should stop early, ran {executed} cycles"
        );
        assert!(oram.queue().is_drained());
    }

    #[test]
    fn every_cycle_issues_exactly_one_io() {
        let mut oram = build(256, 64);
        let requests: Vec<Request> = (0..30u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert_eq!(stats.total_io_loads(), stats.cycles);
    }

    #[test]
    fn hot_workload_hits_in_memory() {
        let mut oram = build(256, 128);
        // Touch 4 blocks repeatedly: after the first misses, everything is
        // a hit and I/O loads become dummies.
        let requests: Vec<Request> = (0..100u64).map(|i| Request::read(i % 4)).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        assert_eq!(stats.real_io_loads, 4, "only the cold misses hit storage");
        assert!(stats.requests_per_io() > 2.0);
    }

    #[test]
    fn grouping_overlaps_memory_under_io() {
        let mut oram = build(1024, 256);
        let requests: Vec<Request> = (0..200u64).map(|i| Request::read(i % 8)).collect();
        oram.run_batch(&requests).unwrap();
        let stats = oram.stats();
        // Wall time of the access period must be below the serial sum.
        assert!(stats.access_wall_time < stats.memory_time + stats.io_time);
        // And at least the larger component.
        assert!(stats.access_wall_time >= stats.io_time.max(stats.memory_time));
    }

    #[test]
    fn period_limit_triggers_shuffles() {
        let mut oram = build(256, 16); // period = 8 I/O loads
        let requests: Vec<Request> = (0..40u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        assert!(oram.stats().shuffles >= 2);
        assert!(oram.stats().shuffle_wall_time > SimDuration::ZERO);
    }

    #[test]
    fn partial_shuffle_mode_works_end_to_end() {
        let config = HOramConfig::new(256, 8, 16)
            .with_seed(5)
            .with_partial_shuffle(0.25);
        let mut oram = HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([8; 32]),
        )
        .unwrap();
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rng = DeterministicRng::from_u64_seed(6);
        for _ in 0..120 {
            let id = rng.gen_range(0..256u64);
            if rng.gen_bool(0.4) {
                let payload = vec![rng.gen::<u8>(); 8];
                oram.write(BlockId(id), &payload).unwrap();
                reference.insert(id, payload);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                assert_eq!(got, reference.get(&id).cloned().unwrap_or(vec![0u8; 8]));
            }
        }
        assert!(oram.stats().shuffles >= 1);
    }

    fn build_piped(capacity: u64, memory_slots: u64, io_batch: u64, depth: u64) -> HOram {
        let config = HOramConfig::new(capacity, 8, memory_slots)
            .with_seed(17)
            .with_io_batch(io_batch)
            .with_pipeline_depth(depth);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([9; 32]),
        )
        .unwrap()
    }

    fn mixed_workload(seed: u64, count: usize, capacity: u64) -> Vec<Request> {
        let mut rng = DeterministicRng::from_u64_seed(seed);
        (0..count)
            .map(|_| {
                let id = rng.gen_range(0..capacity);
                if rng.gen_bool(0.3) {
                    Request::write(id, vec![rng.gen::<u8>(); 8])
                } else {
                    Request::read(id)
                }
            })
            .collect()
    }

    #[test]
    fn pipelined_burst_is_byte_identical_to_depth_one() {
        // The tentpole invariant at unit scale: responses, the storage
        // trace, every statistic, and the simulated clock agree between a
        // depth-1 (sequential) and a depth-4 (pipelined) instance on a
        // period-crossing workload. The full matrix lives in
        // tests/pipeline.rs; this pins the core engine alone.
        let requests = mixed_workload(41, 220, 256);

        let mut baseline = build_piped(256, 64, 8, 1);
        let base_responses = baseline.run_batch(&requests).unwrap();
        let storage_id = baseline.storage.device().id();

        let mut piped = build_piped(256, 64, 8, 4);
        let piped_responses = piped.run_batch(&requests).unwrap();

        assert_eq!(base_responses, piped_responses);
        assert_eq!(
            baseline.trace().address_sequence(storage_id),
            piped.trace().address_sequence(storage_id),
            "storage access patterns diverged"
        );
        assert_eq!(baseline.stats(), piped.stats());
        assert_eq!(baseline.clock().now(), piped.clock().now());
        assert!(baseline.stats().shuffles >= 2, "setup: must cross periods");
        assert!(
            piped.pipeline_stats().planned_ahead_windows > 0,
            "pipeline never engaged: {:?}",
            piped.pipeline_stats()
        );
    }

    #[test]
    fn pipeline_depth_one_plans_no_lookahead() {
        let requests = mixed_workload(41, 100, 256);
        let mut oram = build_piped(256, 64, 8, 1);
        oram.run_batch(&requests).unwrap();
        assert_eq!(oram.pipeline_stats().planned_ahead_windows, 0);
        assert_eq!(oram.pipeline_stats().overlapped_commits, 0);
    }

    #[test]
    fn lookahead_stalls_at_period_boundaries() {
        // Period = 8 loads, windows of 4, depth 4: lookahead regularly
        // meets an exhausted period budget and must stall rather than
        // plan across the epoch rebuild.
        let mut oram = build_piped(256, 16, 4, 4);
        let requests: Vec<Request> = (0..60u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        assert!(oram.stats().shuffles >= 2);
        assert!(
            oram.pipeline_stats().period_stalls > 0,
            "no period stall recorded: {:?}",
            oram.pipeline_stats()
        );
    }

    #[test]
    fn memory_rng_stream_positions_are_pinned_across_depths() {
        // The pre-draw audit's regression test: the memory layer's RNG
        // stream position after a fixed workload must not depend on the
        // pipeline depth (plan order is depth-invariant, and every leaf
        // is drawn at plan time — one per hit, dummy, and arrival).
        let requests = mixed_workload(23, 150, 256);
        let mut positions = Vec::new();
        for depth in [1, 2, 4] {
            let mut oram = build_piped(256, 64, 8, depth);
            oram.run_batch(&requests).unwrap();
            positions.push(oram.memory.rng_stream_pos());
        }
        assert_eq!(positions[0], positions[1], "depth 2 moved the rng stream");
        assert_eq!(positions[0], positions[2], "depth 4 moved the rng stream");
    }

    #[test]
    fn stash_stays_bounded() {
        let mut oram = build(512, 64);
        let mut rng = DeterministicRng::from_u64_seed(12);
        let requests: Vec<Request> = (0..400)
            .map(|_| Request::read(rng.gen_range(0..512u64)))
            .collect();
        oram.run_batch(&requests).unwrap();
        assert!(
            oram.memory_stash_peak() < 200,
            "stash peak {}",
            oram.memory_stash_peak()
        );
    }

    #[test]
    fn accounting_reset_zeroes_reports() {
        let mut oram = build(256, 64);
        oram.read(BlockId(1)).unwrap();
        oram.reset_accounting();
        assert_eq!(oram.stats(), HOramStats::default());
        assert_eq!(oram.clock().now().as_nanos(), 0);
        assert!(oram.trace().is_empty());
    }

    #[test]
    fn payload_validation() {
        let mut oram = build(256, 64);
        assert!(matches!(
            oram.write(BlockId(0), &[1, 2]),
            Err(OramError::PayloadSize {
                expected: 8,
                got: 2
            })
        ));
    }

    #[test]
    fn drain_of_collected_or_unknown_ticket_is_an_error() {
        let mut oram = build(256, 64);
        let ticket = oram.enqueue(Request::read(1u64)).unwrap();
        while !oram.queue().is_drained() {
            oram.run_cycle().unwrap();
        }
        assert_eq!(oram.take_response(ticket), Some(vec![0u8; 8]));
        // Already collected incrementally: a later drain must not panic.
        assert!(matches!(
            oram.drain(&[ticket]),
            Err(OramError::UnknownTicket { ticket: t }) if t == ticket
        ));
        assert!(matches!(
            oram.drain(&[999]),
            Err(OramError::UnknownTicket { ticket: 999 })
        ));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Arbitrary batched read/write interleavings agree with a
            /// plain map, across period boundaries.
            #[test]
            fn batches_match_reference(
                ops in proptest::collection::vec((0u64..64, proptest::option::of(any::<u8>())), 1..80),
                splits in proptest::collection::vec(1usize..20, 0..4),
            ) {
                let mut oram = build(64, 16); // period = 8 loads: shuffles happen
                let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();

                // Split ops into batches at the given points.
                let mut batches: Vec<Vec<(u64, Option<u8>)>> = Vec::new();
                let mut rest = ops.as_slice();
                for &split in &splits {
                    let take = split.min(rest.len());
                    let (head, tail) = rest.split_at(take);
                    if !head.is_empty() {
                        batches.push(head.to_vec());
                    }
                    rest = tail;
                }
                if !rest.is_empty() {
                    batches.push(rest.to_vec());
                }

                for batch in batches {
                    let requests: Vec<Request> = batch
                        .iter()
                        .map(|(id, write)| match write {
                            Some(byte) => Request::write(*id, vec![*byte; 8]),
                            None => Request::read(*id),
                        })
                        .collect();
                    let responses = oram.run_batch(&requests).expect("batch");
                    for ((id, write), response) in batch.iter().zip(responses) {
                        let expected = match write {
                            Some(byte) => reference
                                .insert(*id, vec![*byte; 8])
                                .unwrap_or(vec![0u8; 8]),
                            None => {
                                reference.get(id).cloned().unwrap_or(vec![0u8; 8])
                            }
                        };
                        prop_assert_eq!(response, expected, "block {}", id);
                    }
                }
            }

            /// The cycle invariant holds for any workload shape: exactly
            /// one I/O load per cycle.
            #[test]
            fn one_io_per_cycle(ids in proptest::collection::vec(0u64..128, 1..60)) {
                let mut oram = build(128, 32);
                let requests: Vec<Request> = ids.into_iter().map(Request::read).collect();
                oram.run_batch(&requests).expect("batch");
                let stats = oram.stats();
                prop_assert_eq!(stats.total_io_loads(), stats.cycles);
            }

            /// Memory-resident count never exceeds the tree's real-block
            /// budget within a period (the n/2 invariant behind the
            /// period length).
            #[test]
            fn resident_blocks_bounded(ids in proptest::collection::vec(0u64..256, 1..50)) {
                let mut oram = build(256, 64);
                for id in ids {
                    oram.read(BlockId(id)).expect("read");
                    let resident = oram.storage.posmap().in_memory_count();
                    prop_assert!(
                        resident <= oram.config.period_io_limit() + oram.config().memory_slots,
                        "resident {} beyond budget",
                        resident
                    );
                }
            }
        }
    }
}

//! H-ORAM: a cacheable ORAM interface for efficient I/O accesses.
//!
//! This crate is the reproduction's implementation of the paper's primary
//! contribution (Liu, "H-ORAM", DAC 2019): a **hybrid ORAM** that splits a
//! large protected dataset between an in-memory Path ORAM tree acting as a
//! *cache* and a flat, permuted storage layer, with a **secure scheduler**
//! that overlaps `c` in-memory accesses with each (single-block) I/O load
//! and a **lightweight group+partition shuffle** replacing the monolithic
//! oblivious reshuffle of square-root ORAM.
//!
//! Module map (one module per architectural element of the paper's §4):
//!
//! | Paper element | Module |
//! |---|---|
//! | configuration & stage schedule (§4.2) | [`config`] |
//! | permutation list (§4.1) | [`permutation_list`] |
//! | position map (flat + recursive, beyond the paper) | [`posmap`] |
//! | request admission queue + tickets | [`queue`] |
//! | ROB table (§4.1) | [`rob`] |
//! | secure scheduler with prefetch (§4.2, Fig. 4-2) | [`scheduler`] |
//! | storage layer + group/partition shuffle (§4.1.3, §4.3.2) | [`storage_layer`] |
//! | oblivious tree evict (§4.3.1) | [`evict`] |
//! | the assembled system (§4.1, Fig. 4-1) | [`horam`] |
//! | partial shuffle (§5.3.1) | [`storage_layer`] + [`config`] |
//! | multi-user sharing (§5.3.2) | [`multi_user`] |
//! | multi-user access control (§5.3.2) | [`access_control`] |
//! | run statistics (Tables 5-3/5-4 rows) | [`stats`] |
//! | sharded scale-out (beyond the paper) | [`shard`] |
//! | serving-layer engine contract | [`engine`] |
//! | wall-clock worker pool (beyond the paper) | [`pool`] |
//! | pipelined cycle scheduling (beyond the paper) | [`pipeline`] |
//!
//! The memory layer reuses [`oram_protocols::path_oram::PathOram`]; see
//! that crate for the baselines the evaluation compares against.

#![deny(missing_docs)]

pub mod access_control;
pub mod config;
pub mod engine;
pub mod error;
pub mod evict;
pub mod horam;
pub mod multi_user;
pub mod permutation_list;
pub mod persist;
pub mod pipeline;
pub mod pool;
pub mod posmap;
pub mod queue;
pub mod rob;
pub mod scheduler;
pub mod shard;
pub mod stats;
pub mod storage_layer;

pub use access_control::{AccessControl, AccessDenied, Permission};
pub use config::{HOramConfig, PosmapMode, RecursivePosmapConfig, StagePlan};
pub use engine::OramEngine;
pub use error::HOramError;
pub use evict::{oblivious_tree_evict, EvictOutcome};
pub use horam::HOram;
pub use multi_user::{run_multi_user, MultiUserReport, UserId};
pub use permutation_list::{Location, PermutationList};
pub use pipeline::{HazardTracker, PipelineConfig, PipelineStats};
pub use pool::WorkerPool;
pub use posmap::{
    build_posmap, FlatPositionMap, PositionMap, PosmapLevelView, PosmapStats, RecursivePositionMap,
};
pub use queue::RequestQueue;
pub use rob::{RobEntry, RobTable};
pub use scheduler::{plan_cycle, CyclePlan};
pub use shard::{ShardMapper, ShardSlot, ShardedConfig, ShardedOram};
pub use stats::HOramStats;
pub use storage_layer::{
    BatchLoad, BatchOpener, IoLoad, LoadPlan, PlannedIo, RawBatch, ShuffleReport, StorageLayer,
};

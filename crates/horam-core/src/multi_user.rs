//! Multi-user H-ORAM (paper §5.3.2).
//!
//! The flat storage layer "inherently supports multiple users sharing one
//! ORAM": the scheduler already groups requests, so requests from
//! different users can be interleaved into the same cycles without
//! changing the observable pattern. This module provides the session
//! layer: per-user queues merged round-robin into the shared ROB, with
//! responses demultiplexed back per user and per-user latency accounting.
//!
//! Access-control between users (the paper notes it "can be added to our
//! scheduler") is modelled by a per-user id check hook.

use crate::horam::HOram;
use oram_protocols::error::OramError;
use oram_protocols::types::Request;
use oram_storage::clock::SimDuration;
use std::fmt;

/// A user of a shared H-ORAM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// Result of one multi-user run.
#[derive(Debug)]
pub struct MultiUserReport {
    /// Responses per user, in each user's submission order.
    pub responses: Vec<Vec<Vec<u8>>>,
    /// Total simulated wall-clock time of the run.
    pub wall_time: SimDuration,
    /// Aggregate requests serviced.
    pub requests: u64,
    /// Aggregate throughput in requests per simulated second.
    pub requests_per_sec: f64,
}

/// Runs per-user request queues against one shared H-ORAM.
///
/// Queues are merged round-robin (user 0's first request, user 1's first,
/// …), which is the grouping-friendly arrival order the paper's
/// discussion assumes; the scheduler then packs cycles exactly as in the
/// single-user case.
///
/// # Errors
///
/// Storage/crypto/protocol errors propagate.
pub fn run_multi_user(
    oram: &mut HOram,
    queues: Vec<(UserId, Vec<Request>)>,
) -> Result<MultiUserReport, OramError> {
    let start = oram.clock().now();

    // Round-robin merge into the shared admission queue, collecting each
    // user's tickets; the scheduler packs cycles exactly as in the
    // single-user case, and tickets demultiplex the responses afterwards.
    let mut tickets: Vec<Vec<u64>> = queues
        .iter()
        .map(|(_, q)| Vec::with_capacity(q.len()))
        .collect();
    let mut requests = 0u64;
    let max_len = queues.iter().map(|(_, q)| q.len()).max().unwrap_or(0);
    for round in 0..max_len {
        for (user_idx, (_, queue)) in queues.iter().enumerate() {
            if let Some(request) = queue.get(round) {
                tickets[user_idx].push(oram.enqueue(request.clone())?);
                requests += 1;
            }
        }
    }

    let mut responses: Vec<Vec<Vec<u8>>> = Vec::with_capacity(queues.len());
    for user_tickets in &tickets {
        responses.push(oram.drain(user_tickets)?);
    }

    let wall_time = oram.clock().now().duration_since(start);
    let secs = wall_time.as_secs_f64();
    let requests_per_sec = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    Ok(MultiUserReport {
        responses,
        wall_time,
        requests,
        requests_per_sec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HOramConfig;
    use oram_crypto::keys::MasterKey;
    use oram_storage::hierarchy::MemoryHierarchy;

    fn build() -> HOram {
        let config = HOramConfig::new(256, 8, 64).with_seed(2);
        HOram::new(
            config,
            MemoryHierarchy::dac2019(),
            MasterKey::from_bytes([3; 32]),
        )
        .unwrap()
    }

    #[test]
    fn users_get_their_own_answers() {
        let mut oram = build();
        // Seed data via one user.
        let setup: Vec<Request> = (0..8u64)
            .map(|i| Request::write(i, vec![i as u8; 8]))
            .collect();
        run_multi_user(&mut oram, vec![(UserId(0), setup)]).unwrap();

        // Two users read disjoint halves concurrently.
        let alice: Vec<Request> = (0..4u64).map(Request::read).collect();
        let bob: Vec<Request> = (4..8u64).map(Request::read).collect();
        let report = run_multi_user(&mut oram, vec![(UserId(0), alice), (UserId(1), bob)]).unwrap();

        for (i, data) in report.responses[0].iter().enumerate() {
            assert_eq!(data, &vec![i as u8; 8], "alice block {i}");
        }
        for (i, data) in report.responses[1].iter().enumerate() {
            assert_eq!(data, &vec![(i + 4) as u8; 8], "bob block {}", i + 4);
        }
    }

    #[test]
    fn shared_blocks_are_consistent_across_users() {
        let mut oram = build();
        let writes: Vec<Request> = vec![Request::write(9u64, vec![7; 8])];
        let reads: Vec<Request> = vec![Request::read(9u64)];
        let report =
            run_multi_user(&mut oram, vec![(UserId(0), writes), (UserId(1), reads)]).unwrap();
        // Round-robin merge puts user 0's write first.
        assert_eq!(report.responses[1][0], vec![7; 8]);
    }

    #[test]
    fn throughput_is_reported() {
        let mut oram = build();
        let queues: Vec<(UserId, Vec<Request>)> = (0..4)
            .map(|u| {
                let requests = (0..10u64)
                    .map(|i| Request::read(i * 4 + u as u64))
                    .collect();
                (UserId(u), requests)
            })
            .collect();
        let report = run_multi_user(&mut oram, queues).unwrap();
        assert_eq!(report.requests, 40);
        assert!(report.wall_time > SimDuration::ZERO);
        assert!(report.requests_per_sec > 0.0);
    }

    #[test]
    fn empty_queues_are_fine() {
        let mut oram = build();
        let report = run_multi_user(&mut oram, vec![(UserId(0), Vec::new())]).unwrap();
        assert_eq!(report.requests, 0);
        assert!(report.responses[0].is_empty());
    }
}

//! The permutation list: H-ORAM's storage-side position map.
//!
//! Paper §4.1: "the permutation list records: 1) a Boolean bit representing
//! whether a block is loaded into memory already, 2) its file address if in
//! storage (or the position map id if in memory)." This module implements
//! exactly that table: per logical block, either the storage slot holding
//! its current sealed copy, or a marker that the block is resident in the
//! in-memory Path ORAM (whose own position map takes over from there).
//!
//! The list lives in the trusted control layer; lookups generate no
//! observable accesses.

use oram_protocols::types::BlockId;

/// Where a logical block currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// In the storage layer, at the given physical slot.
    Storage {
        /// Physical slot address on the storage device.
        slot: u64,
    },
    /// Resident in the in-memory Path ORAM (tree or its stash).
    Memory,
}

/// The per-block location table.
#[derive(Debug, Clone)]
pub struct PermutationList {
    locations: Vec<Location>,
    in_memory: u64,
}

impl PermutationList {
    /// Creates a list with every block provisionally at storage slot 0;
    /// callers install the real layout via [`set_storage_slot`]
    /// (storage-layer construction does this for every block).
    ///
    /// [`set_storage_slot`]: Self::set_storage_slot
    pub fn new(capacity: u64) -> Self {
        Self {
            locations: vec![Location::Storage { slot: 0 }; capacity as usize],
            in_memory: 0,
        }
    }

    /// Number of blocks tracked.
    pub fn capacity(&self) -> u64 {
        self.locations.len() as u64
    }

    /// Number of blocks currently marked in-memory.
    pub fn in_memory_count(&self) -> u64 {
        self.in_memory
    }

    /// The current location of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (callers validate first).
    pub fn location(&self, id: BlockId) -> Location {
        self.locations[id.0 as usize]
    }

    /// Whether `id` is in memory — the scheduler's hit test.
    pub fn is_hit(&self, id: BlockId) -> bool {
        matches!(self.locations[id.0 as usize], Location::Memory)
    }

    /// Records that `id` now lives at storage `slot`.
    pub fn set_storage_slot(&mut self, id: BlockId, slot: u64) {
        if matches!(self.locations[id.0 as usize], Location::Memory) {
            self.in_memory -= 1;
        }
        self.locations[id.0 as usize] = Location::Storage { slot };
    }

    /// Records that `id` migrated into the memory layer.
    pub fn set_in_memory(&mut self, id: BlockId) {
        if !matches!(self.locations[id.0 as usize], Location::Memory) {
            self.in_memory += 1;
        }
        self.locations[id.0 as usize] = Location::Memory;
    }

    /// In-enclave footprint in bytes (control-layer budget reporting).
    pub fn memory_bytes(&self) -> usize {
        self.locations.len() * std::mem::size_of::<Location>()
    }

    /// Serializes the table (snapshot support): one entry per block,
    /// `Memory` encoded as an absent slot.
    pub fn save_state(&self, w: &mut oram_crypto::persist::StateWriter) {
        w.put_usize(self.locations.len());
        for location in &self.locations {
            match location {
                Location::Memory => w.put_opt_u64(None),
                Location::Storage { slot } => w.put_opt_u64(Some(*slot)),
            }
        }
    }

    /// Restores a table serialized by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`oram_crypto::persist::PersistError`] on length mismatch or
    /// malformed entries.
    pub fn load_state(
        &mut self,
        r: &mut oram_crypto::persist::StateReader<'_>,
    ) -> Result<(), oram_crypto::persist::PersistError> {
        let len = r.get_usize()?;
        if len != self.locations.len() {
            return Err(oram_crypto::persist::PersistError::Malformed(format!(
                "permutation list of {len} entries for capacity {}",
                self.locations.len()
            )));
        }
        let mut locations = Vec::with_capacity(len);
        let mut in_memory = 0;
        for _ in 0..len {
            locations.push(match r.get_opt_u64()? {
                None => {
                    in_memory += 1;
                    Location::Memory
                }
                Some(slot) => Location::Storage { slot },
            });
        }
        self.locations = locations;
        self.in_memory = in_memory;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_migrations_and_counts() {
        let mut list = PermutationList::new(4);
        assert_eq!(list.in_memory_count(), 0);
        list.set_storage_slot(BlockId(0), 42);
        assert_eq!(list.location(BlockId(0)), Location::Storage { slot: 42 });
        assert!(!list.is_hit(BlockId(0)));

        list.set_in_memory(BlockId(0));
        assert!(list.is_hit(BlockId(0)));
        assert_eq!(list.in_memory_count(), 1);

        // Idempotent in-memory marking.
        list.set_in_memory(BlockId(0));
        assert_eq!(list.in_memory_count(), 1);

        // Back to storage after a shuffle.
        list.set_storage_slot(BlockId(0), 7);
        assert_eq!(list.in_memory_count(), 0);
        assert_eq!(list.location(BlockId(0)), Location::Storage { slot: 7 });
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        PermutationList::new(2).location(BlockId(2));
    }

    #[test]
    fn footprint_reported() {
        assert!(PermutationList::new(1000).memory_bytes() >= 1000);
    }
}

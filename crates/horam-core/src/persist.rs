//! Durable snapshots of the trusted client state.
//!
//! H-ORAM's trust boundary puts everything *except* the storage device
//! inside the client: stash, position map, permutation list, key epochs,
//! scheduling counters, clocks, statistics. A **snapshot** serializes all
//! of it into one sealed envelope (`oram-crypto::persist`): ChaCha20
//! encryption plus a SipHash tag under keys derived from the instance's
//! master key, so a snapshot at rest leaks nothing beyond its size (and
//! whether two snapshots captured identical state — see
//! [`envelope_seq`]), and any truncation or tampering is rejected at
//! restore time.
//!
//! Together with a durable storage backend
//! (`oram-storage::file::FileStore`), snapshots give the reproduction its
//! recovery invariant:
//!
//! 1. [`HOram::snapshot`](crate::horam::HOram::snapshot) syncs the device
//!    file (its commit point) and seals the trusted state;
//! 2. the engine may then be killed at **any** later cycle boundary —
//!    including mid-period, with the write-back buffer half flushed;
//! 3. reopening the file rolls its undo journal back to the commit point,
//!    [`HOram::restore`](crate::horam::HOram::restore) rebuilds the
//!    client state, and replaying the post-snapshot requests produces
//!    byte-identical responses, traces, and statistics to a run that was
//!    never interrupted (`tests/persistence.rs` proves it by property).
//!
//! This module holds the shared plumbing: envelope kinds, the SIV-style
//! nonce derivation, and the [`HOramConfig`] codec (a snapshot embeds
//! its configuration so restore can validate geometry).

use crate::config::{HOramConfig, PosmapMode, RecursivePosmapConfig, StagePlan};
use crate::pipeline::PipelineConfig;
use oram_crypto::persist::{PersistError, StateReader, StateWriter};
use oram_shuffle::ShuffleAlgorithm;
use oram_storage::cache::{CacheConfig, CachePolicy, MidTierConfig};

/// Envelope kind of a single-instance snapshot.
pub const KIND_SINGLE: u32 = 1;
/// Envelope kind of a sharded manifest (N embedded shard snapshots).
pub const KIND_SHARDED: u32 = 2;

/// Key-derivation domain for snapshot sealing.
pub const SNAPSHOT_DOMAIN: &str = "horam/snapshot";

/// The envelope sequence for a snapshot body: a keyed SipHash PRF of the
/// serialized plaintext (SIV-style deterministic nonce derivation). A
/// monotone counter would repeat with *different* plaintexts whenever
/// execution forks at a restore point — the original and a restored
/// replica would both seal their next snapshot under the same
/// `(key, nonce)` pair, and XORing those ciphertexts cancels the
/// keystream. Deriving the nonce from the content instead means two
/// snapshots collide only when their entire trusted state is identical,
/// in which case the ciphertexts are identical too: the only thing a
/// snapshot at rest can leak is its size and whether two snapshots
/// captured the same state.
pub fn envelope_seq(keys: &oram_crypto::keys::SubKeys, body: &[u8]) -> u64 {
    let mut mac = oram_crypto::siphash::SipHash24::new(keys.prf());
    mac.write_u64(body.len() as u64);
    mac.write(body);
    mac.finish()
}

fn encode_shuffle(algo: ShuffleAlgorithm) -> u8 {
    match algo {
        ShuffleAlgorithm::FisherYates => 0,
        ShuffleAlgorithm::Cache => 1,
        ShuffleAlgorithm::Melbourne => 2,
        ShuffleAlgorithm::Bitonic => 3,
        // `ShuffleAlgorithm` is non-exhaustive; new variants must add a
        // code here before they can be snapshotted.
        other => unreachable!("unencodable shuffle algorithm {other:?}"),
    }
}

fn decode_shuffle(byte: u8) -> Result<ShuffleAlgorithm, PersistError> {
    Ok(match byte {
        0 => ShuffleAlgorithm::FisherYates,
        1 => ShuffleAlgorithm::Cache,
        2 => ShuffleAlgorithm::Melbourne,
        3 => ShuffleAlgorithm::Bitonic,
        other => {
            return Err(PersistError::Malformed(format!(
                "unknown shuffle algorithm {other}"
            )))
        }
    })
}

/// Serializes a full [`HOramConfig`] (embedded in every snapshot so
/// restore can rebuild derived structures and validate geometry).
pub fn save_config(config: &HOramConfig, w: &mut StateWriter) {
    w.put_u64(config.capacity);
    w.put_usize(config.payload_len);
    w.put_u64(config.memory_slots);
    w.put_u32(config.z);
    w.put_usize(config.stages.len());
    for stage in &config.stages {
        w.put_u32(stage.c);
        w.put_f64(stage.fraction);
    }
    w.put_usize(config.prefetch_distance);
    w.put_u8(encode_shuffle(config.evict_shuffle));
    w.put_u8(encode_shuffle(config.partition_shuffle));
    match config.partial_shuffle_ratio {
        None => w.put_bool(false),
        Some(r) => {
            w.put_bool(true);
            w.put_f64(r);
        }
    }
    w.put_u64(config.io_batch);
    w.put_bool(config.zero_copy_io);
    w.put_usize(config.worker_threads);
    w.put_f64(config.partition_headroom);
    w.put_opt_u64(config.pipeline.depth);
    save_cache_config(config.cache.as_ref(), w);
    save_posmap_mode(&config.posmap, w);
    w.put_u64(config.seed);
}

fn save_posmap_mode(posmap: &PosmapMode, w: &mut StateWriter) {
    let PosmapMode::Recursive(rcfg) = posmap else {
        w.put_bool(false);
        return;
    };
    w.put_bool(true);
    w.put_opt_u64(rcfg.fanout);
    w.put_opt_u64(rcfg.levels.map(u64::from));
    w.put_u64(rcfg.root_threshold);
    w.put_usize(rcfg.cache_pages);
    match &rcfg.backing_dir {
        None => w.put_bool(false),
        Some(dir) => {
            w.put_bool(true);
            w.put_bytes(dir.as_bytes());
        }
    }
}

fn load_posmap_mode(r: &mut StateReader<'_>) -> Result<PosmapMode, PersistError> {
    if !r.get_bool()? {
        return Ok(PosmapMode::Flat);
    }
    let fanout = r.get_opt_u64()?;
    let levels = match r.get_opt_u64()? {
        None => None,
        Some(levels) => Some(
            u32::try_from(levels)
                .map_err(|_| PersistError::Malformed(format!("posmap levels {levels}")))?,
        ),
    };
    let root_threshold = r.get_u64()?;
    let cache_pages = r.get_usize()?;
    let backing_dir = if r.get_bool()? {
        let dir = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|_| PersistError::Malformed("posmap backing dir not UTF-8".into()))?;
        Some(dir)
    } else {
        None
    };
    Ok(PosmapMode::Recursive(RecursivePosmapConfig {
        fanout,
        levels,
        root_threshold,
        cache_pages,
        backing_dir,
    }))
}

fn save_cache_config(cache: Option<&CacheConfig>, w: &mut StateWriter) {
    let Some(cache) = cache else {
        w.put_bool(false);
        return;
    };
    w.put_bool(true);
    w.put_u64(cache.capacity_blocks);
    w.put_u8(match cache.policy {
        CachePolicy::Lru => 0,
        CachePolicy::Clock => 1,
    });
    w.put_u64(cache.hit_nanos);
    w.put_f64(cache.writeback_sync_fraction);
    match &cache.mid {
        None => w.put_bool(false),
        Some(mid) => {
            w.put_bool(true);
            w.put_u64(mid.capacity_blocks);
            match &mid.file {
                None => w.put_bool(false),
                Some(path) => {
                    w.put_bool(true);
                    w.put_bytes(path.as_bytes());
                }
            }
            w.put_usize(mid.file_slot_bytes);
        }
    }
    w.put_bool(cache.leaky_hits);
}

fn load_cache_config(r: &mut StateReader<'_>) -> Result<Option<CacheConfig>, PersistError> {
    if !r.get_bool()? {
        return Ok(None);
    }
    let capacity_blocks = r.get_u64()?;
    let policy = match r.get_u8()? {
        0 => CachePolicy::Lru,
        1 => CachePolicy::Clock,
        other => {
            return Err(PersistError::Malformed(format!("cache policy tag {other}")));
        }
    };
    let hit_nanos = r.get_u64()?;
    let writeback_sync_fraction = r.get_f64()?;
    let mid = if r.get_bool()? {
        let capacity_blocks = r.get_u64()?;
        let file = if r.get_bool()? {
            let path = String::from_utf8(r.get_bytes()?.to_vec())
                .map_err(|_| PersistError::Malformed("mid-tier path not UTF-8".into()))?;
            Some(path)
        } else {
            None
        };
        let file_slot_bytes = r.get_usize()?;
        Some(MidTierConfig {
            capacity_blocks,
            file,
            file_slot_bytes,
        })
    } else {
        None
    };
    let leaky_hits = r.get_bool()?;
    Ok(Some(CacheConfig {
        capacity_blocks,
        policy,
        hit_nanos,
        writeback_sync_fraction,
        mid,
        leaky_hits,
    }))
}

/// Reads a configuration serialized by [`save_config`].
///
/// # Errors
///
/// [`PersistError`] on truncation or malformed fields.
pub fn load_config(r: &mut StateReader<'_>) -> Result<HOramConfig, PersistError> {
    let capacity = r.get_u64()?;
    let payload_len = r.get_usize()?;
    let memory_slots = r.get_u64()?;
    let z = r.get_u32()?;
    let stage_count = r.get_usize()?;
    if stage_count == 0 || stage_count > 64 {
        return Err(PersistError::Malformed(format!(
            "{stage_count} scheduler stages"
        )));
    }
    let mut stages = Vec::with_capacity(stage_count);
    for _ in 0..stage_count {
        stages.push(StagePlan {
            c: r.get_u32()?,
            fraction: r.get_f64()?,
        });
    }
    let prefetch_distance = r.get_usize()?;
    let evict_shuffle = decode_shuffle(r.get_u8()?)?;
    let partition_shuffle = decode_shuffle(r.get_u8()?)?;
    let partial_shuffle_ratio = if r.get_bool()? {
        Some(r.get_f64()?)
    } else {
        None
    };
    let io_batch = r.get_u64()?;
    let zero_copy_io = r.get_bool()?;
    let worker_threads = r.get_usize()?;
    let partition_headroom = r.get_f64()?;
    let pipeline = PipelineConfig {
        depth: r.get_opt_u64()?,
    };
    let cache = load_cache_config(r)?;
    let posmap = load_posmap_mode(r)?;
    let seed = r.get_u64()?;
    Ok(HOramConfig {
        capacity,
        payload_len,
        memory_slots,
        z,
        stages,
        prefetch_distance,
        evict_shuffle,
        partition_shuffle,
        partial_shuffle_ratio,
        io_batch,
        zero_copy_io,
        worker_threads,
        partition_headroom,
        cache,
        pipeline,
        posmap,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips_exactly() {
        let config = HOramConfig::new(4096, 16, 1024)
            .with_seed(99)
            .with_io_batch(8)
            .with_partial_shuffle(0.25)
            .with_worker_threads(3)
            .with_zero_copy_io(false)
            .with_pipeline_depth(4);
        let mut w = StateWriter::new();
        save_config(&config, &mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = load_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn cached_config_roundtrips_exactly() {
        let mut cache = CacheConfig::clock(128).with_mid_tier(512);
        cache.mid.as_mut().unwrap().file = Some("/tmp/mid.dat".into());
        cache.mid.as_mut().unwrap().file_slot_bytes = 96;
        let config = HOramConfig::new(4096, 16, 1024).with_cache(cache);
        let mut w = StateWriter::new();
        save_config(&config, &mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = load_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn recursive_posmap_config_roundtrips_exactly() {
        let config = HOramConfig::new(1 << 14, 32, 512).with_posmap(PosmapMode::Recursive(
            RecursivePosmapConfig {
                fanout: Some(16),
                levels: Some(2),
                root_threshold: 32,
                cache_pages: 4,
                backing_dir: Some("/tmp/posmap".into()),
            },
        ));
        let mut w = StateWriter::new();
        save_config(&config, &mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = load_config(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn truncated_config_errors() {
        let config = HOramConfig::new(64, 8, 16);
        let mut w = StateWriter::new();
        save_config(&config, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..cut]);
            assert!(
                load_config(&mut r).and_then(|_| r.finish()).is_err(),
                "cut at {cut} accepted"
            );
        }
    }
}

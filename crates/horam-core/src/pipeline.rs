//! The pipelined cycle scheduler's configuration, hazard tracking, and
//! host-side accounting.
//!
//! PR 2's plan/commit split already separates each scheduling cycle into a
//! **control sweep** (ROB scan, position-map lookups, period markers, stash
//! reservation — trusted-side, no observable accesses) and a **device +
//! crypto phase** (the window's scatter read plus verify/decrypt of the
//! returned ciphertexts). The pipelined driver
//! ([`HOram::run_cycle_burst`](crate::horam::HOram::run_cycle_burst)) overlaps
//! them: while window `k`'s decrypt runs on the worker pool
//! ([`WorkerPool`](crate::pool::WorkerPool)), the scheduling thread plans
//! windows `k+1 … k+depth−1` ahead. The same mechanism overlaps the
//! shuffle epoch's position-map rebuild with the fresh-tree write.
//!
//! **Determinism invariant (test-enforced, `tests/pipeline.rs`):**
//! responses, bus traces, statistics, and the simulated clock are
//! byte-identical at every pipeline depth; depth 1 *is* the unpipelined
//! scheduler. Three properties make the overlap invisible:
//!
//! 1. **Plan closure** — planning mutates only control state (ROB, position
//!    map, touched markers, PRP cursor, the memory layer's RNG stream),
//!    and the overlapped decrypt reads none of it: the decrypt works on an
//!    owned [`BatchOpener`](crate::storage_layer::BatchOpener) plus the
//!    raw ciphertexts, already charged and traced by the commit.
//! 2. **Canonical device order** — every device operation, trace record,
//!    and clock advance stays on the scheduling thread in plan order;
//!    workers only ever compute (decrypt, verify, rebuild position pages
//!    on their own level traces).
//! 3. **Pre-drawn randomness** — each cycle's memory-layer leaves are
//!    drawn at *plan* time in the execution order (hits, then dummy pads,
//!    then the I/O arrival), so overlap depth cannot reorder the
//!    deterministic RNG stream (regression-pinned in `tests/pipeline.rs`).
//!
//! Hazards are *structural*, never data-dependent: the once-per-period
//! slot markers make in-flight windows disjoint by construction (the
//! [`HazardTracker`] enforces it), and planning stalls deterministically at
//! the period boundary — the upcoming epoch rebuild owns every partition,
//! so lookahead resumes only after the shuffle retires. Stalls depend only
//! on the period budget, which the adversary already knows. See
//! `docs/PIPELINE.md` for the full argument and a worked timeline.

use oram_protocols::error::OramError;
use std::collections::{HashSet, VecDeque};

/// Pipelining knobs, surfaced as
/// [`HOramConfig::pipeline`](crate::config::HOramConfig::pipeline) and
/// through `ServiceConfig`/`MachineConfig` (see the [module docs](self)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineConfig {
    /// Maximum scheduling windows in flight, counting the one whose
    /// device+crypto phase is executing: `1` is the strictly sequential
    /// scheduler, depth `k` plans up to `k − 1` windows ahead while a
    /// commit's decrypt runs on the worker pool. Observables are
    /// byte-identical at every depth — the knob trades host CPU (one
    /// worker decrypting concurrently) for wall-clock time only.
    ///
    /// `None` (the default) adopts the machine description's
    /// [`pipeline_depth`](oram_storage::calibration::MachineConfig::pipeline_depth)
    /// hint, falling back to 1 — mirroring how the machine's cache choice
    /// is adopted unless the engine config overrides it.
    pub depth: Option<u64>,
}

impl PipelineConfig {
    /// A configuration pinning the depth explicitly (ignoring any machine
    /// hint).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        Self { depth: Some(depth) }
    }

    /// The depth to run at, resolving the machine hint: an explicit
    /// [`depth`](Self::depth) wins, then the machine's hint, then 1 (the
    /// sequential scheduler).
    pub fn effective_depth(&self, machine_hint: Option<u64>) -> u64 {
        self.depth.or(machine_hint).unwrap_or(1).max(1)
    }

    /// Validates the knobs (called from `HOramConfig::validate`).
    ///
    /// # Panics
    ///
    /// Panics on an explicit depth of zero.
    pub fn validate(&self) {
        if let Some(depth) = self.depth {
            assert!(depth >= 1, "pipeline depth must be at least 1");
        }
    }
}

/// Host-side pipeline counters: how often the overlap actually engaged.
///
/// Volatile (never part of snapshots) and **excluded from
/// [`HOramStats`](crate::stats::HOramStats)** on purpose: these counters
/// describe wall-clock execution strategy, which varies with depth and
/// thread count, while `HOramStats` is part of the byte-identical
/// observable surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Window commits whose decrypt ran on a worker while the scheduling
    /// thread planned ahead.
    pub overlapped_commits: u64,
    /// Windows planned while an earlier window's commit was still open.
    pub planned_ahead_windows: u64,
    /// Lookahead stalls at a period boundary (the epoch rebuild owns
    /// every partition, so planning deterministically waits for the
    /// shuffle).
    pub period_stalls: u64,
    /// Shuffle epochs whose position-map rebuild overlapped the fresh
    /// memory-tree write.
    pub shuffle_overlaps: u64,
    /// Peak windows in flight at once (committed or planned ahead).
    pub max_windows_in_flight: u64,
    /// Peak stash slots reserved by in-flight windows (each pending I/O
    /// arrival holds one until its insert executes).
    pub stash_reserved_peak: u64,
}

/// One in-flight window's claims: the storage slots its loads own until
/// the memory half retires, and the stash slots its arrivals will fill.
#[derive(Debug)]
struct WindowClaim {
    slots: Vec<u64>,
    inserts: u64,
}

/// Explicit hazard accounting for the pipelined driver.
///
/// The scheduler's once-per-period `touched` markers already guarantee
/// that two loads can never name the same slot within a period, so
/// windows in flight are disjoint *by construction*; the tracker turns
/// that construction into an enforced invariant — a planned window whose
/// slots collide with an in-flight window is refused with a typed error
/// before anything is committed — and carries the plan-time stash
/// reservations the control sweep makes for pending I/O arrivals.
#[derive(Debug, Default)]
pub struct HazardTracker {
    in_flight: VecDeque<WindowClaim>,
    owned: HashSet<u64>,
    stash_reserved: u64,
    stash_reserved_peak: u64,
}

impl HazardTracker {
    /// A tracker with nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly planned window: `slots` are the storage slots
    /// its loads will read, `inserts` the stash entries its arrivals will
    /// occupy until their memory halves run.
    ///
    /// # Errors
    ///
    /// [`OramError::Internal`] if any slot is already owned by an
    /// in-flight window — a violation of the once-per-period invariant
    /// (fail-stop: the control state is damaged).
    pub fn reserve_window(&mut self, slots: &[u64], inserts: u64) -> Result<(), OramError> {
        for &slot in slots {
            if !self.owned.insert(slot) {
                return Err(OramError::internal(format!(
                    "pipeline hazard: slot {slot} already owned by an in-flight window"
                )));
            }
        }
        self.stash_reserved += inserts;
        self.stash_reserved_peak = self.stash_reserved_peak.max(self.stash_reserved);
        self.in_flight.push_back(WindowClaim {
            slots: slots.to_vec(),
            inserts,
        });
        Ok(())
    }

    /// Retires the oldest in-flight window (its memory half has run):
    /// releases its slot claims and stash reservations.
    pub fn retire_window(&mut self) {
        if let Some(claim) = self.in_flight.pop_front() {
            for slot in claim.slots {
                self.owned.remove(&slot);
            }
            self.stash_reserved = self.stash_reserved.saturating_sub(claim.inserts);
        }
    }

    /// Windows currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Stash slots currently reserved by in-flight windows.
    pub fn stash_reserved(&self) -> u64 {
        self.stash_reserved
    }

    /// Peak stash reservation observed.
    pub fn stash_reserved_peak(&self) -> u64 {
        self.stash_reserved_peak
    }

    /// Whether nothing is in flight (shuffles and snapshots require it).
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Drops every claim (the shuffle epoch voided in-flight loads).
    pub fn clear(&mut self) {
        self.in_flight.clear();
        self.owned.clear();
        self.stash_reserved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_depth_resolution() {
        assert_eq!(PipelineConfig::default().effective_depth(None), 1);
        assert_eq!(PipelineConfig::default().effective_depth(Some(4)), 4);
        assert_eq!(PipelineConfig::with_depth(2).effective_depth(Some(4)), 2);
        // A degenerate zero hint falls back to the sequential scheduler.
        assert_eq!(PipelineConfig::default().effective_depth(Some(0)), 1);
    }

    #[test]
    #[should_panic(expected = "pipeline depth must be at least 1")]
    fn zero_depth_rejected() {
        let _ = PipelineConfig::with_depth(0);
    }

    #[test]
    fn tracker_enforces_slot_disjointness() {
        let mut tracker = HazardTracker::new();
        tracker.reserve_window(&[1, 2, 3], 2).unwrap();
        tracker.reserve_window(&[4, 5], 0).unwrap();
        assert_eq!(tracker.in_flight(), 2);
        assert_eq!(tracker.stash_reserved(), 2);
        let err = tracker.reserve_window(&[5, 6], 1).unwrap_err();
        assert!(matches!(err, OramError::Internal { .. }));
    }

    #[test]
    fn retire_releases_claims_in_fifo_order() {
        let mut tracker = HazardTracker::new();
        tracker.reserve_window(&[1, 2], 1).unwrap();
        tracker.reserve_window(&[3], 1).unwrap();
        assert_eq!(tracker.stash_reserved_peak(), 2);
        tracker.retire_window();
        assert_eq!(tracker.stash_reserved(), 1);
        // Slot 1 is free again once its window retired.
        tracker.reserve_window(&[1], 0).unwrap();
        tracker.retire_window();
        tracker.retire_window();
        assert!(tracker.is_empty());
        assert_eq!(tracker.stash_reserved(), 0);
        assert_eq!(tracker.stash_reserved_peak(), 2);
    }

    #[test]
    fn clear_voids_everything() {
        let mut tracker = HazardTracker::new();
        tracker.reserve_window(&[7], 1).unwrap();
        tracker.clear();
        assert!(tracker.is_empty());
        tracker.reserve_window(&[7], 0).unwrap();
    }
}

//! A hand-rolled scoped worker pool for the wall-clock execution engine.
//!
//! The simulated-time machinery (PRs 2–3) made H-ORAM fast on the
//! *simulated* device timeline, but every byte of real CPU work — shard
//! cycle windows, the shuffle's seal/open stream, ChaCha20 keystream
//! generation — still ran serially on one core. [`WorkerPool`] is the
//! execution substrate that converts the design's independent work units
//! into measured wall-clock concurrency:
//!
//! * [`ShardedOram`](crate::shard::ShardedOram) dispatches per-shard cycle
//!   windows onto it (shards are fully independent instances);
//! * [`StorageLayer`](crate::storage_layer::StorageLayer) runs the
//!   rebuild stream's per-block crypto data-parallel across it.
//!
//! # Design
//!
//! The pool is deliberately small (no external dependencies; the
//! environment has no crates.io access): a shared FIFO injector queue
//! behind a mutex/condvar pair, `threads − 1` detached worker threads,
//! and a **scoped** spawn API in the style of `std::thread::scope` /
//! rayon's `scope`:
//!
//! * [`WorkerPool::scope`] lets tasks borrow from the caller's stack
//!   (`&mut` shard instances, buffer chunks). Safety comes from the
//!   barrier: `scope` does not return — not even by unwinding — until
//!   every task spawned in it has finished, so the erased lifetimes can
//!   never dangle.
//! * The **caller helps** while it waits: a scope blocked on its tasks
//!   pops and runs queued jobs instead of sleeping, so a pool configured
//!   for `t` threads delivers exactly `t`-way concurrency (`t − 1`
//!   workers + the scoping thread) and nested scopes cannot deadlock the
//!   queue (the waiter drains it).
//! * **Panics propagate, never deadlock**: a panicking task is caught on
//!   the worker, recorded, and counted as finished; the scope re-raises
//!   the first payload on the scoping thread after the barrier. Workers
//!   survive task panics, so the pool stays usable — a panicking shard
//!   task cannot wedge the serving layer's pump.
//!
//! Determinism is unaffected by any of this: tasks only ever write
//! disjoint state handed to them by the caller, and every merge of task
//! results happens on the scoping thread in a fixed order. The pool
//! decides *when* work runs, never *what* it computes — see
//! `docs/ARCHITECTURE.md` §8 for the full argument.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A type-erased unit of work. Jobs never unwind: scope tasks are wrapped
/// in `catch_unwind` before they are erased.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// FIFO injector: scopes push, workers (and helping waiters) pop.
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
    /// Set once by [`WorkerPool::drop`]; workers exit when the queue is
    /// empty and this is set.
    shutdown: AtomicBool,
}

/// Completion tracking for one [`WorkerPool::scope`] call.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// Paired with [`done`](Self::done) to block the scoping thread when
    /// the queue is empty but tasks are still running on workers.
    done: Mutex<()>,
    /// Signalled by the task that drops `pending` to zero.
    done_cv: Condvar,
    /// First panic payload raised by any task in this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fixed-size pool of worker threads with a scoped spawn API.
///
/// See the [module docs](self) for the design. `worker_threads = t`
/// spawns `t − 1` OS threads; the thread calling [`scope`](Self::scope)
/// is the `t`-th executor while it waits.
///
/// # Example
///
/// ```
/// use horam_core::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let mut results = vec![0u64; 8];
/// pool.scope(|scope| {
///     for (i, slot) in results.iter_mut().enumerate() {
///         scope.spawn(move || *slot = (i as u64) * 2);
///     }
/// });
/// assert_eq!(results, vec![0, 2, 4, 6, 8, 10, 12, 14]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool delivering `threads`-way concurrency (spawning
    /// `threads − 1` workers; the scoping caller is the last executor).
    ///
    /// # Panics
    ///
    /// Panics if `threads < 2` — a 1-thread "pool" is the serial path and
    /// callers select it by not constructing a pool at all (see
    /// [`for_threads`](Self::for_threads)).
    pub fn new(threads: usize) -> Self {
        assert!(
            threads >= 2,
            "a worker pool needs at least 2 threads; use the serial path for 1"
        );
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("horam-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawns worker thread")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// The conventional constructor: `None` for `threads ≤ 1` (callers
    /// take the serial path), `Some(pool)` otherwise. This is what
    /// [`HOramConfig::worker_threads`](crate::config::HOramConfig::worker_threads)
    /// feeds.
    pub fn for_threads(threads: usize) -> Option<Arc<Self>> {
        (threads >= 2).then(|| Arc::new(Self::new(threads)))
    }

    /// The concurrency the pool delivers (workers + the scoping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] whose spawned tasks may borrow anything
    /// that outlives this call. Returns only after every spawned task has
    /// finished; while waiting, the calling thread executes queued jobs
    /// itself.
    ///
    /// # Panics
    ///
    /// If `f` or any spawned task panics, the panic is re-raised here —
    /// *after* the completion barrier, so borrowed state is never touched
    /// by a task once `scope` has unwound. When both panic, `f`'s payload
    /// wins (matching `std::thread::scope`).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier: every spawned task must finish before control (or a
        // panic) leaves this frame, or erased borrows could dangle.
        self.wait_until_done(&state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                if let Some(payload) = state.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
                {
                    resume_unwind(payload);
                }
                value
            }
        }
    }

    /// Queues a job and wakes one worker.
    fn push(&self, job: Job) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.shared.available.notify_one();
    }

    /// Blocks until `state.pending` hits zero, running queued jobs (from
    /// any scope) instead of sleeping whenever the queue is non-empty.
    fn wait_until_done(&self, state: &ScopeState) {
        loop {
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let job = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            match job {
                Some(job) => job(),
                None => {
                    // Queue empty but tasks still running on workers: park
                    // on the scope's condvar. The pending check under the
                    // `done` mutex pairs with the finisher locking it
                    // before notifying, so the wakeup cannot be missed.
                    let guard = state.done.lock().unwrap_or_else(|e| e.into_inner());
                    if state.pending.load(Ordering::Acquire) != 0 {
                        drop(state.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner()));
                    }
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // Workers never unwind (tasks are caught), so join only fails
            // if a worker was killed externally; nothing to clean up then.
            let _ = worker.join();
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`]. Tasks may
/// borrow anything alive for `'env`.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`: keeps callers
    /// from shrinking the environment lifetime of spawned borrows.
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns `task` onto the pool. The task starts as soon as a worker
    /// (or the waiting scope owner) picks it up; it is guaranteed to have
    /// finished when the enclosing [`WorkerPool::scope`] returns.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'env) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let wrapped = move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                state
                    .panic
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task out: take the done lock before notifying so a
                // waiter between its pending check and its wait cannot
                // miss the signal.
                drop(state.done.lock().unwrap_or_else(|e| e.into_inner()));
                state.done_cv.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapped);
        // SAFETY: `scope` does not return (by value or unwind) until
        // `pending` reaches zero, i.e. until this job has run to
        // completion; the pool never drops queued jobs while scopes wait
        // (shutdown happens only in `WorkerPool::drop`, which cannot be
        // reached while `&self` borrows the pool). The erased borrows
        // therefore outlive every use.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.push(job);
    }
}

/// Body of each worker thread: pop jobs until shutdown.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_borrowed_tasks_to_completion() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0u64; 64];
        pool.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn tasks_actually_run_concurrently_or_interleaved() {
        // With 3 executors, a counter incremented from many tasks must
        // land exactly on the task count whatever the interleaving.
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        pool.scope(|scope| {
            for _ in 0..100 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_reuses_the_pool_across_calls() {
        let pool = WorkerPool::new(2);
        for round in 0..20u64 {
            let mut out = [0u64; 4];
            pool.scope(|scope| {
                for slot in out.iter_mut() {
                    scope.spawn(move || *slot = round);
                }
            });
            assert_eq!(out, [round; 4]);
        }
    }

    #[test]
    fn panicking_task_propagates_and_does_not_deadlock() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("shard task exploded"));
            });
        }));
        let payload = caught.expect_err("panic must propagate to the scope");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("shard task exploded"));

        // The pump keeps running: the pool must still execute work after a
        // task panic (the worker survived).
        let mut out = [0u64; 3];
        pool.scope(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.spawn(move || *slot = i as u64 + 7);
            }
        });
        assert_eq!(out, [7, 8, 9]);
    }

    #[test]
    fn one_of_many_panics_still_finishes_every_task() {
        let pool = WorkerPool::new(4);
        let finished = AtomicU64::new(0);
        let finished = &finished;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                for i in 0..32 {
                    scope.spawn(move || {
                        if i == 13 {
                            panic!("unlucky");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must surface");
        // The barrier ran every non-panicking task before re-raising.
        assert_eq!(finished.load(Ordering::Relaxed), 31);
    }

    #[test]
    fn for_threads_selects_the_serial_path_below_two() {
        assert!(WorkerPool::for_threads(0).is_none());
        assert!(WorkerPool::for_threads(1).is_none());
        assert_eq!(WorkerPool::for_threads(2).unwrap().threads(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 2 threads")]
    fn single_thread_pool_rejected() {
        let _ = WorkerPool::new(1);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // A task that itself opens a scope on the same pool: the waiter
        // helps drain the queue, so this completes even with 2 threads.
        let pool = Arc::new(WorkerPool::new(2));
        let mut outer = [0u64; 4];
        pool.scope(|scope| {
            for (i, slot) in outer.iter_mut().enumerate() {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut inner = [0u64; 4];
                    pool.scope(|inner_scope| {
                        for (j, cell) in inner.iter_mut().enumerate() {
                            inner_scope.spawn(move || *cell = (i * 4 + j) as u64);
                        }
                    });
                    *slot = inner.iter().sum();
                });
            }
        });
        assert_eq!(outer.iter().sum::<u64>(), (0..16).sum::<u64>());
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = WorkerPool::new(2);
        let value = pool.scope(|_| 42);
        assert_eq!(value, 42);
    }
}

//! Position maps: where every logical block currently lives.
//!
//! H-ORAM's control layer keeps two per-block tables (paper §4.1): the
//! **permutation list** (block id → storage slot, or "in memory") and the
//! **slot owner table** (storage slot → block id), used to resolve dummy
//! prefetches at plan time. Together they are the *position map* of the
//! system, and this module puts them behind one trait with two
//! implementations:
//!
//! * [`FlatPositionMap`] — both tables as plain in-RAM vectors, O(N)
//!   trusted bytes. This is the seed behaviour and the default.
//! * [`RecursivePositionMap`] — the classic Path ORAM recursion: position
//!   entries are packed into pages, pages are stored in a small ORAM whose
//!   own (much smaller) position table is packed into pages of an even
//!   smaller ORAM, … terminating in a tiny flat root. Steady-state trusted
//!   memory is O(log N): the root, a bounded stash, and a pinned page
//!   cache per level. The level ORAMs live on their *own* devices with
//!   their own clock and traces, so the data ORAM's observable trace and
//!   simulated time are byte-identical between the two implementations —
//!   `tests/posmap.rs` proves this differentially.
//!
//! # Example
//!
//! ```
//! use horam_core::posmap::{build_posmap, PositionMap};
//! use horam_core::permutation_list::Location;
//! use horam_core::HOramConfig;
//! use oram_crypto::keys::MasterKey;
//! use oram_protocols::BlockId;
//!
//! # fn main() -> Result<(), oram_protocols::OramError> {
//! let config = HOramConfig::new(256, 16, 64).with_recursive_posmap(None, 8);
//! let mut map = build_posmap(&config, &MasterKey::from_bytes([7; 32]), false)?;
//! map.place(BlockId(3), 42)?;
//! assert_eq!(map.location(BlockId(3))?, Location::Storage { slot: 42 });
//! assert_eq!(map.take_owner(42)?, Some(BlockId(3)));
//! # Ok(())
//! # }
//! ```
//!
//! # Leakage of the recursive levels
//!
//! Every level access is a full root→leaf path read followed by a full
//! path write on the level's own bus — the standard Path ORAM shape, which
//! `tests/leakage.rs` checks structurally. The pinned page cache
//! suppresses *repeat* chain walks for hot pages, so the **number** of
//! level accesses (not their addresses) correlates with query locality —
//! the same bounded timing channel Freecursive-style caches accept;
//! `docs/ARCHITECTURE.md` §12 quantifies it. Full shuffles rebuild all
//! levels with one public linear sweep, leaking nothing beyond the (public)
//! shuffle schedule.

use crate::config::{HOramConfig, PosmapMode, RecursivePosmapConfig};
use crate::permutation_list::{Location, PermutationList};
use oram_crypto::keys::{KeyHierarchy, MasterKey};
use oram_crypto::persist::{PersistError, StateReader, StateWriter};
use oram_crypto::rng::DeterministicRng;
use oram_crypto::seal::BlockSealer;
use oram_protocols::bucket_tree::TreeGeometry;
use oram_protocols::error::OramError;
use oram_protocols::types::{BlockContent, BlockId};
use oram_storage::calibration::paper_dram;
use oram_storage::clock::{SimClock, SimDuration};
use oram_storage::device::{Device, DeviceId};
use oram_storage::file::{FileStore, FileStoreConfig};
use oram_storage::trace::AccessTrace;
use std::collections::{HashMap, VecDeque};

/// Bucket size of the position-map level ORAMs (paper default Z).
const POSMAP_Z: u32 = 4;
/// Hard bound on a level's plaintext stash; exceeding it is a protocol
/// failure ([`OramError::StashOverflow`]), the same stance the memory
/// layer's Path ORAM takes.
const POSMAP_STASH_LIMIT: usize = 256;
/// Device-id base for position-map level devices: forward levels get
/// `100 + 2·level`, inverse levels `101 + 2·level`, well clear of the data
/// devices (`0`/`1`).
const POSMAP_DEVICE_ID_BASE: u16 = 100;

/// Volatile counters of position-map activity. Reported separately from
/// [`crate::stats::HOramStats`] (they describe the control layer's own
/// I/O, which never touches the data ORAM's bus).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PosmapStats {
    /// Logical queries answered (lookups, updates, owner takes).
    pub queries: u64,
    /// Level-ORAM path accesses (checkouts) across all levels.
    pub checkouts: u64,
    /// Queries absorbed by the pinned page caches.
    pub cache_hits: u64,
    /// Bulk level rebuilds (one per full shuffle, plus the initial build).
    pub bulk_rebuilds: u64,
}

/// A read-only view of one recursive level, for leakage analyses and
/// reporting. [`FlatPositionMap`] has no levels and returns an empty list.
#[derive(Debug, Clone)]
pub struct PosmapLevelView {
    /// Level name, e.g. `posmap-fwd-l0`.
    pub name: String,
    /// Device id the level's accesses appear under.
    pub device_id: DeviceId,
    /// Bucket-tree depth of the level.
    pub depth: u32,
    /// Bucket size of the level.
    pub z: u32,
    /// Number of position pages the level stores.
    pub page_count: u64,
    /// The level's own bus trace (separate from the data ORAM's).
    pub trace: AccessTrace,
}

/// The position-map contract the storage layer drives.
///
/// All mutating lookups are fallible because the recursive implementation
/// performs real (simulated) ORAM I/O per query; the flat implementation
/// never returns an error. Implementations must keep the forward table
/// (id → location) and the inverse table (slot → owner) consistent under
/// the call discipline the storage layer uses:
///
/// * a **miss** is `location` → `take_owner` → `set_in_memory`;
/// * a **dummy prefetch** is `take_owner` (+ `set_in_memory` if it hit a
///   real block);
/// * a **shuffle pass** is `take_pass_owners` over the pass's slot range,
///   then either per-entry `place` calls (partial windows) or one
///   [`rebuild_all`](Self::rebuild_all) (full windows).
pub trait PositionMap: std::fmt::Debug + Send {
    /// Number of logical blocks tracked.
    fn capacity(&self) -> u64;

    /// Number of physical storage slots tracked by the inverse table.
    fn total_slots(&self) -> u64;

    /// The current location of `id`.
    fn location(&mut self, id: BlockId) -> Result<Location, OramError>;

    /// Whether `id` is resident in the memory layer — the scheduler's hit
    /// test.
    fn is_in_memory(&mut self, id: BlockId) -> Result<bool, OramError> {
        Ok(matches!(self.location(id)?, Location::Memory))
    }

    /// Number of blocks currently marked in-memory (O(1); maintained).
    fn in_memory_count(&self) -> u64;

    /// Records that `id` migrated into the memory layer (idempotent).
    fn set_in_memory(&mut self, id: BlockId) -> Result<(), OramError>;

    /// Records that `id` now lives at storage `slot`: updates the forward
    /// entry and claims the slot in the inverse table.
    fn place(&mut self, id: BlockId, slot: u64) -> Result<(), OramError>;

    /// Removes and returns the owner of `slot`, if any. Does **not**
    /// touch the forward table — callers decide (a real miss already knew
    /// the owner; a dummy prefetch promotes it via
    /// [`set_in_memory`](Self::set_in_memory)).
    fn take_owner(&mut self, slot: u64) -> Result<Option<BlockId>, OramError>;

    /// Bulk [`take_owner`](Self::take_owner) over the contiguous slot
    /// range `[base, base + len)` — the shuffle's control sweep.
    fn take_pass_owners(&mut self, base: u64, len: u64) -> Result<Vec<Option<BlockId>>, OramError> {
        let mut out = Vec::with_capacity(len as usize);
        for slot in base..base + len {
            out.push(self.take_owner(slot)?);
        }
        Ok(out)
    }

    /// Replaces the whole map from a full slot→owner image (one entry per
    /// physical slot; `owners.len()` must equal
    /// [`total_slots`](Self::total_slots)) at the end of a shuffle pass
    /// that swept every partition. A block may appear at most once;
    /// blocks absent from the image are marked in-memory (a full-extent
    /// *partial* shuffle legitimately leaves cached blocks out of
    /// storage). The recursive implementation rebuilds all levels in one
    /// public linear sweep instead of O(N) per-entry chain walks.
    ///
    /// # Errors
    ///
    /// [`OramError::Internal`] if the image is mis-sized or places a
    /// block twice; level build errors propagate.
    fn rebuild_all(&mut self, owners: &[Option<BlockId>]) -> Result<(), OramError>;

    /// Trusted in-enclave bytes currently held (the capacity gate's
    /// subject). Flat: O(N). Recursive: root + stash + pinned caches,
    /// O(log N) in steady state.
    fn memory_bytes(&self) -> u64;

    /// Activity counters.
    fn stats(&self) -> PosmapStats;

    /// Per-level views (empty for the flat map).
    fn level_views(&self) -> Vec<PosmapLevelView>;

    /// Simulated time spent on position-map I/O (its own clock; never
    /// part of the engine's timeline).
    fn sim_time(&self) -> SimDuration;

    /// Clears timing/tracing/statistics state (not data).
    fn reset_accounting(&mut self);

    /// Durability barrier for file-backed levels (no-op otherwise).
    fn sync(&mut self) -> Result<(), OramError>;

    /// Serializes the map into a snapshot stream.
    fn save_state(&mut self, w: &mut StateWriter) -> Result<(), OramError>;

    /// Restores state serialized by [`save_state`](Self::save_state).
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), OramError>;
}

/// Builds the position map `config` asks for. With `restore = true` the
/// recursive variant skips its initial level build (construction must not
/// write to possibly-durable level devices that
/// [`PositionMap::load_state`] is about to validate and adopt).
///
/// # Errors
///
/// Level build or backing-file errors from the recursive variant.
pub fn build_posmap(
    config: &HOramConfig,
    master: &MasterKey,
    restore: bool,
) -> Result<Box<dyn PositionMap>, OramError> {
    let total_slots = config.partition_count() * config.partition_slots();
    match &config.posmap {
        PosmapMode::Flat => Ok(Box::new(FlatPositionMap::new(config.capacity, total_slots))),
        PosmapMode::Recursive(rcfg) => Ok(Box::new(RecursivePositionMap::new(
            config.capacity,
            total_slots,
            rcfg,
            master,
            config.seed,
            restore,
        )?)),
    }
}

// ---------------------------------------------------------------------------
// Flat implementation
// ---------------------------------------------------------------------------

/// The seed behaviour: both tables as plain vectors in trusted memory.
#[derive(Debug)]
pub struct FlatPositionMap {
    list: PermutationList,
    owners: Vec<Option<BlockId>>,
    stats: PosmapStats,
}

impl FlatPositionMap {
    /// Creates a flat map for `capacity` blocks over `total_slots`
    /// physical slots, every block provisionally at slot 0 and every slot
    /// unowned (construction installs the real layout via the first full
    /// shuffle).
    pub fn new(capacity: u64, total_slots: u64) -> Self {
        Self {
            list: PermutationList::new(capacity),
            owners: vec![None; total_slots as usize],
            stats: PosmapStats::default(),
        }
    }
}

impl PositionMap for FlatPositionMap {
    fn capacity(&self) -> u64 {
        self.list.capacity()
    }

    fn total_slots(&self) -> u64 {
        self.owners.len() as u64
    }

    fn location(&mut self, id: BlockId) -> Result<Location, OramError> {
        self.stats.queries += 1;
        Ok(self.list.location(id))
    }

    fn in_memory_count(&self) -> u64 {
        self.list.in_memory_count()
    }

    fn set_in_memory(&mut self, id: BlockId) -> Result<(), OramError> {
        self.stats.queries += 1;
        self.list.set_in_memory(id);
        Ok(())
    }

    fn place(&mut self, id: BlockId, slot: u64) -> Result<(), OramError> {
        self.stats.queries += 1;
        debug_assert!(
            self.owners[slot as usize].is_none(),
            "slot {slot} doubly owned"
        );
        self.list.set_storage_slot(id, slot);
        self.owners[slot as usize] = Some(id);
        Ok(())
    }

    fn take_owner(&mut self, slot: u64) -> Result<Option<BlockId>, OramError> {
        self.stats.queries += 1;
        Ok(self.owners[slot as usize].take())
    }

    fn rebuild_all(&mut self, owners: &[Option<BlockId>]) -> Result<(), OramError> {
        validate_full_image(owners, self.capacity(), self.total_slots())?;
        let mut placed = vec![false; self.list.capacity() as usize];
        for (slot, owner) in owners.iter().enumerate() {
            if let Some(id) = owner {
                self.list.set_storage_slot(*id, slot as u64);
                placed[id.0 as usize] = true;
            }
            self.owners[slot] = *owner;
        }
        for (id, was_placed) in placed.iter().enumerate() {
            if !was_placed {
                self.list.set_in_memory(BlockId(id as u64));
            }
        }
        self.stats.bulk_rebuilds += 1;
        Ok(())
    }

    fn memory_bytes(&self) -> u64 {
        (self.list.memory_bytes() + self.owners.len() * std::mem::size_of::<Option<BlockId>>())
            as u64
    }

    fn stats(&self) -> PosmapStats {
        self.stats
    }

    fn level_views(&self) -> Vec<PosmapLevelView> {
        Vec::new()
    }

    fn sim_time(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn reset_accounting(&mut self) {
        self.stats = PosmapStats::default();
    }

    fn sync(&mut self) -> Result<(), OramError> {
        Ok(())
    }

    fn save_state(&mut self, w: &mut StateWriter) -> Result<(), OramError> {
        self.list.save_state(w);
        w.put_usize(self.owners.len());
        for owner in &self.owners {
            w.put_opt_u64(owner.map(|id| id.0));
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), OramError> {
        self.list.load_state(r)?;
        let owner_count = r.get_usize()?;
        if owner_count != self.owners.len() {
            return Err(snapshot_err(format!(
                "owner table of {owner_count} slots for geometry with {}",
                self.owners.len()
            )));
        }
        for owner in &mut self.owners {
            *owner = r.get_opt_u64()?.map(BlockId);
        }
        Ok(())
    }
}

/// Shared full-image validation: correct size, no block placed twice.
/// Blocks absent from the image are legitimate — they remain in memory.
fn validate_full_image(
    owners: &[Option<BlockId>],
    capacity: u64,
    total_slots: u64,
) -> Result<(), OramError> {
    if owners.len() as u64 != total_slots {
        return Err(OramError::internal(format!(
            "full rebuild image covers {} slots, geometry has {total_slots}",
            owners.len()
        )));
    }
    let mut seen = vec![false; capacity as usize];
    for owner in owners.iter().flatten() {
        if owner.0 >= capacity {
            return Err(OramError::internal(format!(
                "full rebuild places unknown block {owner:?} (capacity {capacity})"
            )));
        }
        if std::mem::replace(&mut seen[owner.0 as usize], true) {
            return Err(OramError::internal(format!(
                "full rebuild places block {owner:?} twice"
            )));
        }
    }
    Ok(())
}

fn snapshot_err(reason: String) -> OramError {
    OramError::SnapshotInvalid { reason }
}

// ---------------------------------------------------------------------------
// Recursive implementation
// ---------------------------------------------------------------------------

/// One page checked into a level's plaintext stash (trusted memory),
/// awaiting write-back onto a tree path.
#[derive(Debug, Clone)]
struct StashPage {
    page: u64,
    leaf: u64,
    data: Vec<u64>,
}

/// One page pinned in a level's cache. `return_leaf` was already written
/// into the parent entry at checkout time, so eviction is a plain stash
/// check-in with no upward cascade.
#[derive(Debug, Clone)]
struct CachedPage {
    data: Vec<u64>,
    return_leaf: u64,
}

/// One recursion level: a bucket-tree ORAM over position pages, with its
/// own device, sealer epoch, stash, and pinned LRU page cache.
#[derive(Debug)]
struct MapLevel {
    name: String,
    geometry: TreeGeometry,
    device: Device,
    clock: SimClock,
    keys: KeyHierarchy,
    sealer: BlockSealer,
    epoch: u64,
    seal_seq: u64,
    page_count: u64,
    fanout: u64,
    payload_len: usize,
    stash: Vec<StashPage>,
    stash_peak: usize,
    cache: HashMap<u64, CachedPage>,
    cache_order: VecDeque<u64>,
    cache_budget: usize,
    checkouts: u64,
    cache_hits: u64,
    trace: AccessTrace,
}

impl MapLevel {
    #[allow(clippy::too_many_arguments)]
    fn new(
        name: String,
        device_id: DeviceId,
        page_count: u64,
        fanout: u64,
        cache_budget: usize,
        master: &MasterKey,
        clock: &SimClock,
        backing_dir: Option<&std::path::Path>,
    ) -> Result<Self, OramError> {
        let geometry = TreeGeometry::for_capacity(page_count, POSMAP_Z);
        let payload_len = fanout as usize * 8;
        let wire_len = BlockContent::encoded_len(payload_len);
        let trace = AccessTrace::new();
        let mut device = match backing_dir {
            None => Device::new(
                device_id,
                name.clone(),
                Box::new(paper_dram()),
                clock.clone(),
                Some(trace.clone()),
            ),
            Some(dir) => {
                let path = dir.join(format!("{name}.dev"));
                let store =
                    FileStore::open(path, FileStoreConfig::new(geometry.total_slots(), wire_len))?;
                Device::with_store(
                    device_id,
                    name.clone(),
                    Box::new(paper_dram()),
                    clock.clone(),
                    Some(trace.clone()),
                    Box::new(store),
                )
            }
        };
        device.set_capacity_slots(geometry.total_slots());
        device.set_charged_block_bytes(wire_len as u64);
        let keys = KeyHierarchy::new(master.clone(), format!("horam/posmap/{name}"));
        let sealer = BlockSealer::new(&keys.epoch_keys(0));
        Ok(Self {
            name,
            geometry,
            device,
            clock: clock.clone(),
            keys,
            sealer,
            epoch: 0,
            seal_seq: 0,
            page_count,
            fanout,
            payload_len,
            stash: Vec::new(),
            stash_peak: 0,
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_budget,
            checkouts: 0,
            cache_hits: 0,
            trace,
        })
    }

    /// Advances the posmap clock by the device occupancy accrued since
    /// `busy_before` (the devices record costs; callers own the clock).
    fn advance_clock_since(&mut self, busy_before: SimDuration) {
        let delta = self.device.stats().busy.saturating_sub(busy_before);
        self.clock.advance(delta);
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.seal_seq;
        self.seal_seq += 1;
        seq
    }

    fn seal_page(&mut self, addr: u64, content: &BlockContent) -> oram_crypto::seal::SealedBlock {
        let wire = content.encode(self.payload_len);
        let seq = self.next_seq();
        self.sealer.seal(addr, seq, &wire)
    }

    /// Rebuilds the whole level from scratch: fresh epoch keys, a fresh
    /// leaf per page drawn from `rng`, greedy deepest-first placement, and
    /// one streaming write of every tree slot (a public linear sweep).
    /// Returns the leaf assigned to each page. Stash and cache are
    /// discarded — the caller supplies complete, current page contents.
    fn bulk_build(
        &mut self,
        pages: &[Vec<u64>],
        rng: &mut DeterministicRng,
    ) -> Result<Vec<u64>, OramError> {
        debug_assert_eq!(pages.len() as u64, self.page_count);
        let busy_before = self.device.stats().busy;
        self.epoch += 1;
        self.sealer = BlockSealer::new(&self.keys.epoch_keys(self.epoch));
        self.stash.clear();
        self.cache.clear();
        self.cache_order.clear();

        let leaves: Vec<u64> = pages
            .iter()
            .map(|_| self.geometry.random_leaf(rng))
            .collect();
        let z = self.geometry.z() as usize;
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); self.geometry.bucket_count() as usize];
        for (page, &leaf) in leaves.iter().enumerate() {
            let mut placed = false;
            for &node in self.geometry.path_nodes(leaf).iter().rev() {
                if buckets[node as usize].len() < z {
                    buckets[node as usize].push(page as u64);
                    placed = true;
                    break;
                }
            }
            if !placed {
                // ≈50 % utilization makes this rare; spill to the stash.
                self.stash.push(StashPage {
                    page: page as u64,
                    leaf,
                    data: pages[page].clone(),
                });
                if self.stash.len() > POSMAP_STASH_LIMIT {
                    return Err(OramError::StashOverflow {
                        limit: POSMAP_STASH_LIMIT,
                    });
                }
            }
        }
        self.stash_peak = self.stash_peak.max(self.stash.len());

        let mut blocks = Vec::with_capacity(self.geometry.total_slots() as usize);
        for node in 0..self.geometry.bucket_count() {
            for slot in 0..z {
                let addr = self.geometry.slot_addr(node, slot as u32);
                let content = match buckets[node as usize].get(slot) {
                    Some(&page) => BlockContent::Real {
                        id: BlockId(page),
                        leaf: leaves[page as usize],
                        payload: pack_entries(&pages[page as usize]),
                    },
                    None => BlockContent::Dummy,
                };
                blocks.push(self.seal_page(addr, &content));
            }
        }
        self.device.write_run(0, blocks)?;
        self.advance_clock_since(busy_before);
        Ok(leaves)
    }

    /// Fetches `page` (tagged `leaf`) out of the level: reads the full
    /// root→leaf path, absorbs every real page into the stash, extracts
    /// the target, then greedily writes the path back from the stash. The
    /// target is *not* written back — it moves to the pinned cache until
    /// [`checkin`](Self::checkin).
    fn checkout(&mut self, page: u64, leaf: u64) -> Result<Vec<u64>, OramError> {
        self.checkouts += 1;
        let busy_before = self.device.stats().busy;
        let z = self.geometry.z() as u64;
        let path = self.geometry.path_nodes(leaf);
        for &node in &path {
            let run = self.device.read_run(node * z, z)?;
            for (offset, block) in run.into_iter().enumerate() {
                let addr = node * z + offset as u64;
                let Some(block) = block else {
                    return Err(OramError::internal(format!(
                        "posmap level {} slot {addr} empty — level never built",
                        self.name
                    )));
                };
                let wire = self.sealer.open_in_place(block)?;
                match BlockContent::decode_owned(wire, addr)? {
                    BlockContent::Dummy => {}
                    BlockContent::Real { id, leaf, payload } => {
                        self.stash.push(StashPage {
                            page: id.0,
                            leaf,
                            data: unpack_entries(&payload),
                        });
                    }
                }
            }
        }
        let position = self
            .stash
            .iter()
            .position(|entry| entry.page == page)
            .ok_or_else(|| {
                OramError::internal(format!(
                    "posmap level {} page {page} missing from path to leaf {leaf}",
                    self.name
                ))
            })?;
        let target = self.stash.remove(position);

        // Greedy write-back, leaf-first, from the stash.
        for &node in path.iter().rev() {
            let mut bucket = Vec::with_capacity(z as usize);
            let mut index = 0;
            while index < self.stash.len() && bucket.len() < z as usize {
                if self.geometry.node_on_path(node, self.stash[index].leaf) {
                    let entry = self.stash.remove(index);
                    let addr = node * z + bucket.len() as u64;
                    let content = BlockContent::Real {
                        id: BlockId(entry.page),
                        leaf: entry.leaf,
                        payload: pack_entries(&entry.data),
                    };
                    bucket.push(self.seal_page(addr, &content));
                } else {
                    index += 1;
                }
            }
            while bucket.len() < z as usize {
                let addr = node * z + bucket.len() as u64;
                bucket.push(self.seal_page(addr, &BlockContent::Dummy));
            }
            self.device.write_run(node * z, bucket)?;
        }
        self.stash_peak = self.stash_peak.max(self.stash.len());
        if self.stash.len() > POSMAP_STASH_LIMIT {
            return Err(OramError::StashOverflow {
                limit: POSMAP_STASH_LIMIT,
            });
        }
        self.advance_clock_since(busy_before);
        Ok(target.data)
    }

    /// Returns an evicted page to the stash under the leaf that was
    /// reserved for it at checkout. No device access — the page rides a
    /// later checkout's write-back.
    fn checkin(&mut self, page: u64, return_leaf: u64, data: Vec<u64>) -> Result<(), OramError> {
        self.stash.push(StashPage {
            page,
            leaf: return_leaf,
            data,
        });
        self.stash_peak = self.stash_peak.max(self.stash.len());
        if self.stash.len() > POSMAP_STASH_LIMIT {
            return Err(OramError::StashOverflow {
                limit: POSMAP_STASH_LIMIT,
            });
        }
        Ok(())
    }

    /// Marks `page` most-recently-used.
    fn touch(&mut self, page: u64) {
        if let Some(pos) = self.cache_order.iter().position(|&p| p == page) {
            self.cache_order.remove(pos);
        }
        self.cache_order.push_front(page);
    }

    fn trusted_bytes(&self) -> u64 {
        let per_page = 24 + self.fanout * 8;
        (self.stash.len() as u64 + self.cache.len() as u64) * per_page
    }

    fn save_state(&mut self, w: &mut StateWriter) -> Result<(), OramError> {
        w.put_u64(self.epoch);
        w.put_u64(self.seal_seq);
        w.put_usize(self.stash.len());
        for entry in &self.stash {
            w.put_u64(entry.page);
            w.put_u64(entry.leaf);
            put_entries(w, &entry.data);
        }
        w.put_usize(self.cache_order.len());
        for &page in &self.cache_order {
            let cached = &self.cache[&page];
            w.put_u64(page);
            w.put_u64(cached.return_leaf);
            put_entries(w, &cached.data);
        }
        self.device.save_state(w)?;
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), OramError> {
        self.epoch = r.get_u64()?;
        self.seal_seq = r.get_u64()?;
        self.sealer = BlockSealer::new(&self.keys.epoch_keys(self.epoch));
        let stash_len = r.get_usize()?;
        if stash_len > POSMAP_STASH_LIMIT {
            return Err(snapshot_err(format!(
                "posmap level {} stash of {stash_len} beyond bound {POSMAP_STASH_LIMIT}",
                self.name
            )));
        }
        let mut stash = Vec::with_capacity(stash_len);
        for _ in 0..stash_len {
            let page = r.get_u64()?;
            let leaf = r.get_u64()?;
            stash.push(StashPage {
                page,
                leaf,
                data: get_entries(r, self.fanout)?,
            });
        }
        self.stash = stash;
        let cache_len = r.get_usize()?;
        if cache_len > self.cache_budget {
            return Err(snapshot_err(format!(
                "posmap level {} cache of {cache_len} beyond budget {}",
                self.name, self.cache_budget
            )));
        }
        self.cache.clear();
        self.cache_order.clear();
        for _ in 0..cache_len {
            let page = r.get_u64()?;
            let return_leaf = r.get_u64()?;
            let data = get_entries(r, self.fanout)?;
            self.cache.insert(page, CachedPage { data, return_leaf });
            self.cache_order.push_back(page);
        }
        self.device.load_state(r)?;
        Ok(())
    }
}

fn pack_entries(entries: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * 8);
    for value in entries {
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

fn unpack_entries(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|chunk| u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")))
        .collect()
}

fn put_entries(w: &mut StateWriter, entries: &[u64]) {
    for &value in entries {
        w.put_u64(value);
    }
}

fn get_entries(r: &mut StateReader<'_>, fanout: u64) -> Result<Vec<u64>, PersistError> {
    let mut out = Vec::with_capacity(fanout as usize);
    for _ in 0..fanout {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

/// One recursive table: progressively smaller levels over packed `u64`
/// entries, terminating in a tiny flat root of page leaves.
#[derive(Debug)]
struct RecursiveTable {
    entries: u64,
    fanout: u64,
    levels: Vec<MapLevel>,
    root: Vec<u64>,
    rng: DeterministicRng,
    bulk_rebuilds: u64,
}

impl RecursiveTable {
    #[allow(clippy::too_many_arguments)]
    fn new(
        label: &str,
        entries: u64,
        rcfg: &RecursivePosmapConfig,
        master: &MasterKey,
        clock: &SimClock,
        device_id_base: u16,
        seed: u64,
        backing_dir: Option<&std::path::Path>,
    ) -> Result<Self, OramError> {
        let fanout = rcfg.effective_fanout(entries);
        let page_counts = level_page_counts(entries, fanout, rcfg.root_threshold);
        let mut levels = Vec::with_capacity(page_counts.len());
        for (index, &page_count) in page_counts.iter().enumerate() {
            levels.push(MapLevel::new(
                format!("posmap-{label}-l{index}"),
                DeviceId(device_id_base + 2 * index as u16),
                page_count,
                fanout,
                rcfg.cache_pages,
                master,
                clock,
                backing_dir,
            )?);
        }
        let root_len = *page_counts.last().expect("at least one level") as usize;
        Ok(Self {
            entries,
            fanout,
            levels,
            root: vec![0; root_len],
            rng: DeterministicRng::from_u64_seed(
                seed ^ (device_id_base as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            bulk_rebuilds: 0,
        })
    }

    /// Rebuilds every level from a complete entry image (`values.len() ==
    /// entries`). O(entries) *transient* host memory — an honest stand-in
    /// for an oblivious external-memory build pass; steady-state trusted
    /// memory is what [`trusted_bytes`](Self::trusted_bytes) reports.
    fn bulk_load(&mut self, values: &[u64]) -> Result<(), OramError> {
        debug_assert_eq!(values.len() as u64, self.entries);
        let mut current = chunk_pages(values, self.fanout);
        for index in 0..self.levels.len() {
            debug_assert_eq!(current.len() as u64, self.levels[index].page_count);
            let leaves = self.levels[index].bulk_build(&current, &mut self.rng)?;
            if index + 1 == self.levels.len() {
                self.root = leaves;
            } else {
                current = chunk_pages(&leaves, self.fanout);
            }
        }
        self.bulk_rebuilds += 1;
        Ok(())
    }

    /// Pins `page` of `level` in that level's cache, walking the chain of
    /// parent pages upward as needed. At fetch time the parent entry (or
    /// root slot) is rewritten to a freshly drawn *return leaf*, so a
    /// later eviction is a plain check-in with no further accesses.
    fn ensure_cached(&mut self, level: usize, page: u64) -> Result<(), OramError> {
        if self.levels[level].cache.contains_key(&page) {
            self.levels[level].cache_hits += 1;
            self.levels[level].touch(page);
            return Ok(());
        }
        let fresh = self.levels[level].geometry.random_leaf(&mut self.rng);
        let leaf = if level + 1 == self.levels.len() {
            std::mem::replace(&mut self.root[page as usize], fresh)
        } else {
            let parent_page = page / self.fanout;
            self.ensure_cached(level + 1, parent_page)?;
            let slot = (page % self.fanout) as usize;
            let parent = self.levels[level + 1]
                .cache
                .get_mut(&parent_page)
                .expect("parent pinned by ensure_cached");
            std::mem::replace(&mut parent.data[slot], fresh)
        };
        let data = self.levels[level].checkout(page, leaf)?;
        let map_level = &mut self.levels[level];
        map_level.cache.insert(
            page,
            CachedPage {
                data,
                return_leaf: fresh,
            },
        );
        map_level.cache_order.push_front(page);
        while map_level.cache.len() > map_level.cache_budget {
            let victim = map_level
                .cache_order
                .pop_back()
                .expect("cache non-empty beyond budget");
            let evicted = map_level
                .cache
                .remove(&victim)
                .expect("ordered page cached");
            map_level.checkin(victim, evicted.return_leaf, evicted.data)?;
        }
        Ok(())
    }

    fn get(&mut self, index: u64) -> Result<u64, OramError> {
        let page = index / self.fanout;
        self.ensure_cached(0, page)?;
        Ok(self.levels[0].cache[&page].data[(index % self.fanout) as usize])
    }

    fn set(&mut self, index: u64, value: u64) -> Result<(), OramError> {
        let page = index / self.fanout;
        self.ensure_cached(0, page)?;
        let cached = self.levels[0]
            .cache
            .get_mut(&page)
            .expect("page pinned by ensure_cached");
        cached.data[(index % self.fanout) as usize] = value;
        Ok(())
    }

    fn trusted_bytes(&self) -> u64 {
        let root = self.root.len() as u64 * 8;
        root + self.levels.iter().map(MapLevel::trusted_bytes).sum::<u64>()
    }

    fn save_state(&mut self, w: &mut StateWriter) -> Result<(), OramError> {
        w.put_usize(self.root.len());
        for &leaf in &self.root {
            w.put_u64(leaf);
        }
        let (counter, cursor) = self.rng.stream_pos();
        w.put_u64(counter as u64);
        w.put_usize(cursor);
        w.put_u64(self.bulk_rebuilds);
        for level in &mut self.levels {
            level.save_state(w)?;
        }
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), OramError> {
        let root_len = r.get_usize()?;
        if root_len != self.root.len() {
            return Err(snapshot_err(format!(
                "posmap root of {root_len} pages for geometry with {}",
                self.root.len()
            )));
        }
        for leaf in &mut self.root {
            *leaf = r.get_u64()?;
        }
        let counter = u32::try_from(r.get_u64()?)
            .map_err(|_| snapshot_err("posmap rng counter beyond u32".into()))?;
        let cursor = r.get_usize()?;
        self.rng.seek_to(counter, cursor);
        self.bulk_rebuilds = r.get_u64()?;
        for level in &mut self.levels {
            level.load_state(r)?;
        }
        Ok(())
    }
}

/// Splits a flat entry array into fanout-sized pages, zero-padding the
/// last one (entry value 0 is "unassigned" in both tables).
fn chunk_pages(values: &[u64], fanout: u64) -> Vec<Vec<u64>> {
    values
        .chunks(fanout as usize)
        .map(|chunk| {
            let mut page = chunk.to_vec();
            page.resize(fanout as usize, 0);
            page
        })
        .collect()
}

/// Page counts per level: level 0 packs the entries; each further level
/// packs the previous level's page leaves; recursion stops once a level
/// fits under the root threshold.
fn level_page_counts(entries: u64, fanout: u64, root_threshold: u64) -> Vec<u64> {
    let mut counts = Vec::new();
    let mut pages = entries.div_ceil(fanout).max(1);
    loop {
        counts.push(pages);
        if pages <= root_threshold {
            return counts;
        }
        pages = pages.div_ceil(fanout);
    }
}

/// The recursive position map: a forward table (id → encoded location)
/// and an inverse table (slot → encoded owner), kept in lockstep, each
/// stored recursively. Encodings: forward `0` = in memory, else
/// `slot + 1`; inverse `0` = unowned, else `id + 1`.
#[derive(Debug)]
pub struct RecursivePositionMap {
    capacity: u64,
    slots: u64,
    in_memory: u64,
    forward: RecursiveTable,
    inverse: RecursiveTable,
    clock: SimClock,
    queries: u64,
}

impl RecursivePositionMap {
    /// Builds a recursive map for `capacity` blocks over `slots` physical
    /// slots. With `restore = false` the levels are bulk-built to the
    /// all-unassigned image (every block "in memory", every slot
    /// unowned); with `restore = true` construction performs no device
    /// writes — [`PositionMap::load_state`] adopts the snapshot.
    ///
    /// # Errors
    ///
    /// Backing-file and level build errors propagate.
    pub fn new(
        capacity: u64,
        slots: u64,
        rcfg: &RecursivePosmapConfig,
        master: &MasterKey,
        seed: u64,
        restore: bool,
    ) -> Result<Self, OramError> {
        let clock = SimClock::new();
        let backing_dir = match &rcfg.backing_dir {
            None => None,
            Some(dir) => {
                let path = std::path::PathBuf::from(dir);
                std::fs::create_dir_all(&path).map_err(|e| {
                    OramError::Storage(oram_storage::StorageError::Backend {
                        path: dir.clone(),
                        reason: format!("creating posmap backing dir: {e}"),
                    })
                })?;
                Some(path)
            }
        };
        let backing = backing_dir.as_deref();
        let mut forward = RecursiveTable::new(
            "fwd",
            capacity,
            rcfg,
            master,
            &clock,
            POSMAP_DEVICE_ID_BASE,
            seed,
            backing,
        )?;
        let mut inverse = RecursiveTable::new(
            "inv",
            slots,
            rcfg,
            master,
            &clock,
            POSMAP_DEVICE_ID_BASE + 1,
            seed,
            backing,
        )?;
        if !restore {
            forward.bulk_load(&vec![0; capacity as usize])?;
            inverse.bulk_load(&vec![0; slots as usize])?;
        }
        Ok(Self {
            capacity,
            slots,
            in_memory: capacity,
            forward,
            inverse,
            clock,
            queries: 0,
        })
    }

    /// Peak stash occupancy across all levels (test instrumentation).
    pub fn stash_peak(&self) -> usize {
        self.forward
            .levels
            .iter()
            .chain(self.inverse.levels.iter())
            .map(|level| level.stash_peak)
            .max()
            .unwrap_or(0)
    }

    fn tables(&mut self) -> [&mut RecursiveTable; 2] {
        [&mut self.forward, &mut self.inverse]
    }
}

impl PositionMap for RecursivePositionMap {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn total_slots(&self) -> u64 {
        self.slots
    }

    fn location(&mut self, id: BlockId) -> Result<Location, OramError> {
        self.queries += 1;
        Ok(match self.forward.get(id.0)? {
            0 => Location::Memory,
            encoded => Location::Storage { slot: encoded - 1 },
        })
    }

    fn in_memory_count(&self) -> u64 {
        self.in_memory
    }

    fn set_in_memory(&mut self, id: BlockId) -> Result<(), OramError> {
        self.queries += 1;
        if self.forward.get(id.0)? != 0 {
            self.forward.set(id.0, 0)?;
            self.in_memory += 1;
        }
        Ok(())
    }

    fn place(&mut self, id: BlockId, slot: u64) -> Result<(), OramError> {
        self.queries += 1;
        if self.forward.get(id.0)? == 0 {
            self.in_memory -= 1;
        }
        self.forward.set(id.0, slot + 1)?;
        self.inverse.set(slot, id.0 + 1)?;
        Ok(())
    }

    fn take_owner(&mut self, slot: u64) -> Result<Option<BlockId>, OramError> {
        self.queries += 1;
        match self.inverse.get(slot)? {
            0 => Ok(None),
            encoded => {
                self.inverse.set(slot, 0)?;
                Ok(Some(BlockId(encoded - 1)))
            }
        }
    }

    fn rebuild_all(&mut self, owners: &[Option<BlockId>]) -> Result<(), OramError> {
        validate_full_image(owners, self.capacity, self.slots)?;
        let mut forward_values = vec![0u64; self.capacity as usize];
        let mut inverse_values = vec![0u64; self.slots as usize];
        let mut placed: u64 = 0;
        for (slot, owner) in owners.iter().enumerate() {
            if let Some(id) = owner {
                forward_values[id.0 as usize] = slot as u64 + 1;
                inverse_values[slot] = id.0 + 1;
                placed += 1;
            }
        }
        self.forward.bulk_load(&forward_values)?;
        self.inverse.bulk_load(&inverse_values)?;
        self.in_memory = self.capacity - placed;
        Ok(())
    }

    fn memory_bytes(&self) -> u64 {
        self.forward.trusted_bytes() + self.inverse.trusted_bytes()
    }

    fn stats(&self) -> PosmapStats {
        let mut stats = PosmapStats {
            queries: self.queries,
            bulk_rebuilds: self.forward.bulk_rebuilds + self.inverse.bulk_rebuilds,
            ..PosmapStats::default()
        };
        for level in self.forward.levels.iter().chain(self.inverse.levels.iter()) {
            stats.checkouts += level.checkouts;
            stats.cache_hits += level.cache_hits;
        }
        stats
    }

    fn level_views(&self) -> Vec<PosmapLevelView> {
        self.forward
            .levels
            .iter()
            .chain(self.inverse.levels.iter())
            .map(|level| PosmapLevelView {
                name: level.name.clone(),
                device_id: level.device.id(),
                depth: level.geometry.depth(),
                z: level.geometry.z(),
                page_count: level.page_count,
                trace: level.trace.clone(),
            })
            .collect()
    }

    fn sim_time(&self) -> SimDuration {
        SimDuration::from_nanos(self.clock.now().as_nanos())
    }

    fn reset_accounting(&mut self) {
        self.queries = 0;
        for table in self.tables() {
            table.bulk_rebuilds = 0;
            for level in &mut table.levels {
                level.checkouts = 0;
                level.cache_hits = 0;
                level.device.reset_accounting();
                level.trace.clear();
            }
        }
        self.clock.reset();
    }

    fn sync(&mut self) -> Result<(), OramError> {
        for table in self.tables() {
            for level in &mut table.levels {
                level.device.sync().map_err(OramError::Storage)?;
            }
        }
        Ok(())
    }

    fn save_state(&mut self, w: &mut StateWriter) -> Result<(), OramError> {
        w.put_u64(self.capacity);
        w.put_u64(self.slots);
        w.put_u64(self.in_memory);
        w.put_u64(self.queries);
        w.put_u64(self.clock.now().as_nanos());
        self.forward.save_state(w)?;
        self.inverse.save_state(w)?;
        Ok(())
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), OramError> {
        let capacity = r.get_u64()?;
        let slots = r.get_u64()?;
        if capacity != self.capacity || slots != self.slots {
            return Err(snapshot_err(format!(
                "recursive posmap of {capacity}×{slots} for geometry {}×{}",
                self.capacity, self.slots
            )));
        }
        self.in_memory = r.get_u64()?;
        self.queries = r.get_u64()?;
        let clock_nanos = r.get_u64()?;
        self.clock.reset();
        self.clock.advance(SimDuration::from_nanos(clock_nanos));
        self.forward.load_state(r)?;
        self.inverse.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recursive_map(capacity: u64, slots: u64) -> RecursivePositionMap {
        let rcfg = RecursivePosmapConfig {
            fanout: Some(8),
            levels: None,
            root_threshold: 4,
            cache_pages: 2,
            backing_dir: None,
        };
        RecursivePositionMap::new(
            capacity,
            slots,
            &rcfg,
            &MasterKey::from_bytes([5; 32]),
            11,
            false,
        )
        .expect("build")
    }

    fn full_image(capacity: u64, slots: u64) -> Vec<Option<BlockId>> {
        // Block i at slot 2i (interleaved with empty slots).
        let mut owners = vec![None; slots as usize];
        for id in 0..capacity {
            owners[(id * 2) as usize] = Some(BlockId(id));
        }
        owners
    }

    #[test]
    fn geometry_shrinks_to_the_root() {
        assert_eq!(level_page_counts(1 << 16, 32, 64), vec![2048, 64]);
        assert_eq!(level_page_counts(100, 32, 64), vec![4]);
        assert_eq!(level_page_counts(1, 32, 64), vec![1]);
        assert_eq!(level_page_counts(1 << 20, 32, 64), vec![32768, 1024, 32]);
    }

    #[test]
    fn flat_and_recursive_agree_on_a_mixed_sequence() {
        let capacity = 128u64;
        let slots = 300u64;
        let mut flat: Box<dyn PositionMap> = Box::new(FlatPositionMap::new(capacity, slots));
        let mut recursive: Box<dyn PositionMap> = Box::new(recursive_map(capacity, slots));
        let image = full_image(capacity, slots);
        flat.rebuild_all(&image).unwrap();
        recursive.rebuild_all(&image).unwrap();

        let mut rng = DeterministicRng::from_u64_seed(3);
        use rand::Rng;
        for _ in 0..500 {
            let id = BlockId(rng.gen_range(0..capacity));
            match rng.gen_range(0..4u32) {
                0 => {
                    assert_eq!(
                        flat.location(id).unwrap(),
                        recursive.location(id).unwrap(),
                        "location of {id:?}"
                    );
                }
                1 => {
                    flat.set_in_memory(id).unwrap();
                    recursive.set_in_memory(id).unwrap();
                }
                2 => {
                    let slot = rng.gen_range(0..slots);
                    assert_eq!(
                        flat.take_owner(slot).unwrap(),
                        recursive.take_owner(slot).unwrap(),
                        "owner of slot {slot}"
                    );
                }
                _ => {
                    // Re-place the block at a fresh slot if it owns none.
                    let slot = rng.gen_range(0..slots);
                    if flat.take_owner(slot).unwrap().is_none() {
                        assert!(recursive.take_owner(slot).unwrap().is_none());
                        flat.place(id, slot).unwrap();
                        recursive.place(id, slot).unwrap();
                    } else {
                        // Slot was owned: mirror the take on the other map
                        // and push the prior owner to memory on both.
                        let prior = recursive.take_owner(slot).unwrap().expect("mirrored");
                        flat.set_in_memory(prior).unwrap();
                        recursive.set_in_memory(prior).unwrap();
                        flat.place(id, slot).unwrap();
                        recursive.place(id, slot).unwrap();
                    }
                }
            }
            assert_eq!(flat.in_memory_count(), recursive.in_memory_count());
        }
    }

    #[test]
    fn take_pass_owners_matches_slotwise_takes() {
        let capacity = 64u64;
        let slots = 150u64;
        let image = full_image(capacity, slots);
        let mut a = recursive_map(capacity, slots);
        a.rebuild_all(&image).unwrap();
        let mut b = FlatPositionMap::new(capacity, slots);
        b.rebuild_all(&image).unwrap();
        assert_eq!(
            a.take_pass_owners(10, 40).unwrap(),
            b.take_pass_owners(10, 40).unwrap()
        );
        // Second sweep over the same range: everything already taken.
        assert!(a
            .take_pass_owners(10, 40)
            .unwrap()
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn rebuild_all_rejects_bad_images() {
        let mut map = FlatPositionMap::new(4, 10);
        // Wrong size.
        assert!(matches!(
            map.rebuild_all(&[None; 3]),
            Err(OramError::Internal { .. })
        ));
        // Duplicate placement.
        let mut owners = vec![None; 10];
        owners[0] = Some(BlockId(1));
        owners[1] = Some(BlockId(1));
        assert!(matches!(
            map.rebuild_all(&owners),
            Err(OramError::Internal { .. })
        ));
        // Blocks absent from the image are legal: they go to memory.
        let mut owners = vec![None; 10];
        owners[0] = Some(BlockId(1));
        map.rebuild_all(&owners).unwrap();
        assert_eq!(map.in_memory_count(), 3);
        assert_eq!(
            map.location(BlockId(1)).unwrap(),
            Location::Storage { slot: 0 }
        );
        assert_eq!(map.location(BlockId(2)).unwrap(), Location::Memory);
    }

    #[test]
    fn recursive_trusted_bytes_stay_bounded() {
        let capacity = 4096u64;
        let slots = 8192u64;
        let mut map = recursive_map(capacity, slots);
        map.rebuild_all(&full_image(capacity, slots)).unwrap();
        use rand::Rng;
        let mut rng = DeterministicRng::from_u64_seed(9);
        for _ in 0..300 {
            let id = BlockId(rng.gen_range(0..capacity));
            let _ = map.location(id).unwrap();
        }
        let flat_bytes = FlatPositionMap::new(capacity, slots).memory_bytes();
        let recursive_bytes = map.memory_bytes();
        assert!(
            recursive_bytes * 4 < flat_bytes,
            "recursive {recursive_bytes} B not ≪ flat {flat_bytes} B"
        );
        assert!(map.stash_peak() <= POSMAP_STASH_LIMIT);
    }

    #[test]
    fn level_accesses_are_full_paths() {
        let capacity = 512u64;
        let slots = 1100u64;
        let mut map = recursive_map(capacity, slots);
        map.rebuild_all(&full_image(capacity, slots)).unwrap();
        map.reset_accounting();
        use rand::Rng;
        let mut rng = DeterministicRng::from_u64_seed(4);
        for _ in 0..64 {
            let _ = map.location(BlockId(rng.gen_range(0..capacity))).unwrap();
        }
        let views = map.level_views();
        assert!(!views.is_empty());
        for view in views {
            let events = view.trace.snapshot();
            // Every checkout is one bucket-run read per path node, then
            // one bucket-run write per path node; the whole trace must
            // decompose into such path groups.
            let per_access = view.depth as usize;
            assert_eq!(
                events.len() % (2 * per_access),
                0,
                "level {} trace of {} events is not whole path accesses",
                view.name,
                events.len()
            );
        }
        assert!(map.stats().checkouts > 0);
        assert!(map.sim_time() > SimDuration::ZERO);
    }

    #[test]
    fn snapshot_roundtrip_preserves_behaviour() {
        let capacity = 256u64;
        let slots = 600u64;
        let mut map = recursive_map(capacity, slots);
        map.rebuild_all(&full_image(capacity, slots)).unwrap();
        use rand::Rng;
        let mut rng = DeterministicRng::from_u64_seed(7);
        for _ in 0..100 {
            let id = BlockId(rng.gen_range(0..capacity));
            map.set_in_memory(id).unwrap();
        }

        let mut w = StateWriter::new();
        map.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();

        let rcfg = RecursivePosmapConfig {
            fanout: Some(8),
            levels: None,
            root_threshold: 4,
            cache_pages: 2,
            backing_dir: None,
        };
        let mut restored = RecursivePositionMap::new(
            capacity,
            slots,
            &rcfg,
            &MasterKey::from_bytes([5; 32]),
            11,
            true,
        )
        .unwrap();
        let mut r = StateReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        r.finish().map_err(OramError::from).unwrap();

        assert_eq!(map.in_memory_count(), restored.in_memory_count());
        for id in 0..capacity {
            assert_eq!(
                map.location(BlockId(id)).unwrap(),
                restored.location(BlockId(id)).unwrap(),
                "block {id} after restore"
            );
        }
    }

    #[test]
    fn snapshot_size_tracks_trusted_state_not_n() {
        // Volatile level devices embed their blocks, so only the
        // file-backed mode gets the small-snapshot claim; compare like
        // for like by measuring the non-device portion.
        let capacity = 2048u64;
        let slots = 4200u64;
        let mut map = recursive_map(capacity, slots);
        map.rebuild_all(&full_image(capacity, slots)).unwrap();
        let mut flat = FlatPositionMap::new(capacity, slots);
        flat.rebuild_all(&full_image(capacity, slots)).unwrap();

        let mut w = StateWriter::new();
        flat.save_state(&mut w).unwrap();
        let flat_len = w.into_bytes().len();
        // Trusted part of the recursive map (root + stash + cache) is far
        // smaller than the flat table.
        assert!(
            map.memory_bytes() as usize * 4 < flat_len,
            "recursive trusted {} B vs flat snapshot {} B",
            map.memory_bytes(),
            flat_len
        );
    }
}

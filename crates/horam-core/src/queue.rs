//! The request admission queue shared by [`HOram`](crate::horam::HOram)
//! and the serving layer.
//!
//! [`RequestQueue`] is the single front door through which application
//! requests reach the secure scheduler: it validates requests against the
//! instance geometry (so malformed requests can never produce observable
//! accesses), assigns the stable tickets that order responses, owns the
//! ROB the scheduler plans cycles over, and buffers completed responses
//! until their tickets are collected.
//!
//! `HOram::enqueue`/`drain`/`run_batch` are thin wrappers over this type,
//! and the `horam-server` crate's `OramService` drives the same machinery
//! ticket-by-ticket to multiplex many tenants onto one instance — both
//! callers see identical semantics because both go through this queue.

use crate::rob::RobTable;
use crate::scheduler::{plan_cycle, CyclePlan};
use oram_protocols::error::OramError;
use oram_protocols::types::{BlockId, Request, RequestOp};
use std::collections::HashMap;

/// Validated admission queue + response buffer in front of the ROB.
///
/// See the [module docs](self) for where this sits in the system.
#[derive(Debug, Default)]
pub struct RequestQueue {
    rob: RobTable,
    responses: HashMap<u64, Vec<u8>>,
    capacity: u64,
    payload_len: usize,
    submitted: u64,
    completed: u64,
}

impl RequestQueue {
    /// Creates a queue validating against the given geometry.
    pub fn new(capacity: u64, payload_len: usize) -> Self {
        Self {
            rob: RobTable::new(),
            responses: HashMap::new(),
            capacity,
            payload_len,
            submitted: 0,
            completed: 0,
        }
    }

    /// The block-id capacity requests are validated against.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The exact payload length write requests must carry.
    pub fn payload_len(&self) -> usize {
        self.payload_len
    }

    /// Checks a request against the geometry without queueing it.
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] for ids beyond the capacity and
    /// [`OramError::PayloadSize`] for mis-sized write payloads.
    pub fn validate(&self, request: &Request) -> Result<(), OramError> {
        if request.id.0 >= self.capacity {
            return Err(OramError::BlockOutOfRange {
                id: request.id.0,
                capacity: self.capacity,
            });
        }
        if let RequestOp::Write(payload) = &request.op {
            if payload.len() != self.payload_len {
                return Err(OramError::PayloadSize {
                    expected: self.payload_len,
                    got: payload.len(),
                });
            }
        }
        Ok(())
    }

    /// Validates and queues a request, returning the ticket that will
    /// collect its response.
    ///
    /// # Errors
    ///
    /// As [`validate`](Self::validate) — invalid requests never reach the
    /// ROB, so they cannot generate observable accesses.
    pub fn submit(&mut self, request: Request) -> Result<u64, OramError> {
        self.validate(&request)?;
        self.submitted += 1;
        Ok(self.rob.push(request))
    }

    /// Number of requests queued and not yet serviced.
    pub fn pending(&self) -> usize {
        self.rob.len()
    }

    /// Whether every queued request has been serviced.
    pub fn is_drained(&self) -> bool {
        self.rob.is_empty()
    }

    /// Total requests ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Total requests serviced (responses produced, collected or not).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Plans one scheduling cycle over the queue's ROB (see
    /// [`plan_cycle`]).
    pub fn plan(&mut self, c: u32, d: usize, is_hit: impl FnMut(BlockId) -> bool) -> CyclePlan {
        plan_cycle(&mut self.rob, c, d, is_hit)
    }

    /// Records the response for a serviced ticket.
    pub fn complete(&mut self, ticket: u64, data: Vec<u8>) {
        self.completed += 1;
        self.responses.insert(ticket, data);
    }

    /// Whether `ticket`'s response is buffered and ready to take.
    pub fn response_ready(&self, ticket: u64) -> bool {
        self.responses.contains_key(&ticket)
    }

    /// Removes and returns the response for `ticket`, if ready.
    pub fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        self.responses.remove(&ticket)
    }

    /// Clears every in-flight I/O flag in the ROB (see
    /// [`RobTable::clear_io_issued`]); called when a shuffle period voids
    /// outstanding loads.
    pub fn void_in_flight_io(&mut self) {
        self.rob.clear_io_issued();
    }

    /// Serializes the queue's durable state: ticket counter, submission
    /// counters, and any completed-but-uncollected responses. Requires a
    /// drained ROB (snapshots are taken between batches).
    ///
    /// # Panics
    ///
    /// Panics if requests are still queued — the engines guard this with
    /// a proper error before calling.
    pub fn save_state(&self, w: &mut oram_crypto::persist::StateWriter) {
        assert!(self.is_drained(), "snapshot of a non-drained queue");
        w.put_u64(self.capacity);
        w.put_usize(self.payload_len);
        w.put_u64(self.rob.next_ticket());
        w.put_u64(self.submitted);
        w.put_u64(self.completed);
        // Deterministic order for byte-stable snapshots.
        let mut responses: Vec<(u64, &Vec<u8>)> =
            self.responses.iter().map(|(t, r)| (*t, r)).collect();
        responses.sort_unstable_by_key(|(t, _)| *t);
        w.put_usize(responses.len());
        for (ticket, response) in responses {
            w.put_u64(ticket);
            w.put_bytes(response);
        }
    }

    /// Restores state captured by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] on geometry mismatch or malformed
    /// state.
    pub fn load_state(
        &mut self,
        r: &mut oram_crypto::persist::StateReader<'_>,
    ) -> Result<(), OramError> {
        let capacity = r.get_u64()?;
        let payload_len = r.get_usize()?;
        if capacity != self.capacity || payload_len != self.payload_len {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "queue geometry mismatch: snapshot {capacity}×{payload_len}B, \
                     instance {}×{}B",
                    self.capacity, self.payload_len
                ),
            });
        }
        let next_ticket = r.get_u64()?;
        let submitted = r.get_u64()?;
        let completed = r.get_u64()?;
        let count = r.get_usize()?;
        let mut responses = HashMap::with_capacity(count);
        for _ in 0..count {
            let ticket = r.get_u64()?;
            let response = r.get_bytes()?.to_vec();
            responses.insert(ticket, response);
        }
        self.rob.restore_next_ticket(next_ticket);
        self.submitted = submitted;
        self.completed = completed;
        self.responses = responses;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_validates_geometry() {
        let mut queue = RequestQueue::new(16, 4);
        assert!(matches!(
            queue.submit(Request::read(99u64)),
            Err(OramError::BlockOutOfRange {
                id: 99,
                capacity: 16
            })
        ));
        assert!(matches!(
            queue.submit(Request::write(1u64, vec![0; 3])),
            Err(OramError::PayloadSize {
                expected: 4,
                got: 3
            })
        ));
        assert_eq!(queue.pending(), 0, "invalid requests never reach the ROB");
        assert_eq!(queue.submitted(), 0);
    }

    #[test]
    fn tickets_collect_out_of_order() {
        let mut queue = RequestQueue::new(16, 4);
        let a = queue.submit(Request::read(1u64)).unwrap();
        let b = queue.submit(Request::read(2u64)).unwrap();
        queue.complete(b, vec![2]);
        queue.complete(a, vec![1]);
        assert!(queue.response_ready(a));
        assert_eq!(queue.take_response(b), Some(vec![2]));
        assert_eq!(queue.take_response(a), Some(vec![1]));
        assert_eq!(queue.take_response(a), None, "responses are taken once");
        assert_eq!(queue.completed(), 2);
    }

    #[test]
    fn plan_services_the_rob() {
        let mut queue = RequestQueue::new(16, 4);
        queue.submit(Request::read(1u64)).unwrap();
        queue.submit(Request::read(2u64)).unwrap();
        let plan = queue.plan(2, 4, |_| true);
        assert_eq!(plan.hits.len(), 2);
        assert!(queue.is_drained());
    }
}

//! The ROB (re-order buffer) request table.
//!
//! Incoming requests queue here (paper Figure 4-1); the secure scheduler
//! scans the first `d` entries each cycle to assemble a group of `c`
//! memory-serviceable requests plus one storage miss (§4.2, Figure 4-2).
//! Requests leave the table only when serviced; a miss whose I/O has been
//! issued stays queued (flagged) until its block lands in memory and a
//! later cycle services it as a hit — exactly the M1/M2 flow of the
//! paper's example.

use oram_protocols::types::Request;
use std::collections::VecDeque;

/// A queued request with scheduling state.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Stable ticket used to order responses.
    pub ticket: u64,
    /// The application request.
    pub request: Request,
    /// Whether an I/O load for this request's block has been issued.
    pub io_issued: bool,
}

/// The request table.
#[derive(Debug, Default)]
pub struct RobTable {
    entries: VecDeque<RobEntry>,
    next_ticket: u64,
}

impl RobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a request, returning its response ticket.
    pub fn push(&mut self, request: Request) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.entries.push_back(RobEntry {
            ticket,
            request,
            io_issued: false,
        });
        ticket
    }

    /// The ticket the next [`push`](Self::push) will hand out. Persisted
    /// by snapshots so a restored instance never reissues a live ticket.
    pub fn next_ticket(&self) -> u64 {
        self.next_ticket
    }

    /// Restores the ticket counter (snapshot restore on a drained table).
    ///
    /// # Panics
    ///
    /// Panics if entries are queued — restoring mid-flight is not a
    /// supported state.
    pub fn restore_next_ticket(&mut self, next_ticket: u64) {
        assert!(self.entries.is_empty(), "restore on a non-empty ROB");
        self.next_ticket = next_ticket;
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Immutable scan of the first `window` entries (the prefetch window).
    pub fn window(&self, window: usize) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter().take(window)
    }

    /// Marks the entry with `ticket` as having its I/O issued.
    pub fn mark_io_issued(&mut self, ticket: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.ticket == ticket) {
            entry.io_issued = true;
        }
    }

    /// Clears every `io_issued` flag. A shuffle period evicts the memory
    /// tree, so loads issued before it no longer cover their requests —
    /// pending misses must become issueable again.
    pub fn clear_io_issued(&mut self) {
        for entry in &mut self.entries {
            entry.io_issued = false;
        }
    }

    /// Removes and returns the entries with the given tickets, preserving
    /// queue order.
    pub fn take(&mut self, tickets: &[u64]) -> Vec<RobEntry> {
        let mut taken = Vec::with_capacity(tickets.len());
        let mut remaining = VecDeque::with_capacity(self.entries.len());
        for entry in self.entries.drain(..) {
            if tickets.contains(&entry.ticket) {
                taken.push(entry);
            } else {
                remaining.push_back(entry);
            }
        }
        self.entries = remaining;
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_protocols::types::Request;

    #[test]
    fn tickets_are_sequential() {
        let mut rob = RobTable::new();
        assert_eq!(rob.push(Request::read(1u64)), 0);
        assert_eq!(rob.push(Request::read(2u64)), 1);
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn window_scans_in_order_and_is_bounded() {
        let mut rob = RobTable::new();
        for i in 0..10u64 {
            rob.push(Request::read(i));
        }
        let ids: Vec<u64> = rob.window(4).map(|e| e.request.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn take_preserves_order_and_removes() {
        let mut rob = RobTable::new();
        let t0 = rob.push(Request::read(10u64));
        let _t1 = rob.push(Request::read(11u64));
        let t2 = rob.push(Request::read(12u64));
        let taken = rob.take(&[t2, t0]);
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].request.id.0, 10, "queue order preserved");
        assert_eq!(taken[1].request.id.0, 12);
        assert_eq!(rob.len(), 1);
        assert_eq!(rob.window(5).next().unwrap().request.id.0, 11);
    }

    #[test]
    fn io_issue_flag_sticks() {
        let mut rob = RobTable::new();
        let t = rob.push(Request::read(5u64));
        rob.mark_io_issued(t);
        assert!(rob.window(1).next().unwrap().io_issued);
    }

    #[test]
    fn take_of_unknown_ticket_is_noop() {
        let mut rob = RobTable::new();
        rob.push(Request::read(1u64));
        assert!(rob.take(&[99]).is_empty());
        assert_eq!(rob.len(), 1);
    }
}

//! The secure scheduler (paper §4.2).
//!
//! Each scheduling cycle groups `c` memory-serviceable requests with
//! exactly one I/O load, so every cycle presents the identical observable
//! shape — `c` path accesses on the memory bus overlapped with one block
//! read on the I/O bus — regardless of the actual hit/miss mix ("each
//! scheduling group has the same hit and miss pattern", §4.4.2). Shortfalls
//! are padded: missing hits become dummy path accesses, a missing miss
//! becomes a dummy I/O load.
//!
//! The planner scans the first `d` ROB entries (`d > c`, the prefetch
//! distance) exactly as in Figure 4-2: hits anywhere in the window may be
//! hoisted, and the first available miss is issued so its block is in
//! memory by the time its request's turn comes.
//!
//! Callers normally reach the planner through
//! [`RequestQueue::plan`](crate::queue::RequestQueue::plan), which owns
//! the ROB being scanned; [`plan_cycle`] stays public for direct
//! experimentation with scheduler policies.

use crate::rob::{RobEntry, RobTable};
use oram_protocols::types::BlockId;

/// The plan for one scheduling cycle.
#[derive(Debug)]
pub struct CyclePlan {
    /// Requests serviced in memory this cycle (removed from the ROB).
    pub hits: Vec<RobEntry>,
    /// The ROB ticket whose miss I/O is issued this cycle, if any.
    pub miss_ticket: Option<u64>,
    /// The block the I/O load targets (`None` ⇒ dummy load).
    pub miss_block: Option<BlockId>,
    /// Dummy path accesses needed to pad the memory half to `c`.
    pub dummy_memory: u32,
    /// The grouping factor used for this cycle.
    pub c: u32,
}

impl CyclePlan {
    /// Whether the I/O half of the cycle is a dummy load.
    pub fn io_is_dummy(&self) -> bool {
        self.miss_block.is_none()
    }
}

/// Plans one cycle: removes up to `c` hit entries from the ROB's first
/// `d` positions, selects the first un-issued miss in the window, and
/// computes padding. `is_hit` is the control layer's permutation-list
/// test.
pub fn plan_cycle(
    rob: &mut RobTable,
    c: u32,
    d: usize,
    mut is_hit: impl FnMut(BlockId) -> bool,
) -> CyclePlan {
    let mut hit_tickets: Vec<u64> = Vec::with_capacity(c as usize);
    let mut miss: Option<(u64, BlockId)> = None;

    for entry in rob.window(d) {
        let id = entry.request.id;
        if is_hit(id) {
            if hit_tickets.len() < c as usize {
                hit_tickets.push(entry.ticket);
            }
        } else if miss.is_none() && !entry.io_issued {
            miss = Some((entry.ticket, id));
        }
        if hit_tickets.len() == c as usize && miss.is_some() {
            break;
        }
    }

    if let Some((ticket, _)) = miss {
        rob.mark_io_issued(ticket);
    }
    let hits = rob.take(&hit_tickets);
    let dummy_memory = c - hits.len() as u32;
    CyclePlan {
        hits,
        miss_ticket: miss.map(|(t, _)| t),
        miss_block: miss.map(|(_, b)| b),
        dummy_memory,
        c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_protocols::types::Request;
    use std::collections::HashSet;

    fn rob_with(ids: &[u64]) -> RobTable {
        let mut rob = RobTable::new();
        for &id in ids {
            rob.push(Request::read(id));
        }
        rob
    }

    #[test]
    fn groups_c_hits_and_one_miss() {
        // Memory-resident: even ids. Queue: H H M H M …
        let mut rob = rob_with(&[0, 2, 1, 4, 3]);
        let plan = plan_cycle(&mut rob, 3, 9, |id| id.0 % 2 == 0);
        assert_eq!(plan.hits.len(), 3);
        let hit_ids: HashSet<u64> = plan.hits.iter().map(|e| e.request.id.0).collect();
        assert_eq!(hit_ids, HashSet::from([0, 2, 4]));
        assert_eq!(plan.miss_block, Some(BlockId(1)));
        assert_eq!(plan.dummy_memory, 0);
        assert!(!plan.io_is_dummy());
        // Misses stay queued.
        assert_eq!(rob.len(), 2);
    }

    #[test]
    fn pads_memory_when_hits_are_scarce() {
        let mut rob = rob_with(&[1, 3, 5]); // all misses
        let plan = plan_cycle(&mut rob, 3, 9, |_| false);
        assert!(plan.hits.is_empty());
        assert_eq!(plan.dummy_memory, 3);
        assert_eq!(plan.miss_block, Some(BlockId(1)));
        assert_eq!(rob.len(), 3, "misses remain until their block lands");
    }

    #[test]
    fn pads_io_when_no_miss_in_window() {
        let mut rob = rob_with(&[0, 2, 4]);
        let plan = plan_cycle(&mut rob, 2, 9, |_| true);
        assert_eq!(plan.hits.len(), 2);
        assert!(plan.io_is_dummy());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn window_bounds_the_scan() {
        // Miss sits beyond the window: cycle must use a dummy load.
        let mut rob = rob_with(&[0, 2, 4, 6, 1]);
        let plan = plan_cycle(&mut rob, 2, 3, |id| id.0 % 2 == 0);
        assert!(plan.io_is_dummy(), "miss at position 4 is outside d=3");
        assert_eq!(plan.hits.len(), 2);
    }

    #[test]
    fn issued_misses_are_not_reissued() {
        let mut rob = rob_with(&[1, 3]);
        let first = plan_cycle(&mut rob, 1, 9, |_| false);
        assert_eq!(first.miss_block, Some(BlockId(1)));
        // Same state (block 1 still "in flight", not yet a hit): the next
        // cycle must pick block 3, not re-issue block 1.
        let second = plan_cycle(&mut rob, 1, 9, |_| false);
        assert_eq!(second.miss_block, Some(BlockId(3)));
    }

    #[test]
    fn duplicate_requests_share_one_io() {
        let mut rob = rob_with(&[7, 7]);
        let first = plan_cycle(&mut rob, 1, 9, |_| false);
        assert_eq!(first.miss_block, Some(BlockId(7)));
        // After the fetch the block is a hit; both requests now service in
        // memory without further I/O.
        let second = plan_cycle(&mut rob, 2, 9, |id| id.0 == 7);
        assert_eq!(second.hits.len(), 2);
        assert!(second.io_is_dummy());
        assert!(rob.is_empty());
    }

    #[test]
    fn hoists_hits_from_behind_a_miss() {
        // Figure 4-2's core behaviour: H1..H3 behind M1 are grouped with
        // M1's load in one cycle.
        let mut rob = rob_with(&[9, 0, 2, 4]);
        let plan = plan_cycle(&mut rob, 3, 9, |id| id.0 % 2 == 0);
        assert_eq!(plan.miss_block, Some(BlockId(9)));
        assert_eq!(plan.hits.len(), 3);
    }
}

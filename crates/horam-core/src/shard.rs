//! Sharded H-ORAM: the logical address space partitioned across `N`
//! fully independent instances.
//!
//! One [`HOram`] funnels every request through a
//! single storage device and one shuffle schedule, so aggregate
//! throughput is capped by one device queue no matter how many tenants
//! submit. [`ShardedOram`] removes that ceiling the way parallel
//! oblivious memories do (Palermo, BIOS ORAM): split the address space
//! into `N` banks, give each bank its *own* complete H-ORAM instance —
//! private storage device, memory tree, stash, permutation list and
//! shuffle schedule — and drive the banks concurrently in simulated time.
//!
//! **Address partitioning.** A keyed Feistel PRP π over the padded
//! domain `shards · ⌈N/shards⌉` maps each logical id to
//! `(shard, local) = (π(id) / cap, π(id) mod cap)`. The PRP is keyed from
//! the instance master key, so the shard an address lands on is
//! pseudorandom and balanced: each shard owns exactly `cap` images, and
//! any workload's blocks spread near-uniformly. Because π is a secret
//! bijection, the adversary's view of *which shard* serves an access is
//! the image of the request sequence under a secret permutation — the
//! partition-repeat pattern of Stefanov-style partition ORAMs. Within
//! each shard, the full H-ORAM obliviousness argument applies unchanged;
//! see `docs/ARCHITECTURE.md` §7 for the complete leakage discussion.
//!
//! **Clock interleaving.** Each shard keeps its own device clock, which
//! advances only while that shard works. The sharded instance exposes one
//! shared clock — the **frontier**, the maximum over the per-shard
//! timelines — updated after every
//! [`run_cycle_window`](ShardedOram::run_cycle_window) round-robin round.
//! The shards have no cross-shard data dependencies, so their windows
//! (and the shuffle periods they trigger) execute fully concurrently in
//! simulated time: elapsed time is the *busiest* shard's busy time, not
//! the sum, and aggregate I/O time approaches max-per-shard — which is
//! where the throughput scaling comes from (see `bench --bin sharding`).
//! Per-shard device time stays exact; what the frontier abstracts away is
//! arrival timing (a request is processed where its shard's timeline
//! stands, even if other shards have advanced further), matching the
//! deep-queue regime the serving layer and benches operate in.
//!
//! **Pipelining.** The cycle pipeline (`horam_core::pipeline`, PR 10)
//! composes per shard: the depth knob rides the shared base
//! configuration, and [`run_cycle_burst`](ShardedOram::run_cycle_burst)
//! hands each shard several windows per round so its local lookahead can
//! engage. Shards share no mutable state, so burst rounds are
//! byte-identical to single-window rounds — see the method docs and
//! `docs/PIPELINE.md` for the composition argument.

use crate::config::HOramConfig;
use crate::engine::OramEngine;
use crate::error::HOramError;
use crate::horam::HOram;
use crate::persist::{self, KIND_SHARDED, SNAPSHOT_DOMAIN};
use crate::pool::WorkerPool;
use crate::stats::HOramStats;
use oram_crypto::keys::{MasterKey, SubKeys};
use oram_crypto::persist::{open_envelope, seal_envelope, StateReader, StateWriter};
use oram_crypto::prp::FeistelPrp;
use oram_protocols::error::OramError;
use oram_protocols::oram_trait::Oram;
use oram_protocols::types::{BlockId, Request, RequestOp};
use oram_storage::clock::{SimClock, SimTime};
use oram_storage::hierarchy::MemoryHierarchy;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of a sharded instance: the aggregate geometry plus the
/// shard count.
///
/// The aggregate `capacity` and `memory_slots` of [`base`](Self::base)
/// are *divided* across the shards (each shard gets
/// `⌈capacity/shards⌉` blocks and `⌊memory_slots/shards⌋` tree slots),
/// so a sharded instance never exceeds the total memory budget of the
/// single instance it replaces — the comparison the sharding bench
/// makes. The floor division drops up to `shards − 1` remainder slots
/// (conservative for that comparison); a budget too small to give every
/// shard at least one bucket is rejected by [`validate`](Self::validate)
/// rather than silently inflated.
///
/// # Example
///
/// ```
/// use horam_core::config::HOramConfig;
/// use horam_core::shard::ShardedConfig;
///
/// let config = ShardedConfig::new(HOramConfig::new(4096, 16, 1024), 4);
/// assert_eq!(config.shard_capacity(), 1024);
/// assert_eq!(config.shard_config(0).memory_slots, 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedConfig {
    /// Aggregate geometry and scheduling knobs; every per-shard option
    /// (stage schedule, prefetch distance, `io_batch`, shuffles) is
    /// inherited unchanged.
    pub base: HOramConfig,
    /// Number of independent instances the address space is split over.
    pub shards: u64,
}

impl ShardedConfig {
    /// Wraps an aggregate configuration with a shard count.
    pub fn new(base: HOramConfig, shards: u64) -> Self {
        Self { base, shards }
    }

    /// Validates cross-field constraints. Called by [`ShardedOram::new`].
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, more shards than blocks, or an
    /// inconsistent per-shard configuration (see [`HOramConfig::validate`]).
    pub fn validate(&self) {
        assert!(self.shards >= 1, "at least one shard required");
        assert!(
            self.shards <= self.base.capacity,
            "more shards ({}) than blocks ({})",
            self.shards,
            self.base.capacity
        );
        self.shard_config(0).validate();
    }

    /// Blocks per shard: `⌈capacity / shards⌉`.
    pub fn shard_capacity(&self) -> u64 {
        self.base.capacity.div_ceil(self.shards)
    }

    /// The padded PRP domain (`shards · shard_capacity ≥ capacity`).
    pub fn mapped_domain(&self) -> u64 {
        self.shard_capacity() * self.shards
    }

    /// The configuration one shard runs under: per-shard capacity and
    /// memory budget, a shard-distinct protocol seed, everything else
    /// inherited from [`base`](Self::base).
    pub fn shard_config(&self, shard: u64) -> HOramConfig {
        let mut config = self.base.clone();
        config.capacity = self.shard_capacity();
        // Floor division: the sharded instance may under-use, but never
        // exceed, the aggregate budget. A share below one bucket fails
        // the per-shard validation instead of being clamped up.
        config.memory_slots = self.base.memory_slots / self.shards;
        // Distinct per-shard seeds keep dummy/permutation randomness
        // independent across shards (key material is separately derived
        // from the master key; the seed only decorrelates replayable
        // protocol choices).
        config.seed = self
            .base
            .seed
            .wrapping_add(shard.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // One level of wall-clock parallelism: the sharded instance owns
        // the worker pool and dispatches whole shards onto it, so each
        // shard runs its own crypto serially (nesting pools would only
        // oversubscribe the same cores). A standalone instance keeps the
        // base thread count and parallelizes its shuffle stream instead.
        config.worker_threads = 1;
        // A durable recursive position map gets a per-shard subdirectory
        // so the shards' level files never collide.
        if let crate::config::PosmapMode::Recursive(rcfg) = &mut config.posmap {
            if let Some(dir) = &rcfg.backing_dir {
                rcfg.backing_dir = Some(format!("{dir}/shard-{shard}"));
            }
        }
        config
    }
}

/// Where the mapper routed a logical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlot {
    /// The owning shard's index.
    pub shard: u64,
    /// The shard-local block id.
    pub local: BlockId,
}

/// The keyed address-space partition: a Feistel PRP over the padded
/// domain, split contiguously into per-shard ranges.
///
/// Routing is a pure function of `(key, id)`: deterministic for the
/// instance lifetime (a block's shard never changes), bijective (distinct
/// ids never collide on `(shard, local)`), and pseudorandom (the shard an
/// id lands on is unpredictable without the key, and shard loads are
/// balanced for *any* workload, adversarial or not).
#[derive(Debug, Clone)]
pub struct ShardMapper {
    prp: FeistelPrp,
    shards: u64,
    shard_capacity: u64,
}

impl ShardMapper {
    /// Builds a mapper for `capacity` logical blocks over `shards` shards,
    /// keyed by `key`.
    ///
    /// # Errors
    ///
    /// Propagates PRP construction errors (empty domain).
    pub fn new(key: [u8; 16], capacity: u64, shards: u64) -> Result<Self, OramError> {
        assert!(shards >= 1, "at least one shard required");
        let shard_capacity = capacity.div_ceil(shards);
        let prp = FeistelPrp::new(key, shard_capacity * shards)?;
        Ok(Self {
            prp,
            shards,
            shard_capacity,
        })
    }

    /// Number of shards addresses are split across.
    pub fn shards(&self) -> u64 {
        self.shards
    }

    /// Blocks per shard.
    pub fn shard_capacity(&self) -> u64 {
        self.shard_capacity
    }

    /// Routes a logical id to its `(shard, local)` slot.
    ///
    /// # Errors
    ///
    /// Propagates [`OramError::Crypto`] for ids outside the padded domain
    /// (callers validate against the logical capacity first).
    pub fn route(&self, id: BlockId) -> Result<ShardSlot, OramError> {
        let image = self.prp.permute(id.0)?;
        Ok(ShardSlot {
            shard: image / self.shard_capacity,
            local: BlockId(image % self.shard_capacity),
        })
    }

    /// The shard a logical id lives on (workload-balance reporting).
    ///
    /// # Errors
    ///
    /// As [`route`](Self::route).
    pub fn shard_of(&self, id: BlockId) -> Result<u64, OramError> {
        Ok(self.route(id)?.shard)
    }
}

/// A response ticket's routing entry: which shard carries it, under which
/// shard-local ticket.
#[derive(Debug, Clone, Copy)]
struct TicketRoute {
    shard: usize,
    local_ticket: u64,
}

/// The quarantine-and-restore machinery: a factory for fresh per-shard
/// hierarchies plus the last per-shard checkpoint, captured by
/// [`ShardedOram::enable_recovery`] /
/// [`ShardedOram::refresh_checkpoints`]. With a kit installed, a shard
/// that fails authentication (or any other non-permanent fault) is
/// rebuilt from its checkpoint instead of degrading.
struct RecoveryKit {
    hierarchy_for: Box<dyn FnMut(u64) -> MemoryHierarchy + Send>,
    /// One sealed [`HOram::snapshot`] per shard.
    checkpoints: Vec<Vec<u8>>,
}

impl std::fmt::Debug for RecoveryKit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryKit")
            .field("checkpoints", &self.checkpoints.len())
            .finish_non_exhaustive()
    }
}

/// `N` independent H-ORAM instances behind one address space.
///
/// See the [module docs](self) for the partitioning and timing model.
///
/// # Example
///
/// ```
/// use horam_core::config::HOramConfig;
/// use horam_core::shard::{ShardedConfig, ShardedOram};
/// use oram_crypto::keys::MasterKey;
/// use oram_protocols::{BlockId, Oram};
/// use oram_storage::MemoryHierarchy;
///
/// # fn main() -> Result<(), oram_protocols::OramError> {
/// let config = ShardedConfig::new(HOramConfig::new(256, 16, 64).with_seed(1), 4);
/// let mut oram = ShardedOram::new(config, MasterKey::from_bytes([1; 32]), |_| {
///     MemoryHierarchy::dac2019()
/// })?;
/// oram.write(BlockId(3), &[7u8; 16])?;
/// assert_eq!(oram.read(BlockId(3))?, vec![7u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedOram {
    config: ShardedConfig,
    mapper: ShardMapper,
    shards: Vec<HOram>,
    clock: SimClock,
    routes: HashMap<u64, TicketRoute>,
    next_ticket: u64,
    /// Wall-clock worker pool the pump dispatches shard windows onto
    /// (`None` at `worker_threads = 1` — the serial round-robin).
    workers: Option<Arc<WorkerPool>>,
    /// Keys sealing this instance's manifest snapshots.
    snapshot_keys: SubKeys,
    /// Per-shard derived master keys, retained so a quarantined shard can
    /// be restored from its checkpoint without the instance master.
    shard_masters: Vec<MasterKey>,
    /// Quarantine-and-restore state; `None` until
    /// [`enable_recovery`](Self::enable_recovery).
    recovery: Option<RecoveryKit>,
    /// Per-shard degradation reason; `Some` marks the shard out of
    /// service (its requests fail typed, the rest keep serving).
    degraded: Vec<Option<String>>,
    /// Failures recorded for tickets lost to a shard failure, collected
    /// via [`take_failure`](Self::take_failure).
    failures: HashMap<u64, HOramError>,
    /// Checkpoint restores performed after shard failures.
    recoveries: u64,
}

/// Shard instances are moved onto pool workers by reference; everything
/// inside an [`HOram`] is owned or `Arc`-shared (clock, trace), so this
/// holds by construction — the compile-time check keeps it that way.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<HOram>();
    assert_send::<ShardedOram>();
};

impl ShardedOram {
    /// The address-partition PRP key, derived from the instance master.
    /// One derivation site shared by [`new`](Self::new) and
    /// [`restore`](Self::restore) — the two construction paths must
    /// agree byte-for-byte or restored instances route to wrong shards.
    fn derive_map_key(master: &MasterKey) -> [u8; 16] {
        *master.derive("horam/shard-map", 0).prp()
    }

    /// One shard's computationally independent master key, derived from
    /// the instance master. Shared by [`new`](Self::new) and
    /// [`restore`](Self::restore) for the same reason as
    /// [`derive_map_key`](Self::derive_map_key).
    fn derive_shard_master(master: &MasterKey, shard: u64) -> MasterKey {
        MasterKey::from_bytes(*master.derive("horam/shard", shard).encryption())
    }

    /// Builds the sharded instance: one full [`HOram`] per shard, each on
    /// its own hierarchy from `hierarchy_for`, all keyed from independent
    /// derivations of `master`.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from any shard's initial layout.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`ShardedConfig::validate`]).
    pub fn new(
        config: ShardedConfig,
        master: MasterKey,
        mut hierarchy_for: impl FnMut(u64) -> MemoryHierarchy,
    ) -> Result<Self, OramError> {
        config.validate();
        let mapper = ShardMapper::new(
            Self::derive_map_key(&master),
            config.base.capacity,
            config.shards,
        )?;
        let mut shards = Vec::with_capacity(config.shards as usize);
        let mut shard_masters = Vec::with_capacity(config.shards as usize);
        for shard in 0..config.shards {
            // Each shard gets a computationally independent master key, so
            // shard devices never share encryption/PRP material.
            let shard_master = Self::derive_shard_master(&master, shard);
            shards.push(HOram::new(
                config.shard_config(shard),
                hierarchy_for(shard),
                shard_master.clone(),
            )?);
            shard_masters.push(shard_master);
        }
        let workers = WorkerPool::for_threads(config.base.worker_threads);
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let degraded = vec![None; shards.len()];
        Ok(Self {
            config,
            mapper,
            shards,
            clock: SimClock::new(),
            routes: HashMap::new(),
            next_ticket: 0,
            workers,
            snapshot_keys,
            shard_masters,
            recovery: None,
            degraded,
            failures: HashMap::new(),
            recoveries: 0,
        })
    }

    /// Seals the sharded instance's trusted state: a manifest (geometry,
    /// ticket routing, shared clock) plus one embedded
    /// [`HOram::snapshot`] per shard, each sealed under its own shard's
    /// derived keys. Every shard's durable device commits before its
    /// snapshot is taken, so one manifest describes one consistent
    /// checkpoint across all shards.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] if any shard has requests queued;
    /// storage backend errors propagate.
    pub fn snapshot(&mut self) -> Result<Vec<u8>, OramError> {
        if let Some(shard) = self.degraded_shards().first() {
            return Err(OramError::SnapshotInvalid {
                reason: format!("shard {shard} is degraded; a checkpoint would lose its blocks"),
            });
        }
        if !self.is_drained() {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "{} requests still queued; drain before snapshotting",
                    self.pending()
                ),
            });
        }
        let mut w = StateWriter::new();
        persist::save_config(&self.config.base, &mut w);
        w.put_u64(self.config.shards);
        w.put_u64(self.clock.now().as_nanos());
        w.put_u64(self.next_ticket);
        // Outstanding ticket routes (responses produced but not yet
        // collected), in ticket order for byte-stable manifests.
        let mut routes: Vec<(u64, TicketRoute)> =
            self.routes.iter().map(|(t, r)| (*t, *r)).collect();
        routes.sort_unstable_by_key(|(t, _)| *t);
        w.put_usize(routes.len());
        for (ticket, route) in routes {
            w.put_u64(ticket);
            w.put_usize(route.shard);
            w.put_u64(route.local_ticket);
        }
        for shard in &mut self.shards {
            let sealed = shard.snapshot()?;
            w.put_bytes(&sealed);
        }
        let body = w.into_bytes();
        let seq = persist::envelope_seq(&self.snapshot_keys, &body);
        Ok(seal_envelope(&self.snapshot_keys, KIND_SHARDED, seq, &body))
    }

    /// Rebuilds a sharded instance from a manifest sealed by
    /// [`snapshot`](Self::snapshot), the same master key, and one fresh
    /// hierarchy per shard (durable shards' device files roll back to the
    /// manifest's checkpoint on open). Byte-equivalent continuation, as
    /// for [`HOram::restore`].
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] for truncated, corrupted,
    /// wrong-key, or geometry-incompatible manifests; restores fail
    /// closed.
    pub fn restore(
        master: MasterKey,
        mut hierarchy_for: impl FnMut(u64) -> MemoryHierarchy,
        snapshot: &[u8],
    ) -> Result<Self, OramError> {
        let snapshot_keys = master.derive(SNAPSHOT_DOMAIN, 0);
        let body = open_envelope(&snapshot_keys, KIND_SHARDED, snapshot)?;
        let mut r = StateReader::new(&body);
        let base = persist::load_config(&mut r)?;
        let shard_count = r.get_u64()?;
        let config = ShardedConfig::new(base, shard_count);
        config.validate();
        let clock_nanos = r.get_u64()?;
        let next_ticket = r.get_u64()?;
        let route_count = r.get_usize()?;
        let mut routes = HashMap::with_capacity(route_count);
        for _ in 0..route_count {
            let ticket = r.get_u64()?;
            let shard = r.get_usize()?;
            let local_ticket = r.get_u64()?;
            if shard >= shard_count as usize {
                return Err(OramError::SnapshotInvalid {
                    reason: format!("ticket route to shard {shard} of {shard_count}"),
                });
            }
            routes.insert(
                ticket,
                TicketRoute {
                    shard,
                    local_ticket,
                },
            );
        }
        let mapper = ShardMapper::new(
            Self::derive_map_key(&master),
            config.base.capacity,
            config.shards,
        )?;
        let mut shards = Vec::with_capacity(shard_count as usize);
        let mut shard_masters = Vec::with_capacity(shard_count as usize);
        for shard in 0..shard_count {
            let sealed = r.get_bytes()?;
            let shard_master = Self::derive_shard_master(&master, shard);
            shards.push(HOram::restore(
                hierarchy_for(shard),
                shard_master.clone(),
                sealed,
            )?);
            shard_masters.push(shard_master);
        }
        r.finish()?;
        let clock = SimClock::new();
        clock.advance(oram_storage::clock::SimDuration::from_nanos(clock_nanos));
        let workers = WorkerPool::for_threads(config.base.worker_threads);
        let degraded = vec![None; shards.len()];
        Ok(Self {
            config,
            mapper,
            shards,
            clock,
            routes,
            next_ticket,
            workers,
            snapshot_keys,
            shard_masters,
            recovery: None,
            degraded,
            failures: HashMap::new(),
            recoveries: 0,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The address-space partition (for balance reporting and tests).
    pub fn mapper(&self) -> &ShardMapper {
        &self.mapper
    }

    /// The shard instances, in index order.
    pub fn shards(&self) -> &[HOram] {
        &self.shards
    }

    /// The shared simulated clock the round-robin pump advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Per-shard run statistics, in shard-index order.
    pub fn shard_stats(&self) -> Vec<HOramStats> {
        self.shards.iter().map(HOram::stats).collect()
    }

    /// Aggregate run statistics: the field-wise sum over shards. Counter
    /// fields aggregate exactly; the time fields are summed *busy* time
    /// across shards, which exceeds elapsed time when shards overlap — use
    /// [`clock`](Self::clock) for the concurrent-elapsed view.
    pub fn stats(&self) -> HOramStats {
        self.shards
            .iter()
            .map(HOram::stats)
            .fold(HOramStats::default(), |acc, s| acc + s)
    }

    /// Aggregate block-cache counters over shards whose storage device
    /// has a cache installed; `None` when no shard is cached.
    pub fn cache_stats(&self) -> Option<oram_storage::cache::CacheStats> {
        let mut merged: Option<oram_storage::cache::CacheStats> = None;
        for shard in &self.shards {
            if let Some(stats) = shard.cache_stats() {
                merged.get_or_insert_with(Default::default).merge(&stats);
            }
        }
        merged
    }

    /// Checks a request against the *aggregate* geometry without queueing
    /// it (errors report logical, not shard-local, coordinates).
    ///
    /// # Errors
    ///
    /// [`OramError::BlockOutOfRange`] / [`OramError::PayloadSize`], as
    /// [`enqueue`](Self::enqueue).
    pub fn validate(&self, request: &Request) -> Result<(), OramError> {
        if request.id.0 >= self.config.base.capacity {
            return Err(OramError::BlockOutOfRange {
                id: request.id.0,
                capacity: self.config.base.capacity,
            });
        }
        if let RequestOp::Write(payload) = &request.op {
            if payload.len() != self.config.base.payload_len {
                return Err(OramError::PayloadSize {
                    expected: self.config.base.payload_len,
                    got: payload.len(),
                });
            }
        }
        Ok(())
    }

    /// Routes and queues a request on its owning shard; returns a ticket
    /// scoped to the sharded instance.
    ///
    /// # Errors
    ///
    /// As [`validate`](Self::validate) — invalid requests are rejected
    /// before routing, so they never reach (or reveal) a shard.
    /// [`HOramError::ShardDegraded`] when the owning shard is quarantined;
    /// the request is rejected without any observable access, and requests
    /// to healthy shards keep flowing.
    pub fn enqueue(&mut self, request: Request) -> Result<u64, HOramError> {
        self.validate(&request).map_err(HOramError::from)?;
        let slot = self.mapper.route(request.id).map_err(HOramError::from)?;
        if let Some(reason) = &self.degraded[slot.shard as usize] {
            return Err(HOramError::ShardDegraded {
                shard: slot.shard as usize,
                reason: reason.clone(),
            });
        }
        let local = Request {
            id: slot.local,
            op: request.op,
        };
        let local_ticket = self.shards[slot.shard as usize]
            .enqueue(local)
            .map_err(HOramError::from)?;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.routes.insert(
            ticket,
            TicketRoute {
                shard: slot.shard as usize,
                local_ticket,
            },
        );
        Ok(ticket)
    }

    /// Removes and returns the response for `ticket`, if it has been
    /// serviced.
    pub fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        let route = *self.routes.get(&ticket)?;
        let response = self.shards[route.shard].take_response(route.local_ticket)?;
        self.routes.remove(&ticket);
        Some(response)
    }

    /// Total requests queued and not yet serviced, across *healthy*
    /// shards. A degraded shard's queue is abandoned (its tickets already
    /// resolved to typed failures), so it never keeps the pump spinning.
    pub fn pending(&self) -> usize {
        self.shards
            .iter()
            .zip(&self.degraded)
            .filter(|(_, d)| d.is_none())
            .map(|(s, _)| s.queue().pending())
            .sum()
    }

    /// Whether every healthy shard's queue has drained.
    pub fn is_drained(&self) -> bool {
        self.pending() == 0
    }

    /// One round-robin pump round: every shard with pending work runs one
    /// I/O window of up to `max_cycles` cycles
    /// ([`HOram::run_cycle_window`]), then the shared clock advances to
    /// the **frontier** — the maximum over the per-shard timelines. The
    /// shards' windows (and any shuffle periods they trigger) execute
    /// fully concurrently in simulated time; idle shards cost nothing.
    /// Returns the total cycles executed this round.
    ///
    /// With `worker_threads > 1` the busy shards' windows also execute
    /// concurrently in **wall-clock** time: each is dispatched to the
    /// worker pool, and the round barriers before the frontier merge.
    /// Shards share no mutable state (own device, tree, stash, RNG), so
    /// responses, traces, and stats are byte-identical to the serial
    /// round at any thread count — only real elapsed time changes. The
    /// frontier merge itself is unchanged: per-shard clocks advance only
    /// while their shard works, whichever OS thread does the working.
    ///
    /// # Errors
    ///
    /// Per-shard failures do **not** propagate: a shard whose window
    /// errors is handed to the quarantine machinery — every uncollected
    /// ticket routed to it resolves to a typed failure (see
    /// [`take_failure`](Self::take_failure)), and the shard is either
    /// restored from its checkpoint (when a [recovery
    /// kit](Self::enable_recovery) is installed and the fault is not
    /// permanent media failure) or marked degraded while the remaining
    /// shards keep serving. `Err` from this method therefore means the
    /// engine as a whole cannot continue, which the current absorption
    /// policy never concludes — the signature reserves the channel.
    /// When several shards fail in one threaded round they are processed
    /// in shard-index order (the order the serial round encounters them).
    ///
    /// # Panics
    ///
    /// Panics if `max_cycles` is zero. A panic inside a threaded shard
    /// task propagates to this caller after the round's barrier — it
    /// cannot deadlock the pump.
    pub fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, HOramError> {
        self.run_cycle_burst(max_cycles, 1)
    }

    /// A pump round of up to `max_windows` I/O windows per shard
    /// ([`HOram::run_cycle_burst`]): each busy shard runs its burst —
    /// engaging its cycle pipeline when the shared configuration sets a
    /// depth above one — and the shared clock advances to the frontier
    /// once, after the round.
    ///
    /// Pipelining composes with sharding per shard: the depth knob rides
    /// the shared base [`HOramConfig`], so
    /// every shard resolves the same depth, and each shard's lookahead
    /// planning is entirely local (its own ROB, position map, hazard
    /// ledger, RNG). Because shards share no mutable state, handing a
    /// shard `n` windows at once is byte-identical to interleaving the
    /// same windows round-robin — the round shape only changes wall-clock
    /// overlap, never responses, traces, statistics, or the frontier.
    /// Note the per-shard worker pool is distinct from the sharded
    /// instance's own: the sharded pool parallelizes *across* shards
    /// (each shard is forced to `worker_threads = 1` internally), so at
    /// shard counts ≥ 2 the intra-shard commit overlap falls back to the
    /// serial open-then-plan-ahead path while cross-shard rounds
    /// parallelize — the profitable split on every host we target.
    ///
    /// # Errors / Panics
    ///
    /// As [`run_cycle_window`](Self::run_cycle_window); additionally
    /// panics if `max_windows` is zero.
    pub fn run_cycle_burst(
        &mut self,
        max_cycles: u64,
        max_windows: u64,
    ) -> Result<u64, HOramError> {
        assert!(
            max_cycles >= 1,
            "a cycle window must cover at least one cycle"
        );
        assert!(max_windows >= 1, "a burst must cover at least one window");
        let busy = self
            .shards
            .iter()
            .zip(&self.degraded)
            .filter(|(shard, down)| down.is_none() && !shard.queue().is_drained())
            .count();
        let mut executed = 0;
        let mut failed: Vec<(usize, OramError)> = Vec::new();
        match self.workers.clone() {
            // Threading pays only when two or more shards have work this
            // round; a lone busy shard runs on the caller, serially.
            Some(pool) if busy > 1 => {
                let mut results: Vec<Option<Result<u64, OramError>>> =
                    (0..self.shards.len()).map(|_| None).collect();
                let degraded = &self.degraded;
                pool.scope(|scope| {
                    for (index, (shard, slot)) in
                        self.shards.iter_mut().zip(results.iter_mut()).enumerate()
                    {
                        if degraded[index].is_some() || shard.queue().is_drained() {
                            continue;
                        }
                        scope.spawn(move || {
                            *slot = Some(shard.run_cycle_burst(max_cycles, max_windows));
                        });
                    }
                });
                // Merge in shard-index order — deterministic totals and
                // deterministic failure-handling order.
                for (index, result) in results.into_iter().enumerate() {
                    match result {
                        Some(Ok(cycles)) => executed += cycles,
                        Some(Err(e)) => failed.push((index, e)),
                        None => {}
                    }
                }
            }
            _ => {
                for (index, shard) in self.shards.iter_mut().enumerate() {
                    if self.degraded[index].is_some() || shard.queue().is_drained() {
                        continue;
                    }
                    match shard.run_cycle_burst(max_cycles, max_windows) {
                        Ok(cycles) => executed += cycles,
                        Err(e) => failed.push((index, e)),
                    }
                }
            }
        }
        for (index, error) in failed {
            self.handle_shard_failure(index, error);
        }
        self.advance_to_frontier();
        Ok(executed)
    }

    /// Absorbs one shard's window failure: fails every uncollected ticket
    /// routed to it with a typed error, then either restores the shard
    /// from its checkpoint or quarantines it. Permanent media failures
    /// ([`StorageError::PermanentFault`](oram_storage::StorageError))
    /// always degrade — re-mounting the same dead device would fail the
    /// same way; anything else (authentication failures from corrupted
    /// blocks, exhausted transient faults, invariant violations) is
    /// recoverable from the last checkpoint when a kit is installed.
    fn handle_shard_failure(&mut self, shard: usize, error: OramError) {
        let lost: Vec<u64> = self
            .routes
            .iter()
            .filter(|(_, route)| route.shard == shard)
            .map(|(ticket, _)| *ticket)
            .collect();
        let permanent = matches!(
            &error,
            OramError::Storage(oram_storage::StorageError::PermanentFault { .. })
        );
        let restored = !permanent
            && match self.recovery.as_mut() {
                Some(kit) => {
                    let hierarchy = (kit.hierarchy_for)(shard as u64);
                    match HOram::restore(
                        hierarchy,
                        self.shard_masters[shard].clone(),
                        &kit.checkpoints[shard],
                    ) {
                        Ok(fresh) => {
                            self.shards[shard] = fresh;
                            self.recoveries += 1;
                            true
                        }
                        Err(_) => false,
                    }
                }
                None => false,
            };
        let ticket_error = if restored {
            HOramError::Protocol(error)
        } else {
            let reason = error.to_string();
            self.degraded[shard] = Some(reason.clone());
            HOramError::ShardDegraded { shard, reason }
        };
        for ticket in lost {
            self.routes.remove(&ticket);
            self.failures.insert(ticket, ticket_error.clone());
        }
    }

    /// Advances the shared clock to the busiest shard's timeline. Each
    /// shard clock only moves while that shard works, so the frontier is
    /// exactly `max_i(busy_i)` — the fully-concurrent elapsed time.
    fn advance_to_frontier(&self) {
        let frontier = self
            .shards
            .iter()
            .map(|s| s.clock().now())
            .max()
            .unwrap_or(SimTime::ZERO);
        let now = self.clock.now();
        if frontier > now {
            self.clock.advance(frontier.duration_since(now));
        }
    }

    /// Pumps round-robin until every healthy shard drains, then returns
    /// responses for the given tickets in order.
    ///
    /// # Errors
    ///
    /// A ticket lost to a shard failure reports its recorded typed
    /// failure; [`OramError::UnknownTicket`] for tickets never issued or
    /// already collected.
    pub fn drain(&mut self, tickets: &[u64]) -> Result<Vec<Vec<u8>>, HOramError> {
        // Burst rounds: each shard gets its resolved pipeline depth's
        // worth of windows per round (1 when sequential — exactly the
        // old round-robin), so per-shard lookahead engages while
        // draining. Every shard resolves the same depth from the shared
        // base configuration.
        let depth = self
            .shards
            .first()
            .map(|shard| shard.pipeline_depth())
            .unwrap_or(1);
        while !self.is_drained() {
            self.run_cycle_burst(self.config.base.io_batch, depth)?;
        }
        let mut out = Vec::with_capacity(tickets.len());
        for ticket in tickets {
            match self.take_response(*ticket) {
                Some(response) => out.push(response),
                None => {
                    return Err(self.take_failure(*ticket).unwrap_or(HOramError::Protocol(
                        OramError::UnknownTicket { ticket: *ticket },
                    )));
                }
            }
        }
        Ok(out)
    }

    /// Queues a whole batch and drains it — the shard-level counterpart
    /// of [`HOram::run_batch`].
    ///
    /// # Errors
    ///
    /// As [`drain`](Self::drain).
    pub fn run_batch(&mut self, requests: &[Request]) -> Result<Vec<Vec<u8>>, HOramError> {
        let tickets: Vec<u64> = requests
            .iter()
            .map(|r| self.enqueue(r.clone()))
            .collect::<Result<_, _>>()?;
        self.drain(&tickets)
    }

    /// Installs the quarantine-and-restore machinery: a factory producing
    /// a fresh hierarchy for any shard index, plus one checkpoint per
    /// shard captured *now*. After this, a shard failing with anything
    /// other than permanent media failure is rebuilt from its checkpoint
    /// (rolling back to it) instead of degrading; call
    /// [`refresh_checkpoints`](Self::refresh_checkpoints) after writes
    /// you want a future restore to keep.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] while requests are in flight or a
    /// shard is already degraded; storage errors propagate.
    pub fn enable_recovery(
        &mut self,
        hierarchy_for: impl FnMut(u64) -> MemoryHierarchy + Send + 'static,
    ) -> Result<(), OramError> {
        let mut kit = RecoveryKit {
            hierarchy_for: Box::new(hierarchy_for),
            checkpoints: Vec::new(),
        };
        self.recovery = None;
        kit.checkpoints = self.capture_checkpoints()?;
        self.recovery = Some(kit);
        Ok(())
    }

    /// Re-captures every shard's checkpoint so future restores roll back
    /// to the current state rather than the one
    /// [`enable_recovery`](Self::enable_recovery) saw.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] while requests are in flight, a
    /// shard is degraded, or no kit is installed; on error the previous
    /// checkpoints stay in effect.
    pub fn refresh_checkpoints(&mut self) -> Result<(), OramError> {
        if self.recovery.is_none() {
            return Err(OramError::SnapshotInvalid {
                reason: "no recovery kit installed".into(),
            });
        }
        let checkpoints = self.capture_checkpoints()?;
        if let Some(kit) = self.recovery.as_mut() {
            kit.checkpoints = checkpoints;
        }
        Ok(())
    }

    /// One [`HOram::snapshot`] per shard, for the recovery kit.
    fn capture_checkpoints(&mut self) -> Result<Vec<Vec<u8>>, OramError> {
        if let Some(shard) = self.degraded_shards().first() {
            return Err(OramError::SnapshotInvalid {
                reason: format!("shard {shard} is degraded; nothing left to checkpoint"),
            });
        }
        if !self.is_drained() {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "{} requests still queued; drain before checkpointing",
                    self.pending()
                ),
            });
        }
        self.shards.iter_mut().map(HOram::snapshot).collect()
    }

    /// Removes and returns the typed failure recorded for `ticket`, if
    /// its request was lost to a shard failure. A ticket resolves through
    /// exactly one of [`take_response`](Self::take_response) or this.
    pub fn take_failure(&mut self, ticket: u64) -> Option<HOramError> {
        self.failures.remove(&ticket)
    }

    /// Indices of quarantined shards, ascending. Empty while healthy.
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.degraded
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Checkpoint restores performed after shard failures so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Wraps one shard's storage store in a deterministic fault injector
    /// ([`HOram::inject_storage_faults`]) — the chaos tests' entry point
    /// for failing a single shard of a healthy, populated instance.
    pub fn inject_storage_faults(
        &mut self,
        shard: usize,
        config: oram_storage::fault::FaultConfig,
    ) {
        self.shards[shard].inject_storage_faults(config);
    }

    /// Injected-fault counters summed over shards with an injector
    /// installed; `None` when no shard is faulted.
    pub fn storage_fault_stats(&self) -> Option<oram_storage::fault::FaultStats> {
        let mut merged: Option<oram_storage::fault::FaultStats> = None;
        for shard in &self.shards {
            if let Some(stats) = shard.storage_fault_stats() {
                let acc = merged.get_or_insert_with(Default::default);
                acc.transient_reads += stats.transient_reads;
                acc.transient_writes += stats.transient_writes;
                acc.permanent_hits += stats.permanent_hits;
                acc.corruptions += stats.corruptions;
                acc.fsync_failures += stats.fsync_failures;
                acc.latency_spikes += stats.latency_spikes;
            }
        }
        merged
    }

    /// Storage retry counters summed over shards (volatile).
    pub fn storage_retry_stats(&self) -> oram_storage::device::RetryStats {
        let mut acc = oram_storage::device::RetryStats::default();
        for shard in &self.shards {
            let s = shard.storage_retry_stats();
            acc.retries += s.retries;
            acc.backoff_nanos += s.backoff_nanos;
            acc.exhausted += s.exhausted;
        }
        acc
    }

    /// Clears all timing/tracing/statistics state on every shard and the
    /// shared clock (not data).
    pub fn reset_accounting(&mut self) {
        for shard in &mut self.shards {
            shard.reset_accounting();
        }
        self.clock.reset();
    }
}

impl OramEngine for ShardedOram {
    fn validate(&self, request: &Request) -> Result<(), OramError> {
        self.validate(request)
    }

    fn enqueue(&mut self, request: Request) -> Result<u64, HOramError> {
        self.enqueue(request)
    }

    fn take_response(&mut self, ticket: u64) -> Option<Vec<u8>> {
        self.take_response(ticket)
    }

    fn take_failure(&mut self, ticket: u64) -> Option<HOramError> {
        self.take_failure(ticket)
    }

    fn degraded_shards(&self) -> Vec<usize> {
        self.degraded_shards()
    }

    fn run_cycle_window(&mut self, max_cycles: u64) -> Result<u64, HOramError> {
        self.run_cycle_window(max_cycles)
    }

    fn run_cycle_burst(&mut self, max_cycles: u64, max_windows: u64) -> Result<u64, HOramError> {
        self.run_cycle_burst(max_cycles, max_windows)
    }

    fn pending_requests(&self) -> usize {
        self.pending()
    }

    fn aggregate_stats(&self) -> HOramStats {
        self.stats()
    }

    fn per_shard_stats(&self) -> Vec<HOramStats> {
        self.shard_stats()
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn snapshot(&mut self) -> Result<Vec<u8>, OramError> {
        self.snapshot()
    }
}

impl Oram for ShardedOram {
    fn capacity(&self) -> u64 {
        self.config.base.capacity
    }

    fn payload_len(&self) -> usize {
        self.config.base.payload_len
    }

    fn read(&mut self, id: BlockId) -> Result<Vec<u8>, OramError> {
        let mut out = self
            .run_batch(&[Request::read(id)])
            .map_err(HOramError::into_protocol)?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }

    fn write(&mut self, id: BlockId, data: &[u8]) -> Result<Vec<u8>, OramError> {
        let mut out = self
            .run_batch(&[Request::write(id, data.to_vec())])
            .map_err(HOramError::into_protocol)?;
        out.pop()
            .ok_or_else(|| OramError::internal("one-request batch returned no response"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::rng::DeterministicRng;
    use rand::Rng;
    use std::collections::HashMap;

    fn build_threaded(
        capacity: u64,
        memory_slots: u64,
        shards: u64,
        worker_threads: usize,
    ) -> ShardedOram {
        let config = ShardedConfig::new(
            HOramConfig::new(capacity, 8, memory_slots)
                .with_seed(17)
                .with_worker_threads(worker_threads),
            shards,
        );
        ShardedOram::new(config, MasterKey::from_bytes([9; 32]), |_| {
            MemoryHierarchy::dac2019()
        })
        .unwrap()
    }

    fn build(capacity: u64, memory_slots: u64, shards: u64) -> ShardedOram {
        build_threaded(capacity, memory_slots, shards, 1)
    }

    #[test]
    fn read_your_writes_across_shards() {
        let mut oram = build(256, 64, 4);
        for id in [0u64, 1, 77, 200, 255] {
            oram.write(BlockId(id), &[id as u8; 8]).unwrap();
        }
        for id in [0u64, 1, 77, 200, 255] {
            assert_eq!(oram.read(BlockId(id)).unwrap(), vec![id as u8; 8]);
        }
    }

    #[test]
    fn mapper_is_a_bijection_onto_shard_slots() {
        let mapper = ShardMapper::new([3u8; 16], 300, 4).unwrap();
        assert_eq!(mapper.shard_capacity(), 75);
        let mut seen = std::collections::HashSet::new();
        for id in 0..300u64 {
            let slot = mapper.route(BlockId(id)).unwrap();
            assert!(slot.shard < 4);
            assert!(slot.local.0 < 75);
            assert!(
                seen.insert((slot.shard, slot.local.0)),
                "collision at id {id}"
            );
        }
    }

    #[test]
    fn mapper_balances_shards() {
        let mapper = ShardMapper::new([5u8; 16], 4096, 4).unwrap();
        let mut counts = [0usize; 4];
        for id in 0..4096u64 {
            counts[mapper.shard_of(BlockId(id)).unwrap() as usize] += 1;
        }
        // The PRP covers the domain exactly: perfect balance.
        assert_eq!(counts, [1024; 4]);
    }

    #[test]
    fn distinct_keys_give_distinct_routings() {
        let a = ShardMapper::new([1u8; 16], 1 << 12, 8).unwrap();
        let b = ShardMapper::new([2u8; 16], 1 << 12, 8).unwrap();
        let differing = (0..1u64 << 12)
            .filter(|&x| a.shard_of(BlockId(x)).unwrap() != b.shard_of(BlockId(x)).unwrap())
            .count();
        // Two independent 8-way routings agree on ~1/8 of points.
        assert!(
            differing > 3000,
            "routings too similar: {differing} differences"
        );
    }

    #[test]
    fn geometry_validation_reports_logical_coordinates() {
        let mut oram = build(256, 64, 4);
        assert!(matches!(
            oram.enqueue(Request::read(999u64)),
            Err(HOramError::Protocol(OramError::BlockOutOfRange {
                id: 999,
                capacity: 256
            }))
        ));
        assert!(matches!(
            oram.enqueue(Request::write(3u64, vec![0; 2])),
            Err(HOramError::Protocol(OramError::PayloadSize {
                expected: 8,
                got: 2
            }))
        ));
        assert_eq!(oram.pending(), 0);
    }

    #[test]
    fn responses_match_a_reference_map_across_periods() {
        // Small per-shard trees (64/4 = 16 slots ⇒ period 8) force several
        // shuffle periods on every shard.
        let mut oram = build(256, 64, 4);
        let mut rng = DeterministicRng::from_u64_seed(3);
        let mut reference: HashMap<u64, Vec<u8>> = HashMap::new();
        for _ in 0..300 {
            let id = rng.gen_range(0..256u64);
            if rng.gen_bool(0.3) {
                let payload = vec![rng.gen::<u8>(); 8];
                oram.write(BlockId(id), &payload).unwrap();
                reference.insert(id, payload);
            } else {
                let got = oram.read(BlockId(id)).unwrap();
                let expected = reference.get(&id).cloned().unwrap_or(vec![0u8; 8]);
                assert_eq!(got, expected, "block {id}");
            }
        }
        assert!(
            oram.stats().shuffles >= 4,
            "each shard must cross period boundaries"
        );
    }

    #[test]
    fn shared_clock_tracks_max_not_sum() {
        let mut oram = build(1024, 256, 4);
        let requests: Vec<Request> = (0..200u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let elapsed = oram.clock().now().as_nanos();
        let busy_sum: u64 = oram
            .shard_stats()
            .iter()
            .map(|s| s.total_wall_time().as_nanos())
            .sum();
        let busy_max = oram
            .shard_stats()
            .iter()
            .map(|s| s.total_wall_time().as_nanos())
            .max()
            .unwrap();
        assert!(
            elapsed < busy_sum,
            "clock {elapsed} should undercut serial sum {busy_sum}"
        );
        assert!(
            elapsed >= busy_max,
            "clock {elapsed} cannot undercut the slowest shard {busy_max}"
        );
    }

    #[test]
    fn one_shard_degenerates_to_a_single_instance() {
        let mut oram = build(256, 64, 1);
        assert_eq!(oram.shards().len(), 1);
        let requests: Vec<Request> = (0..40u64).map(Request::read).collect();
        let responses = oram.run_batch(&requests).unwrap();
        assert!(responses.iter().all(|r| r == &vec![0u8; 8]));
        // The shared clock mirrors the lone shard's timeline exactly.
        assert_eq!(
            oram.clock().now().as_nanos(),
            oram.shards()[0].clock().now().as_nanos()
        );
    }

    #[test]
    fn tickets_collect_once_and_unknown_tickets_error() {
        let mut oram = build(256, 64, 2);
        let ticket = oram.enqueue(Request::read(1u64)).unwrap();
        while !oram.is_drained() {
            oram.run_cycle_window(4).unwrap();
        }
        assert_eq!(oram.take_response(ticket), Some(vec![0u8; 8]));
        assert!(matches!(
            oram.drain(&[ticket]),
            Err(HOramError::Protocol(OramError::UnknownTicket { ticket: t })) if t == ticket
        ));
        assert!(matches!(
            oram.drain(&[999]),
            Err(HOramError::Protocol(OramError::UnknownTicket {
                ticket: 999
            }))
        ));
    }

    #[test]
    fn aggregate_stats_sum_per_shard_counters() {
        let mut oram = build(256, 64, 4);
        let requests: Vec<Request> = (0..60u64).map(Request::read).collect();
        oram.run_batch(&requests).unwrap();
        let per_shard = oram.shard_stats();
        let aggregate = oram.stats();
        assert_eq!(aggregate.requests, 60);
        assert_eq!(
            aggregate.cycles,
            per_shard.iter().map(|s| s.cycles).sum::<u64>()
        );
        // Every shard keeps the one-I/O-per-cycle invariant.
        for (i, stats) in per_shard.iter().enumerate() {
            assert_eq!(stats.total_io_loads(), stats.cycles, "shard {i}");
        }
    }

    #[test]
    fn threaded_pump_matches_serial_byte_for_byte() {
        // The wall-clock pump must be invisible in every observable:
        // responses, per-shard traces, per-shard and aggregate stats, and
        // the shared frontier clock.
        let mut rng = DeterministicRng::from_u64_seed(29);
        let requests: Vec<Request> = (0..180)
            .map(|_| {
                let id = rng.gen_range(0..256u64);
                if rng.gen_bool(0.3) {
                    Request::write(id, vec![rng.gen::<u8>(); 8])
                } else {
                    Request::read(id)
                }
            })
            .collect();
        let mut serial = build_threaded(256, 64, 4, 1);
        let serial_responses = serial.run_batch(&requests).unwrap();
        assert!(serial.stats().shuffles >= 4, "setup: periods must turn");
        for threads in [2usize, 4] {
            let mut threaded = build_threaded(256, 64, 4, threads);
            let responses = threaded.run_batch(&requests).unwrap();
            assert_eq!(serial_responses, responses, "threads={threads}");
            assert_eq!(serial.stats(), threaded.stats(), "threads={threads}");
            assert_eq!(
                serial.shard_stats(),
                threaded.shard_stats(),
                "threads={threads}"
            );
            assert_eq!(
                serial.clock().now(),
                threaded.clock().now(),
                "threads={threads} frontier diverged"
            );
            for (i, (a, b)) in serial.shards().iter().zip(threaded.shards()).enumerate() {
                assert_eq!(
                    a.trace().snapshot(),
                    b.trace().snapshot(),
                    "threads={threads} shard {i} trace diverged"
                );
            }
        }
    }

    #[test]
    fn shard_configs_keep_their_crypto_serial() {
        // The pool lives at the sharded instance; nesting per-shard pools
        // would only oversubscribe the same cores.
        let config = ShardedConfig::new(HOramConfig::new(1000, 16, 256).with_worker_threads(8), 4);
        assert_eq!(config.shard_config(0).worker_threads, 1);
        assert_eq!(config.base.worker_threads, 8);
    }

    #[test]
    fn config_plumbing_divides_the_budget() {
        let config = ShardedConfig::new(HOramConfig::new(1000, 16, 256), 4);
        config.validate();
        assert_eq!(config.shard_capacity(), 250);
        assert_eq!(config.mapped_domain(), 1000);
        let shard0 = config.shard_config(0);
        assert_eq!(shard0.capacity, 250);
        assert_eq!(shard0.memory_slots, 64);
        assert_ne!(shard0.seed, config.shard_config(1).seed);
    }

    #[test]
    #[should_panic(expected = "memory budget smaller than one bucket")]
    fn under_bucket_memory_share_rejected() {
        // 16 slots over 8 shards = 2 per shard < one bucket (z = 4):
        // rejected instead of silently inflating the aggregate budget.
        ShardedConfig::new(HOramConfig::new(4096, 16, 16), 8).validate();
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn more_shards_than_blocks_rejected() {
        ShardedConfig::new(HOramConfig::new(4, 8, 8), 8).validate();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedConfig::new(HOramConfig::new(256, 8, 64), 0).validate();
    }

    /// Always-failing reads: every retry re-rolls and fails, so the first
    /// storage load exhausts the retry budget and errors the shard.
    fn dead_reads() -> oram_storage::fault::FaultConfig {
        oram_storage::fault::FaultConfig {
            seed: 99,
            transient_read_permille: 1000,
            ..Default::default()
        }
    }

    /// A block routed to `shard` plus one routed elsewhere, with the
    /// payloads written for both.
    fn pick_blocks(oram: &mut ShardedOram, shard: u64) -> (BlockId, BlockId) {
        let on = (0..256u64)
            .map(BlockId)
            .find(|id| oram.mapper().shard_of(*id).unwrap() == shard)
            .expect("shard owns some block");
        let off = (0..256u64)
            .map(BlockId)
            .find(|id| oram.mapper().shard_of(*id).unwrap() != shard)
            .expect("other shards own some block");
        (on, off)
    }

    #[test]
    fn failed_shard_degrades_while_others_keep_serving() {
        let mut oram = build(256, 64, 4);
        let (on, off) = pick_blocks(&mut oram, 2);
        oram.write(on, &[7u8; 8]).unwrap();
        oram.write(off, &[9u8; 8]).unwrap();

        oram.inject_storage_faults(2, dead_reads());
        let doomed = oram.enqueue(Request::read(on)).unwrap();
        let healthy = oram.enqueue(Request::read(off)).unwrap();
        while !oram.is_drained() {
            oram.run_cycle_window(4).unwrap();
        }

        // No kit installed: the shard quarantines, its ticket fails typed.
        assert_eq!(oram.degraded_shards(), vec![2]);
        assert_eq!(oram.take_response(doomed), None);
        assert!(matches!(
            oram.take_failure(doomed),
            Some(HOramError::ShardDegraded { shard: 2, .. })
        ));
        // The healthy shard's response is unaffected.
        assert_eq!(oram.take_response(healthy), Some(vec![9u8; 8]));

        // New requests to the degraded shard fail typed with no access;
        // the rest of the address space keeps serving.
        assert!(matches!(
            oram.enqueue(Request::read(on)),
            Err(HOramError::ShardDegraded { shard: 2, .. })
        ));
        assert_eq!(oram.read(off).unwrap(), vec![9u8; 8]);

        // A degraded instance cannot checkpoint — that would lose blocks.
        assert!(matches!(
            oram.snapshot(),
            Err(OramError::SnapshotInvalid { .. })
        ));
    }

    #[test]
    fn recovery_kit_restores_a_failed_shard_from_its_checkpoint() {
        let mut oram = build(256, 64, 4);
        let (on, off) = pick_blocks(&mut oram, 1);
        oram.write(on, &[5u8; 8]).unwrap();
        oram.write(off, &[6u8; 8]).unwrap();
        oram.enable_recovery(|_| MemoryHierarchy::dac2019())
            .unwrap();

        oram.inject_storage_faults(1, dead_reads());
        let doomed = oram.enqueue(Request::read(on)).unwrap();
        while !oram.is_drained() {
            oram.run_cycle_window(4).unwrap();
        }

        // The transient-exhaustion failure is recoverable: the shard was
        // rebuilt from its checkpoint and stays in service.
        assert_eq!(oram.recoveries(), 1);
        assert!(oram.degraded_shards().is_empty());
        // The in-flight ticket still failed — the restore rolled the
        // shard back, so its answer cannot be produced.
        assert!(matches!(
            oram.take_failure(doomed),
            Some(HOramError::Protocol(OramError::Storage(
                oram_storage::StorageError::TransientFault { .. }
            )))
        ));
        // Post-restore the shard serves the checkpointed bytes again.
        assert_eq!(oram.read(on).unwrap(), vec![5u8; 8]);
        assert_eq!(oram.read(off).unwrap(), vec![6u8; 8]);
    }

    #[test]
    fn permanent_faults_degrade_even_with_a_recovery_kit() {
        let mut oram = build(256, 64, 4);
        let (on, _) = pick_blocks(&mut oram, 3);
        oram.write(on, &[4u8; 8]).unwrap();
        oram.enable_recovery(|_| MemoryHierarchy::dac2019())
            .unwrap();

        // Every slot permanently dead: re-mounting the device would fail
        // identically, so restore is pointless and the shard degrades.
        oram.inject_storage_faults(
            3,
            oram_storage::fault::FaultConfig {
                seed: 7,
                permanent_slots: (0..8192).collect(),
                ..Default::default()
            },
        );
        let doomed = oram.enqueue(Request::read(on)).unwrap();
        while !oram.is_drained() {
            oram.run_cycle_window(4).unwrap();
        }
        assert_eq!(oram.recoveries(), 0);
        assert_eq!(oram.degraded_shards(), vec![3]);
        assert!(matches!(
            oram.take_failure(doomed),
            Some(HOramError::ShardDegraded { shard: 3, .. })
        ));
    }

    #[test]
    fn refreshed_checkpoints_preserve_later_writes() {
        let mut oram = build(256, 64, 2);
        let (on, _) = pick_blocks(&mut oram, 0);
        oram.write(on, &[1u8; 8]).unwrap();
        oram.enable_recovery(|_| MemoryHierarchy::dac2019())
            .unwrap();
        oram.write(on, &[2u8; 8]).unwrap();
        // Without a refresh a restore would roll back to [1; 8]; the
        // refreshed checkpoint keeps the later write.
        oram.refresh_checkpoints().unwrap();

        oram.inject_storage_faults(0, dead_reads());
        let doomed = oram.enqueue(Request::read(on)).unwrap();
        while !oram.is_drained() {
            oram.run_cycle_window(4).unwrap();
        }
        assert_eq!(oram.recoveries(), 1);
        assert!(oram.take_failure(doomed).is_some());
        assert_eq!(oram.read(on).unwrap(), vec![2u8; 8]);
    }
}

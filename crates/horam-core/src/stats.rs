//! H-ORAM run statistics — the quantities the paper's Tables 5-3/5-4
//! report.

use oram_storage::clock::SimDuration;
use std::ops::{Add, AddAssign, Sub};

/// Counters accumulated by an [`crate::horam::HOram`] instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HOramStats {
    /// Application requests serviced.
    pub requests: u64,
    /// Of those, writes.
    pub writes: u64,
    /// Scheduling cycles executed.
    pub cycles: u64,
    /// Requests serviced from the memory layer (every request, eventually).
    pub memory_hits: u64,
    /// Dummy path accesses issued as padding.
    pub dummy_memory_accesses: u64,
    /// I/O loads that fetched a requested (missed) block.
    pub real_io_loads: u64,
    /// I/O loads issued as padding (dummy loads).
    pub dummy_io_loads: u64,
    /// Blocks opportunistically prefetched by dummy loads.
    pub prefetched_blocks: u64,
    /// Storage-device busy time during access periods (the paper's
    /// "I/O latency" aggregates this over loads).
    pub io_time: SimDuration,
    /// Memory-device busy time during access periods.
    pub memory_time: SimDuration,
    /// Wall-clock time of access periods (cycles overlap memory and I/O).
    pub access_wall_time: SimDuration,
    /// Wall-clock time of shuffle periods.
    pub shuffle_wall_time: SimDuration,
    /// Completed shuffle periods.
    pub shuffles: u64,
    /// Blocks that spilled across partitions during shuffles.
    pub spilled_blocks: u64,
}

impl HOramStats {
    /// Total I/O loads (the paper's "Number of I/O Access" row).
    pub fn total_io_loads(&self) -> u64 {
        self.real_io_loads + self.dummy_io_loads
    }

    /// Mean storage time per I/O load (the paper's "I/O Latency" row).
    pub fn mean_io_latency(&self) -> SimDuration {
        let loads = self.total_io_loads();
        if loads == 0 {
            SimDuration::ZERO
        } else {
            self.io_time / loads
        }
    }

    /// Total wall-clock time (the paper's "Total Time" row).
    pub fn total_wall_time(&self) -> SimDuration {
        self.access_wall_time + self.shuffle_wall_time
    }

    /// Requests per serviced I/O load — the cacheability win (≈3.5× for
    /// the paper's small dataset, §5.2.1).
    pub fn requests_per_io(&self) -> f64 {
        let loads = self.total_io_loads();
        if loads == 0 {
            0.0
        } else {
            self.requests as f64 / loads as f64
        }
    }

    /// Serializes every counter (snapshot support).
    pub fn save_state(&self, w: &mut oram_crypto::persist::StateWriter) {
        w.put_u64(self.requests);
        w.put_u64(self.writes);
        w.put_u64(self.cycles);
        w.put_u64(self.memory_hits);
        w.put_u64(self.dummy_memory_accesses);
        w.put_u64(self.real_io_loads);
        w.put_u64(self.dummy_io_loads);
        w.put_u64(self.prefetched_blocks);
        w.put_u64(self.io_time.as_nanos());
        w.put_u64(self.memory_time.as_nanos());
        w.put_u64(self.access_wall_time.as_nanos());
        w.put_u64(self.shuffle_wall_time.as_nanos());
        w.put_u64(self.shuffles);
        w.put_u64(self.spilled_blocks);
    }

    /// Reads counters serialized by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`oram_crypto::persist::PersistError`] on truncation.
    pub fn load_state(
        r: &mut oram_crypto::persist::StateReader<'_>,
    ) -> Result<Self, oram_crypto::persist::PersistError> {
        Ok(Self {
            requests: r.get_u64()?,
            writes: r.get_u64()?,
            cycles: r.get_u64()?,
            memory_hits: r.get_u64()?,
            dummy_memory_accesses: r.get_u64()?,
            real_io_loads: r.get_u64()?,
            dummy_io_loads: r.get_u64()?,
            prefetched_blocks: r.get_u64()?,
            io_time: SimDuration::from_nanos(r.get_u64()?),
            memory_time: SimDuration::from_nanos(r.get_u64()?),
            access_wall_time: SimDuration::from_nanos(r.get_u64()?),
            shuffle_wall_time: SimDuration::from_nanos(r.get_u64()?),
            shuffles: r.get_u64()?,
            spilled_blocks: r.get_u64()?,
        })
    }

    /// The counters accumulated since `baseline` was captured.
    ///
    /// Every field is monotone over a run, so subtracting an earlier
    /// snapshot yields the cost of exactly the work in between — the
    /// serving layer uses this to attribute cycles/time to each pumped
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `baseline` is not an
    /// earlier snapshot of the same run.
    pub fn delta_since(&self, baseline: &HOramStats) -> HOramStats {
        *self - *baseline
    }
}

/// Applies `op` field-by-field — the single place the counter list is
/// spelled out for arithmetic, so `Add`/`Sub` cannot drift apart when a
/// counter is added.
fn zip_fields(a: HOramStats, b: HOramStats, op: FieldOp) -> HOramStats {
    macro_rules! zip {
        ($($field:ident),* $(,)?) => {
            HOramStats {
                $($field: match op {
                    FieldOp::Add => a.$field + b.$field,
                    FieldOp::Sub => a.$field - b.$field,
                }),*
            }
        };
    }
    zip!(
        requests,
        writes,
        cycles,
        memory_hits,
        dummy_memory_accesses,
        real_io_loads,
        dummy_io_loads,
        prefetched_blocks,
        io_time,
        memory_time,
        access_wall_time,
        shuffle_wall_time,
        shuffles,
        spilled_blocks,
    )
}

#[derive(Clone, Copy)]
enum FieldOp {
    Add,
    Sub,
}

impl Add for HOramStats {
    type Output = HOramStats;
    fn add(self, rhs: HOramStats) -> HOramStats {
        zip_fields(self, rhs, FieldOp::Add)
    }
}

impl AddAssign for HOramStats {
    fn add_assign(&mut self, rhs: HOramStats) {
        *self = *self + rhs;
    }
}

impl Sub for HOramStats {
    type Output = HOramStats;
    fn sub(self, rhs: HOramStats) -> HOramStats {
        zip_fields(self, rhs, FieldOp::Sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let stats = HOramStats {
            requests: 100,
            real_io_loads: 20,
            dummy_io_loads: 5,
            io_time: SimDuration::from_micros(2500),
            access_wall_time: SimDuration::from_millis(10),
            shuffle_wall_time: SimDuration::from_millis(30),
            ..Default::default()
        };
        assert_eq!(stats.total_io_loads(), 25);
        assert_eq!(stats.mean_io_latency(), SimDuration::from_micros(100));
        assert_eq!(stats.total_wall_time(), SimDuration::from_millis(40));
        assert!((stats.requests_per_io() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = HOramStats::default();
        assert_eq!(stats.mean_io_latency(), SimDuration::ZERO);
        assert_eq!(stats.requests_per_io(), 0.0);
    }

    #[test]
    fn delta_isolates_a_window() {
        let earlier = HOramStats {
            requests: 10,
            cycles: 4,
            io_time: SimDuration::from_micros(5),
            ..Default::default()
        };
        let later = HOramStats {
            requests: 25,
            cycles: 9,
            io_time: SimDuration::from_micros(12),
            ..Default::default()
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.requests, 15);
        assert_eq!(delta.cycles, 5);
        assert_eq!(delta.io_time, SimDuration::from_micros(7));
        assert_eq!(later.delta_since(&later), HOramStats::default());
    }
}

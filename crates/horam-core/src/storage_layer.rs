//! H-ORAM's storage layer: flat, permuted, partitioned.
//!
//! Paper §4.1.3: "the data inside is organized into N data blocks, each of
//! which stores a small, encrypted and permuted data block"; §4.3.2 divides
//! it into `√N` partitions of `√N` blocks for the group+partition shuffle.
//!
//! Layout: partition `i` occupies slots `[i·S, (i+1)·S)` where `S` is the
//! partition size including headroom (dummy slots absorb the occupancy
//! drift caused by evicted blocks landing in random partitions; overflow
//! spills into the next partition's rebuild pass and is counted).
//!
//! Security invariants maintained here and asserted by tests:
//!
//! * **once per period** — every slot is read at most once between
//!   shuffles (misses read the block's permuted slot; dummy loads consume
//!   a PRF-ordered sequence of untouched slots);
//! * **sequential shuffle** — partitions are rebuilt in order `0..√N`
//!   (§4.3.3 argues this order leaks nothing beyond Partition ORAM's
//!   random choice, because partition access is uniform either way);
//! * **fresh epoch per full shuffle** — every rebuild re-seals under new
//!   keys, so ciphertexts cannot be correlated across periods.

use crate::config::HOramConfig;
use crate::permutation_list::{Location, PermutationList};
use oram_crypto::keys::KeyHierarchy;
use oram_crypto::prf::Prf;
use oram_crypto::seal::BlockSealer;
use oram_protocols::error::OramError;
use oram_protocols::types::{BlockContent, BlockId};
use oram_shuffle::permutation::Permutation;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;
use oram_storage::stats::DeviceStats;

/// Result of one I/O load (real miss or dummy/prefetch load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoLoad {
    /// The block the load produced, if the slot held a live block
    /// (dummy slots and stale copies yield `None`).
    pub block: Option<(BlockId, Vec<u8>)>,
    /// Simulated storage time of the load.
    pub duration: SimDuration,
}

/// Timing breakdown of one shuffle pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleReport {
    /// Wall-clock time with the read stream pipelined against the write
    /// stream (`max(read, write)` — §5.1's discussion of sequential
    /// shuffle speed).
    pub wall_time: SimDuration,
    /// Total storage read occupancy.
    pub read_time: SimDuration,
    /// Total storage write occupancy.
    pub write_time: SimDuration,
    /// Partitions rebuilt.
    pub partitions: u64,
    /// Blocks that overflowed a partition and spilled to the next.
    pub spilled: u64,
}

/// The storage layer. See the [module docs](self).
#[derive(Debug)]
pub struct StorageLayer {
    device: Device,
    keys: KeyHierarchy,
    sealer: BlockSealer,
    epoch: u64,
    seal_seq: u64,
    /// Logical-block locations (shared view with the control layer).
    locations: PermutationList,
    /// Per-slot liveness: `true` while the slot holds the *current* copy
    /// of a block (fetching flips it off; stale ciphertext remains).
    live: Vec<bool>,
    /// Read-this-period markers (the once-per-period invariant).
    touched: Vec<bool>,
    /// PRF-permuted slot order consumed by dummy loads.
    dummy_order: Vec<u64>,
    dummy_cursor: usize,
    partition_count: u64,
    partition_slots: u64,
    capacity: u64,
    payload_len: usize,
    /// Rotating window start for partial shuffles.
    partial_window_start: u64,
    /// Monotone period counter (varies the dummy-load order even across
    /// partial shuffles, which keep the epoch key).
    period_counter: u64,
}

impl StorageLayer {
    /// Builds the layer and installs the initial permuted layout of all
    /// `N` zero-filled blocks (construction charge is reset by the caller).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout write.
    pub fn new(
        config: &HOramConfig,
        device: Device,
        keys: KeyHierarchy,
    ) -> Result<Self, OramError> {
        let partition_count = config.partition_count();
        let partition_slots = config.partition_slots();
        let total_slots = partition_count * partition_slots;
        let epoch = 0;
        let sealer = BlockSealer::new(&keys.epoch_keys(epoch));
        let mut layer = Self {
            device,
            keys,
            sealer,
            epoch,
            seal_seq: 0,
            locations: PermutationList::new(config.capacity),
            live: vec![false; total_slots as usize],
            touched: vec![false; total_slots as usize],
            dummy_order: Vec::new(),
            dummy_cursor: 0,
            partition_count,
            partition_slots,
            capacity: config.capacity,
            payload_len: config.payload_len,
            partial_window_start: 0,
            period_counter: 0,
        };
        // Initial build: treat every block as "hot" with zero payloads and
        // run the standard full shuffle machinery.
        let all: Vec<(BlockId, Vec<u8>)> =
            (0..config.capacity).map(|id| (BlockId(id), vec![0u8; config.payload_len])).collect();
        layer.rebuild_full(all, config.seed)?;
        Ok(layer)
    }

    /// Total physical slots (`√N · S`).
    pub fn total_slots(&self) -> u64 {
        self.partition_count * self.partition_slots
    }

    /// Storage bytes occupied (for the paper's storage-overhead rows).
    pub fn storage_bytes(&self, block_bytes: u64) -> u64 {
        self.total_slots() * block_bytes
    }

    /// The location table (control-layer view).
    pub fn locations(&self) -> &PermutationList {
        &self.locations
    }

    /// Current key epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying device (experiment accounting).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access (used for redundancy charges in the partial
    /// shuffle and by tests).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Whether the scheduler should treat `id` as a memory hit.
    pub fn is_in_memory(&self, id: BlockId) -> bool {
        self.locations.is_hit(id)
    }

    /// Dataset size `N` in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of partitions (`√N`).
    pub fn partition_count(&self) -> u64 {
        self.partition_count
    }

    fn seal_content(&mut self, slot: u64, content: &BlockContent) -> oram_crypto::seal::SealedBlock {
        let seq = self.seal_seq;
        self.seal_seq += 1;
        self.sealer.seal(slot, seq, &content.encode(self.payload_len))
    }

    fn storage_delta(&self, before: &DeviceStats) -> DeviceStats {
        self.device.stats().delta_since(before)
    }

    /// Fetches the block `id` from its permuted slot (a **miss** load).
    /// Marks the block in-memory; the caller inserts it into the memory
    /// ORAM's stash.
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBlock`] if the slot does not hold the
    /// expected block (protocol invariant violation); storage/crypto
    /// errors propagate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already marked in-memory (the scheduler must
    /// classify hits before issuing I/O) or if the slot was already read
    /// this period (the once-per-period invariant would be violated).
    pub fn fetch(&mut self, id: BlockId) -> Result<IoLoad, OramError> {
        let Location::Storage { slot } = self.locations.location(id) else {
            panic!("fetch of in-memory block {id} — scheduler hit classification broken");
        };
        assert!(
            !self.touched[slot as usize],
            "slot {slot} read twice in one period — invariant broken"
        );
        let before = *self.device.stats();
        let sealed = self.device.read_block(slot)?;
        let content = BlockContent::decode(&self.sealer.open(&sealed)?, slot)?;
        let BlockContent::Real { id: stored, payload, .. } = content else {
            return Err(OramError::MalformedBlock { slot });
        };
        if stored != id {
            return Err(OramError::MalformedBlock { slot });
        }
        self.touched[slot as usize] = true;
        self.live[slot as usize] = false;
        self.locations.set_in_memory(id);
        Ok(IoLoad {
            block: Some((id, payload)),
            duration: self.storage_delta(&before).busy,
        })
    }

    /// A **dummy** load: reads the next untouched slot in the PRF order.
    /// If the slot holds a live block, that block migrates to memory as an
    /// opportunistic prefetch (the caller inserts it); stale or dummy
    /// slots produce no block but an indistinguishable bus access.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn dummy_load(&mut self) -> Result<IoLoad, OramError> {
        // Advance past slots touched by real misses since the last call.
        while self.dummy_cursor < self.dummy_order.len()
            && self.touched[self.dummy_order[self.dummy_cursor] as usize]
        {
            self.dummy_cursor += 1;
        }
        let Some(&slot) = self.dummy_order.get(self.dummy_cursor) else {
            // Every slot touched: the period is over-long; the caller's
            // period accounting forces a shuffle before this can happen in
            // a correct configuration. Treat as a zero-cost no-op.
            return Ok(IoLoad { block: None, duration: SimDuration::ZERO });
        };
        self.dummy_cursor += 1;

        let before = *self.device.stats();
        let sealed = self.device.read_block(slot)?;
        self.touched[slot as usize] = true;
        let duration = self.storage_delta(&before).busy;

        if !self.live[slot as usize] {
            return Ok(IoLoad { block: None, duration });
        }
        let content = BlockContent::decode(&self.sealer.open(&sealed)?, slot)?;
        let BlockContent::Real { id, payload, .. } = content else {
            return Ok(IoLoad { block: None, duration });
        };
        self.live[slot as usize] = false;
        self.locations.set_in_memory(id);
        Ok(IoLoad { block: Some((id, payload)), duration })
    }

    /// Full group+partition shuffle (§4.3.2): rebuild every partition in
    /// order `0..√N`, folding the evicted `hot` blocks (already
    /// obliviously shuffled by the tree evict) into per-partition pieces.
    /// Starts a fresh epoch: new keys, new intra-partition permutations,
    /// cleared period markers.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn rebuild_full(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        seed: u64,
    ) -> Result<ShuffleReport, OramError> {
        let window: Vec<u64> = (0..self.partition_count).collect();
        self.rebuild_window(hot, &window, seed)
    }

    /// Partial shuffle (§5.3.1): rebuild only the next `window_len`
    /// partitions of a rotating window (partition `i` is reshuffled once
    /// every `1/r` periods). All evicted hot blocks are absorbed by the
    /// window's partitions — the paper's "evicted data keeps concatenating
    /// on top of each partition" realized as concentration into the
    /// currently-shuffled window, which is why partial shuffling trades
    /// shuffle time against extra redundancy (window partitions run
    /// fuller, lengthening their rebuild and the dummy-load tail). If the
    /// window's free capacity cannot absorb the evicted set, the window is
    /// extended partition by partition (counted in
    /// [`ShuffleReport::spilled`]).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn rebuild_partial(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        window_len: u64,
        seed: u64,
    ) -> Result<ShuffleReport, OramError> {
        let window_len = window_len.clamp(1, self.partition_count);
        let mut window: Vec<u64> = (0..window_len)
            .map(|i| (self.partial_window_start + i) % self.partition_count)
            .collect();

        // Extend the window until its free capacity covers the hot set
        // (capacity is control-layer metadata: live counts per partition).
        let mut capacity: u64 = window.iter().map(|&p| self.partition_free_slots(p)).sum();
        while capacity < hot.len() as u64 && (window.len() as u64) < self.partition_count {
            let next = (self.partial_window_start + window.len() as u64) % self.partition_count;
            capacity += self.partition_free_slots(next);
            window.push(next);
        }

        self.partial_window_start =
            (self.partial_window_start + window.len() as u64) % self.partition_count;
        let extended = window.len() as u64 - window_len;
        let mut report = self.rebuild_window(hot, &window, seed)?;
        report.spilled += extended;
        Ok(report)
    }

    /// Free (dummy) slots of one partition, from control-layer metadata.
    fn partition_free_slots(&self, partition: u64) -> u64 {
        let base = (partition * self.partition_slots) as usize;
        let live = self.live[base..base + self.partition_slots as usize]
            .iter()
            .filter(|&&l| l)
            .count() as u64;
        self.partition_slots - live
    }

    /// Rebuilds the given partitions in ascending pass order, distributing
    /// `hot` across them as contiguous pieces sized to each partition's
    /// free capacity (the evict shuffle already randomized piece
    /// membership, so contiguous capacity-aware splitting keeps piece
    /// assignment uniform over identities).
    ///
    /// # Panics
    ///
    /// Panics if the window's free capacity cannot hold the hot set — the
    /// callers guarantee it (full windows by the `N ≤ P·S` invariant,
    /// partial windows by extension).
    fn rebuild_window(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        window: &[u64],
        seed: u64,
    ) -> Result<ShuffleReport, OramError> {
        let before = *self.device.stats();
        // New epoch unless this is a partial pass (partial passes keep the
        // epoch key so untouched partitions remain readable). Partitions
        // are still sealed under the old epoch, so reads during this pass
        // use the outgoing sealer while writes use the fresh one.
        let read_sealer = self.sealer.clone();
        let full = window.len() as u64 == self.partition_count;
        if full {
            self.epoch += 1;
            self.sealer = BlockSealer::new(&self.keys.epoch_keys(self.epoch));
        }
        let piece_prf = Prf::new(Prf::new([0u8; 16]).subkey("piece-split", seed ^ self.epoch));

        // Capacity-aware contiguous split of the hot list (§4.3.2's "i-th
        // piece of evicted data"): each partition's piece is its fair share
        // clamped to its free slots, with the remainder flowing onward.
        let free: Vec<u64> = window.iter().map(|&p| self.partition_free_slots(p)).collect();
        let total_free: u64 = free.iter().sum();
        assert!(
            hot.len() as u64 <= total_free,
            "window free capacity {total_free} cannot hold {} evicted blocks",
            hot.len()
        );
        let fair_share = (hot.len() as u64).div_ceil(window.len() as u64);
        let mut pieces: Vec<Vec<(BlockId, Vec<u8>)>> =
            (0..window.len()).map(|_| Vec::new()).collect();
        {
            let mut hot_iter = hot.into_iter();
            let mut remaining = hot_iter.len() as u64;
            for (pass, &cap) in free.iter().enumerate() {
                let passes_left = (window.len() - pass) as u64;
                let fair = remaining.div_ceil(passes_left);
                let take = fair.min(cap).min(remaining);
                pieces[pass].extend(hot_iter.by_ref().take(take as usize));
                remaining -= take;
            }
            // Clamping can leave a residue; sweep it into any free space.
            let mut residue: Vec<(BlockId, Vec<u8>)> = hot_iter.collect();
            for (pass, &cap) in free.iter().enumerate() {
                if residue.is_empty() {
                    break;
                }
                let room = cap as usize - pieces[pass].len();
                let take = room.min(residue.len());
                pieces[pass].extend(residue.drain(..take));
            }
            assert!(residue.is_empty(), "capacity accounting failed");
        }

        let mut spilled_total = 0u64;
        for (pass, &partition) in window.iter().enumerate() {
            let base = partition * self.partition_slots;

            // Stream the partition in; keep only live blocks (cold data).
            let slots = self.device.read_run(base, self.partition_slots)?;
            let mut union: Vec<(BlockId, Vec<u8>)> = Vec::new();
            for (offset, sealed) in slots.into_iter().enumerate() {
                let addr = base + offset as u64;
                if !self.live[addr as usize] {
                    continue;
                }
                let Some(sealed) = sealed else { continue };
                let content = BlockContent::decode(&read_sealer.open(&sealed)?, addr)?;
                if let BlockContent::Real { id, payload, .. } = content {
                    union.push((id, payload));
                    self.live[addr as usize] = false;
                }
            }

            // Concatenate the hot piece (sized to fit by construction).
            // Blocks beyond the fair equal split indicate capacity-driven
            // redistribution and are reported as `spilled`.
            let piece = std::mem::take(&mut pieces[pass]);
            spilled_total += (piece.len() as u64).saturating_sub(fair_share);
            union.extend(piece);
            debug_assert!(
                union.len() as u64 <= self.partition_slots,
                "piece sizing exceeded partition capacity"
            );

            // Fresh intra-partition permutation (in-enclave; the paper's
            // CacheShuffle — cost negligible next to the streaming I/O).
            let perm = Permutation::random(
                self.partition_slots as usize,
                piece_prf.eval_words("partition-perm", &[partition, self.epoch]),
            );
            let mut image: Vec<Option<(BlockId, Vec<u8>)>> =
                vec![None; self.partition_slots as usize];
            for (dense, (id, payload)) in union.into_iter().enumerate() {
                image[perm.apply(dense)] = Some((id, payload));
            }

            let mut sealed_run = Vec::with_capacity(self.partition_slots as usize);
            for (offset, slot) in image.into_iter().enumerate() {
                let addr = base + offset as u64;
                let content = match slot {
                    Some((id, payload)) => {
                        self.locations.set_storage_slot(id, addr);
                        self.live[addr as usize] = true;
                        BlockContent::Real { id, leaf: 0, payload }
                    }
                    None => {
                        self.live[addr as usize] = false;
                        BlockContent::Dummy
                    }
                };
                // Rewriting resets the slot's read-once budget; slots in
                // partitions outside a partial window keep their markers
                // until their own rebuild.
                self.touched[addr as usize] = false;
                sealed_run.push(self.seal_content(addr, &content));
            }
            self.device.write_run(base, sealed_run)?;
        }
        // New period: fresh PRF order for dummy loads (touched slots are
        // skipped at consumption time).
        self.period_counter += 1;
        self.regenerate_dummy_order(seed);

        let delta = self.storage_delta(&before);
        Ok(ShuffleReport {
            wall_time: delta.busy_read.max(delta.busy_write),
            read_time: delta.busy_read,
            write_time: delta.busy_write,
            partitions: window.len() as u64,
            spilled: spilled_total,
        })
    }

    fn regenerate_dummy_order(&mut self, seed: u64) {
        let total = self.total_slots();
        let perm = Permutation::random(
            total as usize,
            seed ^ self.epoch.rotate_left(17) ^ self.period_counter.rotate_left(41),
        );
        self.dummy_order = (0..total).map(|i| perm.apply(i as usize) as u64).collect();
        self.dummy_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use std::collections::HashSet;

    fn build(capacity: u64) -> StorageLayer {
        let config = HOramConfig::new(capacity, 8, 64);
        let device = MachineConfig::dac2019().build_storage(SimClock::new(), None);
        let keys = KeyHierarchy::new(MasterKey::from_bytes([8; 32]), "storage-layer-test");
        StorageLayer::new(&config, device, keys).unwrap()
    }

    #[test]
    fn initial_layout_places_every_block() {
        let layer = build(100);
        for id in 0..100 {
            assert!(
                matches!(layer.locations().location(BlockId(id)), Location::Storage { .. }),
                "block {id} missing"
            );
        }
        assert_eq!(layer.locations().in_memory_count(), 0);
    }

    #[test]
    fn initial_slots_are_distinct() {
        let layer = build(64);
        let slots: HashSet<u64> = (0..64)
            .map(|id| match layer.locations().location(BlockId(id)) {
                Location::Storage { slot } => slot,
                Location::Memory => panic!("unexpected memory residence"),
            })
            .collect();
        assert_eq!(slots.len(), 64);
    }

    #[test]
    fn fetch_returns_payload_and_migrates() {
        let mut layer = build(64);
        let load = layer.fetch(BlockId(5)).unwrap();
        let (id, payload) = load.block.unwrap();
        assert_eq!(id, BlockId(5));
        assert_eq!(payload, vec![0u8; 8]);
        assert!(load.duration > SimDuration::ZERO);
        assert!(layer.is_in_memory(BlockId(5)));
    }

    #[test]
    #[should_panic(expected = "scheduler hit classification broken")]
    fn double_fetch_panics() {
        let mut layer = build(64);
        layer.fetch(BlockId(5)).unwrap();
        let _ = layer.fetch(BlockId(5));
    }

    #[test]
    fn dummy_loads_never_repeat_slots() {
        let mut layer = build(49);
        let trace_start = layer.device().stats().reads;
        let mut produced = 0;
        for _ in 0..30 {
            if layer.dummy_load().unwrap().block.is_some() {
                produced += 1;
            }
        }
        assert_eq!(layer.device().stats().reads - trace_start, 30);
        assert!(produced > 0, "dummy loads should prefetch live blocks sometimes");
    }

    #[test]
    fn rebuild_full_brings_everything_home() {
        let mut layer = build(64);
        let mut hot = Vec::new();
        for id in [1u64, 7, 30, 63] {
            hot.push(layer.fetch(BlockId(id)).unwrap().block.unwrap());
        }
        // Overwrite one payload as the memory layer would.
        hot[0].1 = vec![9u8; 8];
        let report = layer.rebuild_full(hot, 33).unwrap();
        assert_eq!(report.partitions, layer.partition_count);
        assert_eq!(layer.locations().in_memory_count(), 0);
        // Refetch the updated block and verify the new payload survived.
        let load = layer.fetch(BlockId(1)).unwrap();
        assert_eq!(load.block.unwrap().1, vec![9u8; 8]);
    }

    #[test]
    fn rebuild_repermutes_slots() {
        let mut layer = build(256);
        let before: Vec<u64> = (0..256)
            .map(|id| match layer.locations().location(BlockId(id)) {
                Location::Storage { slot } => slot,
                Location::Memory => unreachable!(),
            })
            .collect();
        layer.rebuild_full(Vec::new(), 77).unwrap();
        let after: Vec<u64> = (0..256)
            .map(|id| match layer.locations().location(BlockId(id)) {
                Location::Storage { slot } => slot,
                Location::Memory => unreachable!(),
            })
            .collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved > 200, "only {moved}/256 blocks moved");
    }

    #[test]
    fn rebuild_rotates_epoch_and_resets_touched() {
        let mut layer = build(64);
        let epoch = layer.epoch();
        layer.fetch(BlockId(3)).unwrap();
        let hot = vec![(BlockId(3), vec![0u8; 8])];
        layer.rebuild_full(hot, 1).unwrap();
        assert_eq!(layer.epoch(), epoch + 1);
        // The block is fetchable again (its new slot is untouched).
        layer.fetch(BlockId(3)).unwrap();
    }

    #[test]
    fn shuffle_wall_time_is_pipelined_max() {
        let mut layer = build(1024);
        let report = layer.rebuild_full(Vec::new(), 5).unwrap();
        assert_eq!(report.wall_time, report.read_time.max(report.write_time));
        assert!(report.wall_time < report.read_time + report.write_time);
    }

    #[test]
    fn partial_rebuild_covers_a_window_and_rotates() {
        let mut layer = build(256); // 16 partitions
        let r1 = layer.rebuild_partial(Vec::new(), 4, 9).unwrap();
        assert_eq!(r1.partitions, 4);
        let r2 = layer.rebuild_partial(Vec::new(), 4, 10).unwrap();
        assert_eq!(r2.partitions, 4);
        // After 4 windows the rotation wraps.
        layer.rebuild_partial(Vec::new(), 4, 11).unwrap();
        layer.rebuild_partial(Vec::new(), 4, 12).unwrap();
        let wrapped = layer.rebuild_partial(Vec::new(), 4, 13).unwrap();
        assert_eq!(wrapped.partitions, 4);
    }

    #[test]
    fn partial_rebuild_keeps_unshuffled_blocks_fetchable_once() {
        let mut layer = build(256);
        // Fetch a block, then partially shuffle a window. The fetched
        // block's home partition may not be rewritten; it must remain
        // marked in-memory either way.
        layer.fetch(BlockId(100)).unwrap();
        let hot = vec![(BlockId(100), vec![0u8; 8])];
        layer.rebuild_partial(hot, 2, 3).unwrap();
        // Block 100 went into the window, so it is on storage again.
        assert!(!layer.is_in_memory(BlockId(100)));
        layer.fetch(BlockId(100)).unwrap();
    }

    #[test]
    fn storage_footprint_has_headroom_only() {
        let layer = build(1 << 12);
        let slots = layer.total_slots();
        let ratio = slots as f64 / (1u64 << 12) as f64;
        assert!(ratio < 1.35, "storage blowup {ratio}");
        assert!(ratio >= 1.0);
    }
}

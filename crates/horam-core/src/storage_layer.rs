//! H-ORAM's storage layer: flat, permuted, partitioned.
//!
//! Paper §4.1.3: "the data inside is organized into N data blocks, each of
//! which stores a small, encrypted and permuted data block"; §4.3.2 divides
//! it into `√N` partitions of `√N` blocks for the group+partition shuffle.
//!
//! Layout: partition `i` occupies slots `[i·S, (i+1)·S)` where `S` is the
//! partition size including headroom (dummy slots absorb the occupancy
//! drift caused by evicted blocks landing in random partitions; overflow
//! spills into the next partition's rebuild pass and is counted).
//!
//! # The batched I/O pipeline
//!
//! Loads go through a **plan/commit** split: [`StorageLayer::plan_io`]
//! performs all control-layer state transitions for one load (slot
//! resolution, once-per-period marking, liveness and location updates)
//! without touching the device, and [`StorageLayer::commit_io`] issues
//! every planned load as **one scatter read**
//! ([`Device::read_scatter`]) so per-op device overhead coalesces.
//! [`StorageLayer::load_batch`] wraps the two, and
//! [`StorageLayer::fetch`] / [`StorageLayer::dummy_load`] are
//! single-element batches — the sequential and batched paths are the same
//! code, which is what the trace-equality tests pin down: a batch records
//! the identical adversary view (device, direction, slot, bytes, order) as
//! the per-block path, only its simulated cost shrinks.
//!
//! Decryption is zero-copy end to end: scattered blocks are opened in
//! place ([`BlockSealer::open_in_place`]), the shuffle re-seals decrypted
//! wire bodies without re-encoding ([`BlockSealer::seal_into`]), and
//! discarded ciphertext buffers recycle through a
//! [`BufferPool`] into the dummies and hot blocks the next
//! partition pass writes.
//!
//! Security invariants maintained here and asserted by tests:
//!
//! * **once per period** — every slot is read at most once between
//!   shuffles (misses read the block's permuted slot; dummy loads consume
//!   a PRP-ordered sequence of untouched slots, materialized lazily by a
//!   cycle-walking Feistel cursor instead of an O(total-slots) table);
//! * **sequential shuffle** — partitions are rebuilt in order `0..√N`
//!   (§4.3.3 argues this order leaks nothing beyond Partition ORAM's
//!   random choice, because partition access is uniform either way);
//! * **fresh epoch per full shuffle** — every rebuild re-seals under new
//!   keys, so ciphertexts cannot be correlated across periods.

use crate::config::HOramConfig;
use crate::permutation_list::Location;
use crate::pool::WorkerPool;
use crate::posmap::PositionMap;
use oram_crypto::keys::KeyHierarchy;
use oram_crypto::pool::BufferPool;
use oram_crypto::prf::Prf;
use oram_crypto::prp::FeistelPrp;
use oram_crypto::seal::{BlockSealer, SealedBlock};
use oram_protocols::error::OramError;
use oram_protocols::types::{BlockContent, BlockContentRef, BlockId};
use oram_shuffle::permutation::Permutation;
use oram_storage::clock::SimDuration;
use oram_storage::device::Device;
use oram_storage::stats::DeviceStats;
use oram_storage::StorageError;
use std::sync::Arc;

/// A full slot→owner image of the storage grid (`None` = dummy slot),
/// as produced by a deferred rebuild for the bulk position-map install.
type SlotImage = Vec<Option<BlockId>>;

/// Result of one I/O load (real miss or dummy/prefetch load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoLoad {
    /// The block the load produced, if the slot held a live block
    /// (dummy slots and stale copies yield `None`).
    pub block: Option<(BlockId, Vec<u8>)>,
    /// Simulated storage time of the load.
    pub duration: SimDuration,
}

/// One load of a batch: a real miss for a specific block, or a dummy load
/// consuming the next slot of the period's PRP order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPlan {
    /// Fetch the named block from its permuted slot.
    Miss(BlockId),
    /// Read the next untouched slot in the PRP dummy order.
    Dummy,
}

/// A load staged by [`StorageLayer::plan_io`], waiting for the batch
/// commit. All control-layer effects have already been applied.
#[derive(Debug, Clone, Copy)]
struct PlannedLoad {
    /// Slot to read; `None` when every slot is already touched (the
    /// over-long-period degenerate case, a zero-cost no-op like the
    /// sequential path's).
    slot: Option<u64>,
    /// The block whose current copy the slot held at plan time (miss
    /// target, or opportunistic prefetch for a dummy hitting a live slot).
    expect: Option<BlockId>,
}

/// Result of committing one planned batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchLoad {
    /// Per-plan results, aligned with the planning order.
    pub loads: Vec<IoLoad>,
    /// Total storage occupancy of the batch (what the scheduler overlaps
    /// against the batch's memory halves).
    pub io_time: SimDuration,
}

/// The observable identity of one load staged by
/// [`StorageLayer::plan_io`]: which physical slot the commit will read and
/// which live block (if any) it is expected to produce. The pipelined
/// driver feeds these into its hazard tracker and stash reservations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedIo {
    /// Slot the commit will read; `None` when the period's dummy order is
    /// exhausted (the over-long-period degenerate case — the commit is a
    /// zero-cost no-op).
    pub slot: Option<u64>,
    /// The block whose current copy the slot held at plan time (miss
    /// target, or opportunistic prefetch for a dummy on a live slot).
    pub expect: Option<BlockId>,
}

/// One committed-but-unopened load: the ciphertext is off the device (the
/// read is charged and traced), verification and decryption are still
/// pending.
#[derive(Debug)]
struct RawLoad {
    slot: Option<u64>,
    expect: Option<BlockId>,
    sealed: Option<SealedBlock>,
    cost: SimDuration,
}

/// A committed scatter batch awaiting its crypto phase: every device
/// access already happened (in planning order, charged and traced), so
/// opening the batch is pure computation — [`BatchOpener::open`] may run
/// on a worker thread while the scheduling thread plans ahead, without
/// touching any observable state.
#[derive(Debug)]
pub struct RawBatch {
    loads: Vec<RawLoad>,
    io_time: SimDuration,
}

impl RawBatch {
    /// Number of loads in the batch.
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }
}

/// The detached crypto phase of a batch commit: verify, decrypt, decode,
/// and identity-check every load of a [`RawBatch`].
///
/// Owns a clone of the current epoch's sealer, so it stays valid while
/// the storage layer keeps planning (epochs only rotate at shuffles,
/// which require every batch to be retired first). Pure over its inputs
/// and `Send`: the pipelined driver runs [`open`](Self::open) on the
/// worker pool while the scheduling thread's control sweep continues.
#[derive(Debug, Clone)]
pub struct BatchOpener {
    sealer: BlockSealer,
    zero_copy: bool,
    device: String,
}

impl BatchOpener {
    /// Opens every load: blocks expected live are verified and decrypted
    /// (in place on the zero-copy path); stale/dummy reads discard their
    /// bytes unopened, exactly like the sequential path.
    ///
    /// # Errors
    ///
    /// [`OramError::MalformedBlock`] if a slot does not hold the expected
    /// block; [`StorageError::MissingBlock`] if a slot the metadata calls
    /// live came back empty; crypto errors propagate. Every error is
    /// **fail-stop** (see [`StorageLayer::commit_io`]).
    pub fn open(&self, raw: RawBatch) -> Result<BatchLoad, OramError> {
        let mut loads = Vec::with_capacity(raw.loads.len());
        for load in raw.loads {
            let Some(slot) = load.slot else {
                loads.push(IoLoad {
                    block: None,
                    duration: SimDuration::ZERO,
                });
                continue;
            };
            let block = match load.expect {
                None => None,
                Some(id) => {
                    let Some(sealed) = load.sealed else {
                        return Err(OramError::Storage(StorageError::MissingBlock {
                            device: self.device.clone(),
                            addr: slot,
                        }));
                    };
                    let body = if self.zero_copy {
                        self.sealer.open_in_place(sealed)
                    } else {
                        self.sealer.open(&sealed)
                    }?;
                    match BlockContent::decode_owned(body, slot)? {
                        BlockContent::Real {
                            id: stored,
                            payload,
                            ..
                        } if stored == id => Some((id, payload)),
                        _ => return Err(OramError::MalformedBlock { slot }),
                    }
                }
            };
            loads.push(IoLoad {
                block,
                duration: load.cost,
            });
        }
        Ok(BatchLoad {
            loads,
            io_time: raw.io_time,
        })
    }
}

/// Timing breakdown of one shuffle pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleReport {
    /// Wall-clock time with the read stream pipelined against the write
    /// stream (`max(read, write)` — §5.1's discussion of sequential
    /// shuffle speed).
    pub wall_time: SimDuration,
    /// Total storage read occupancy.
    pub read_time: SimDuration,
    /// Total storage write occupancy.
    pub write_time: SimDuration,
    /// Partitions rebuilt.
    pub partitions: u64,
    /// Blocks that overflowed a partition and spilled to the next.
    pub spilled: u64,
}

/// One slot's content between the open and seal halves of a rebuild pass.
#[derive(Debug)]
enum PassEntry {
    /// A live cold block: its decrypted wire body, carried through the
    /// permutation and re-sealed without re-encoding.
    Wire(BlockId, Vec<u8>),
    /// An evicted hot block: raw payload bytes, encoded onto a pooled
    /// buffer at seal time.
    Hot(BlockId, Vec<u8>),
}

impl PassEntry {
    fn id(&self) -> BlockId {
        match self {
            PassEntry::Wire(id, _) | PassEntry::Hot(id, _) => *id,
        }
    }
}

/// A decrypted slot of the read stream: `None` for stale/dummy slots.
type OpenedSlot = Option<(BlockId, Vec<u8>)>;

/// Crypto parameters shared by every slot of one rebuild pass. `Copy`
/// borrows only, so the parallel chunks can each carry one.
#[derive(Clone, Copy)]
struct PassCrypto<'a> {
    /// Sealer for the outgoing epoch (the pass reads under it).
    read_sealer: &'a BlockSealer,
    /// Sealer for the fresh epoch (the pass writes under it).
    write_sealer: &'a BlockSealer,
    zero_copy: bool,
    payload_len: usize,
    wire_len: usize,
    /// Device name for fail-stop error reports.
    device: &'a str,
}

/// Pops a wire-sized buffer (pooled in zero-copy mode, fresh otherwise).
fn take_wire_buffer(ctx: &PassCrypto<'_>, pool: &mut BufferPool) -> Vec<u8> {
    if ctx.zero_copy {
        pool.take(ctx.wire_len)
    } else {
        vec![0u8; ctx.wire_len]
    }
}

/// Returns a spent buffer to `pool` (dropped in legacy mode). Undersized
/// buffers (e.g. bare payloads) are dropped rather than recycled —
/// pooling them would just turn the next take into a reallocation.
fn recycle_wire_buffer(ctx: &PassCrypto<'_>, pool: &mut BufferPool, buffer: Vec<u8>) {
    if ctx.zero_copy && buffer.capacity() >= ctx.wire_len {
        pool.recycle(buffer);
    }
}

/// The open half of one slot: verify+decrypt a live block into its wire
/// body, recycle a discarded stale ciphertext, fail-stop on a slot the
/// metadata calls live but the device lost. Pure over `(ctx, inputs)` —
/// safe to run on any worker in any order.
fn open_pass_slot(
    ctx: &PassCrypto<'_>,
    pool: &mut BufferPool,
    addr: u64,
    owner: Option<BlockId>,
    sealed: Option<SealedBlock>,
) -> Result<OpenedSlot, OramError> {
    let Some(sealed) = sealed else {
        // A slot the metadata calls live must hold a block; fail-stop
        // (like `commit_io`) rather than silently dropping it and
        // corrupting the occupancy counts.
        if owner.is_some() {
            return Err(OramError::Storage(StorageError::MissingBlock {
                device: ctx.device.to_string(),
                addr,
            }));
        }
        return Ok(None);
    };
    match owner {
        None => {
            recycle_wire_buffer(ctx, pool, sealed.into_body());
            Ok(None)
        }
        Some(owner) => {
            let body = if ctx.zero_copy {
                ctx.read_sealer.open_in_place(sealed)
            } else {
                ctx.read_sealer.open(&sealed)
            }?;
            match BlockContent::decode_ref(&body, addr)? {
                BlockContentRef::Real { id, .. } if id == owner => Ok(Some((id, body))),
                _ => Err(OramError::MalformedBlock { slot: addr }),
            }
        }
    }
}

/// The seal half of one slot: re-home the permuted entry (or a dummy)
/// under the fresh epoch. `seq` is assigned by the caller in slot order,
/// so the ciphertext depends only on `(addr, seq, body)` — byte-identical
/// whichever worker seals it.
fn seal_pass_slot(
    ctx: &PassCrypto<'_>,
    pool: &mut BufferPool,
    addr: u64,
    seq: u64,
    entry: Option<PassEntry>,
) -> SealedBlock {
    let body = match entry {
        Some(PassEntry::Wire(_, mut body)) => {
            BlockContent::patch_wire_leaf(&mut body, 0);
            body
        }
        Some(PassEntry::Hot(id, payload)) => {
            let mut body = take_wire_buffer(ctx, pool);
            let content = BlockContent::Real {
                id,
                leaf: 0,
                payload,
            };
            content.encode_into(ctx.payload_len, &mut body);
            if let BlockContent::Real { payload, .. } = content {
                recycle_wire_buffer(ctx, pool, payload);
            }
            body
        }
        None => {
            let mut body = take_wire_buffer(ctx, pool);
            BlockContent::Dummy.encode_into(ctx.payload_len, &mut body);
            body
        }
    };
    if ctx.zero_copy {
        ctx.write_sealer.seal_into(addr, seq, body)
    } else {
        ctx.write_sealer.seal(addr, seq, &body)
    }
}

/// Chunk length for splitting one pass's slots across `threads` workers.
/// Deterministic in `(len, threads)` — both phases of a pass and the
/// pre-stocking sweep must agree on it.
fn chunk_len(len: usize, threads: usize) -> usize {
    len.div_ceil(threads).max(1)
}

/// Runs `per_slot` over every `(inputs[i], outputs[i])` pair, chunked
/// across the worker pool — the shared scaffolding of both crypto halves
/// of a rebuild pass. Chunk boundaries depend only on `(len, threads)`,
/// each chunk gets exclusive use of one per-worker buffer pool, and every
/// worker pool is drained back into `shared` before returning, so buffer
/// pooling stays globally balanced and results land in slot order.
fn dispatch_chunks<I: Send, O: Send>(
    pool: &WorkerPool,
    worker_pools: &mut [BufferPool],
    shared: &mut BufferPool,
    inputs: &mut [I],
    outputs: &mut [O],
    per_slot: impl Fn(&mut BufferPool, usize, &mut I, &mut O) + Sync,
) {
    let chunk = chunk_len(inputs.len(), pool.threads());
    let per_slot = &per_slot;
    pool.scope(|scope| {
        for (chunk_index, ((in_chunk, out_chunk), wpool)) in inputs
            .chunks_mut(chunk)
            .zip(outputs.chunks_mut(chunk))
            .zip(worker_pools.iter_mut())
            .enumerate()
        {
            let chunk_base = chunk_index * chunk;
            scope.spawn(move || {
                for (j, (input, output)) in in_chunk.iter_mut().zip(out_chunk).enumerate() {
                    per_slot(wpool, chunk_base + j, input, output);
                }
            });
        }
    });
    for wpool in worker_pools {
        wpool.drain_into(shared);
    }
}

/// The storage layer. See the [module docs](self).
#[derive(Debug)]
pub struct StorageLayer {
    device: Device,
    keys: KeyHierarchy,
    sealer: BlockSealer,
    epoch: u64,
    seal_seq: u64,
    /// The position map: logical-block locations plus the slot→owner
    /// inverse (`Some(id)` while a slot holds the *current* copy of block
    /// `id`; fetching clears it, stale ciphertext remains). Flat table or
    /// recursive ORAM per [`crate::config::PosmapMode`] — built by the
    /// engine via [`crate::posmap::build_posmap`].
    posmap: Box<dyn PositionMap>,
    /// First position-map failure observed by the infallible scheduler
    /// hit test, deferred to the next [`plan_io`](Self::plan_io) call
    /// (position-map errors are instance-fatal either way).
    posmap_error: Option<OramError>,
    /// Per-partition live-block counts, maintained incrementally so
    /// rebuild capacity checks are O(1) per partition instead of a scan.
    partition_live: Vec<u64>,
    /// Read-this-period markers (the once-per-period invariant).
    touched: Vec<bool>,
    /// Lazy PRP cursor backing the dummy-load order: slot `i` of the
    /// period's order is `dummy_prp.permute(i)`, computed on demand.
    dummy_prp: FeistelPrp,
    dummy_cursor: u64,
    /// PRF from which each period's dummy-order PRP key is derived.
    dummy_prf: Prf,
    /// The current period's dummy-order PRP key, kept so snapshots can
    /// rebuild the cursor exactly (the key depends on the shuffle seed of
    /// the period that installed it, which is not otherwise recoverable).
    dummy_key: [u8; 16],
    /// Loads staged by [`plan_io`](Self::plan_io) awaiting commit.
    pending: Vec<PlannedLoad>,
    /// Recycled wire-body buffers for the zero-copy seal/open stream.
    pool: BufferPool,
    /// Wall-clock worker pool for the rebuild stream's data-parallel
    /// crypto (`None` at `worker_threads = 1` — the serial path).
    workers: Option<Arc<WorkerPool>>,
    /// Per-chunk buffer pools for the parallel stream. Between passes the
    /// buffers live in [`pool`](Self::pool); each seal phase pre-stocks
    /// chunk `i`'s pool with exactly the buffers its slots will take, so
    /// chunked execution allocates no more than the serial path.
    worker_pools: Vec<BufferPool>,
    /// Zero-copy crypto path toggle (see [`HOramConfig::zero_copy_io`]);
    /// simulated timing is identical either way — this ablates host-side
    /// allocation and copying only.
    zero_copy: bool,
    partition_count: u64,
    partition_slots: u64,
    capacity: u64,
    payload_len: usize,
    /// Rotating window start for partial shuffles.
    partial_window_start: u64,
    /// Monotone period counter (varies the dummy-load order even across
    /// partial shuffles, which keep the epoch key).
    period_counter: u64,
}

impl StorageLayer {
    /// Builds the layer and installs the initial permuted layout of all
    /// `N` zero-filled blocks (construction charge is reset by the caller).
    /// `posmap` must match the config's geometry — the engine builds it
    /// with [`crate::posmap::build_posmap`].
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the initial layout write.
    pub fn new(
        config: &HOramConfig,
        mut device: Device,
        keys: KeyHierarchy,
        posmap: Box<dyn PositionMap>,
    ) -> Result<Self, OramError> {
        // A cache chosen at the engine level overrides whatever the
        // machine description installed; `None` leaves the machine's
        // cache (if any) in place.
        if let Some(cache) = &config.cache {
            device.install_cache(cache.clone())?;
        }
        let partition_count = config.partition_count();
        let partition_slots = config.partition_slots();
        let total_slots = partition_count * partition_slots;
        debug_assert_eq!(posmap.capacity(), config.capacity);
        debug_assert_eq!(posmap.total_slots(), total_slots);
        let epoch = 0;
        let sealer = BlockSealer::new(&keys.epoch_keys(epoch));
        let dummy_prf = Prf::new(*keys.epoch_keys(0).prf());
        let mut layer = Self {
            device,
            keys,
            sealer,
            epoch,
            seal_seq: 0,
            posmap,
            posmap_error: None,
            partition_live: vec![0; partition_count as usize],
            touched: vec![false; total_slots as usize],
            dummy_prp: FeistelPrp::new([0u8; 16], total_slots)?,
            dummy_cursor: 0,
            dummy_prf,
            dummy_key: [0u8; 16],
            pending: Vec::new(),
            pool: BufferPool::new(),
            workers: WorkerPool::for_threads(config.worker_threads),
            worker_pools: (0..config.worker_threads)
                .map(|_| BufferPool::new())
                .collect(),
            zero_copy: config.zero_copy_io,
            partition_count,
            partition_slots,
            capacity: config.capacity,
            payload_len: config.payload_len,
            partial_window_start: 0,
            period_counter: 0,
        };
        // Initial build: treat every block as "hot" with zero payloads and
        // run the standard full shuffle machinery.
        let all: Vec<(BlockId, Vec<u8>)> = (0..config.capacity)
            .map(|id| (BlockId(id), vec![0u8; config.payload_len]))
            .collect();
        layer.rebuild_full(all, config.seed)?;
        Ok(layer)
    }

    /// Total physical slots (`√N · S`).
    pub fn total_slots(&self) -> u64 {
        self.partition_count * self.partition_slots
    }

    /// Storage bytes occupied (for the paper's storage-overhead rows).
    pub fn storage_bytes(&self, block_bytes: u64) -> u64 {
        self.total_slots() * block_bytes
    }

    /// The position map (control-layer view).
    pub fn posmap(&self) -> &dyn PositionMap {
        self.posmap.as_ref()
    }

    /// Mutable position map access (lookups on the recursive variant walk
    /// its level ORAMs, so even reads need `&mut`).
    pub fn posmap_mut(&mut self) -> &mut dyn PositionMap {
        self.posmap.as_mut()
    }

    /// Current key epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying device (experiment accounting).
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access (used for redundancy charges in the partial
    /// shuffle and by tests).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Block-cache counters of the storage device, when a cache is
    /// installed.
    pub fn cache_stats(&self) -> Option<oram_storage::cache::CacheStats> {
        self.device.cache_stats()
    }

    /// Whether the scheduler should treat `id` as a memory hit. The hit
    /// test is infallible by contract; a position-map failure (possible on
    /// the recursive variant) answers `false` and is re-raised by the next
    /// [`plan_io`](Self::plan_io) — the error is instance-fatal, deferral
    /// only moves where it surfaces.
    pub fn is_in_memory(&mut self, id: BlockId) -> bool {
        match self.posmap.is_in_memory(id) {
            Ok(hit) => hit,
            Err(error) => {
                if self.posmap_error.is_none() {
                    self.posmap_error = Some(error);
                }
                false
            }
        }
    }

    /// Dataset size `N` in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of partitions (`√N`).
    pub fn partition_count(&self) -> u64 {
        self.partition_count
    }

    fn storage_delta(&self, before: &DeviceStats) -> DeviceStats {
        self.device.stats().delta_since(before)
    }

    /// Places `id` at `slot` in the position map and bumps the partition
    /// live count.
    fn place_tracked(&mut self, id: BlockId, slot: u64) -> Result<(), OramError> {
        self.posmap.place(id, slot)?;
        self.partition_live[(slot / self.partition_slots) as usize] += 1;
        Ok(())
    }

    /// Clears `slot`'s ownership, returning the block it held (if live)
    /// and keeping the partition live count in step.
    fn take_owner_tracked(&mut self, slot: u64) -> Result<Option<BlockId>, OramError> {
        let owner = self.posmap.take_owner(slot)?;
        if owner.is_some() {
            self.partition_live[(slot / self.partition_slots) as usize] -= 1;
        }
        Ok(owner)
    }

    /// The next untouched slot of the period's PRP dummy order, walking
    /// the lazy Feistel cursor past slots consumed by real misses.
    fn next_dummy_slot(&mut self) -> Result<Option<u64>, OramError> {
        let total = self.total_slots();
        while self.dummy_cursor < total {
            let slot = self.dummy_prp.permute(self.dummy_cursor)?;
            self.dummy_cursor += 1;
            if !self.touched[slot as usize] {
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    /// Re-keys the dummy-order PRP for a fresh period.
    fn reset_dummy_order(&mut self, seed: u64) -> Result<(), OramError> {
        let words = [seed, self.epoch, self.period_counter];
        let lo = self.dummy_prf.eval_words("dummy-order-lo", &words);
        let hi = self.dummy_prf.eval_words("dummy-order-hi", &words);
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&lo.to_le_bytes());
        key[8..].copy_from_slice(&hi.to_le_bytes());
        self.dummy_key = key;
        self.dummy_prp = FeistelPrp::new(key, self.total_slots())?;
        self.dummy_cursor = 0;
        Ok(())
    }

    /// Serializes the layer's mutable control state plus the device state
    /// (see [`Device::save_state`]). Requires no I/O batch in flight.
    ///
    /// # Errors
    ///
    /// Storage backend errors propagate.
    /// [`OramError::SnapshotInvalid`] if loads are planned but uncommitted
    /// (snapshots are taken between batches).
    pub fn save_state(
        &mut self,
        w: &mut oram_crypto::persist::StateWriter,
    ) -> Result<(), OramError> {
        if !self.pending.is_empty() {
            return Err(OramError::SnapshotInvalid {
                reason: "snapshot while a planned I/O batch is uncommitted".into(),
            });
        }
        w.put_u64(self.epoch);
        w.put_u64(self.seal_seq);
        w.put_u64(self.period_counter);
        w.put_u64(self.partial_window_start);
        w.put_u64(self.dummy_cursor);
        w.put_bytes(&self.dummy_key);
        self.posmap.save_state(w)?;
        w.put_usize(self.partition_live.len());
        for &live in &self.partition_live {
            w.put_u64(live);
        }
        w.put_usize(self.touched.len());
        for &touched in &self.touched {
            w.put_bool(touched);
        }
        self.device.save_state(w).map_err(OramError::Storage)
    }

    /// Rebuilds a layer from a snapshot **without** writing the initial
    /// layout: derived structures (keys, sealers, pools) are constructed
    /// exactly as [`new`](Self::new) does, mutable state comes from the
    /// snapshot, and the device's stored blocks come from the snapshot
    /// (volatile store) or from the device's own durable file. `posmap`
    /// must be freshly built in restore mode
    /// ([`crate::posmap::build_posmap`] with `restore = true`) — its
    /// state loads from the snapshot here.
    ///
    /// # Errors
    ///
    /// [`OramError::SnapshotInvalid`] on geometry mismatch or malformed
    /// state.
    pub fn restore(
        config: &HOramConfig,
        mut device: Device,
        keys: KeyHierarchy,
        mut posmap: Box<dyn PositionMap>,
        r: &mut oram_crypto::persist::StateReader<'_>,
    ) -> Result<Self, OramError> {
        let partition_count = config.partition_count();
        let partition_slots = config.partition_slots();
        let total_slots = (partition_count * partition_slots) as usize;

        let epoch = r.get_u64()?;
        let seal_seq = r.get_u64()?;
        let period_counter = r.get_u64()?;
        let partial_window_start = r.get_u64()?;
        let dummy_cursor = r.get_u64()?;
        let key_bytes = r.get_bytes()?;
        let dummy_key: [u8; 16] = key_bytes
            .try_into()
            .map_err(|_| OramError::SnapshotInvalid {
                reason: "dummy-order key is not 16 bytes".into(),
            })?;
        posmap.load_state(r)?;
        let live_count = r.get_usize()?;
        if live_count != partition_count as usize {
            return Err(OramError::SnapshotInvalid {
                reason: format!(
                    "{live_count} partition live counts for {partition_count} partitions"
                ),
            });
        }
        let mut partition_live = Vec::with_capacity(partition_count as usize);
        for _ in 0..partition_count {
            partition_live.push(r.get_u64()?);
        }
        let touched_count = r.get_usize()?;
        if touched_count != total_slots {
            return Err(OramError::SnapshotInvalid {
                reason: format!("{touched_count} period markers for {total_slots} slots"),
            });
        }
        let mut touched = Vec::with_capacity(total_slots);
        for _ in 0..total_slots {
            touched.push(r.get_bool()?);
        }
        // Install the configured cache *before* the device state loads:
        // the snapshot's cache section repopulates residency from the
        // restored store, and a presence mismatch fails closed inside
        // `load_state`.
        if let Some(cache) = &config.cache {
            device.install_cache(cache.clone())?;
        }
        device.load_state(r)?;

        let sealer = BlockSealer::new(&keys.epoch_keys(epoch));
        let dummy_prf = Prf::new(*keys.epoch_keys(0).prf());
        Ok(Self {
            device,
            keys,
            sealer,
            epoch,
            seal_seq,
            posmap,
            posmap_error: None,
            partition_live,
            touched,
            dummy_prp: FeistelPrp::new(dummy_key, (total_slots as u64).max(1))?,
            dummy_cursor,
            dummy_prf,
            dummy_key,
            pending: Vec::new(),
            pool: BufferPool::new(),
            workers: WorkerPool::for_threads(config.worker_threads),
            worker_pools: (0..config.worker_threads)
                .map(|_| BufferPool::new())
                .collect(),
            zero_copy: config.zero_copy_io,
            partition_count,
            partition_slots,
            capacity: config.capacity,
            payload_len: config.payload_len,
            partial_window_start,
            period_counter,
        })
    }

    /// Stages one load: applies every control-layer state transition now
    /// (so later plans — and the scheduler's hit test — observe it) and
    /// queues the device read for [`commit_io`](Self::commit_io) /
    /// [`commit_scatter`](Self::commit_scatter). Returns the load's
    /// observable identity so the pipelined driver can track hazards and
    /// reserve stash space at plan time.
    ///
    /// # Errors
    ///
    /// For a [`LoadPlan::Miss`], [`OramError::Internal`] if the block is
    /// already marked in-memory (the scheduler must classify hits before
    /// issuing I/O) or if its slot was already read this period (the
    /// once-per-period invariant would be violated). Either means the
    /// instance's control state is damaged: fail-stop, quarantine, restore
    /// from a checkpoint.
    pub fn plan_io(&mut self, plan: LoadPlan) -> Result<PlannedIo, OramError> {
        // A position-map failure swallowed by the infallible hit test
        // surfaces here, before any further control-state transitions.
        if let Some(error) = self.posmap_error.take() {
            return Err(error);
        }
        let planned = match plan {
            LoadPlan::Miss(id) => {
                let Location::Storage { slot } = self.posmap.location(id)? else {
                    return Err(OramError::internal(format!(
                        "fetch of in-memory block {id} — scheduler hit classification broken"
                    )));
                };
                if self.touched[slot as usize] {
                    return Err(OramError::internal(format!(
                        "slot {slot} read twice in one period — invariant broken"
                    )));
                }
                self.touched[slot as usize] = true;
                let owner = self.take_owner_tracked(slot)?;
                debug_assert_eq!(owner, Some(id), "location table and slot owners diverged");
                self.posmap.set_in_memory(id)?;
                PlannedLoad {
                    slot: Some(slot),
                    expect: Some(id),
                }
            }
            LoadPlan::Dummy => match self.next_dummy_slot()? {
                // Every slot touched: the period is over-long; the caller's
                // period accounting forces a shuffle before this can happen
                // in a correct configuration. Commit treats it as a
                // zero-cost no-op.
                None => PlannedLoad {
                    slot: None,
                    expect: None,
                },
                Some(slot) => {
                    self.touched[slot as usize] = true;
                    let expect = self.take_owner_tracked(slot)?;
                    if let Some(id) = expect {
                        self.posmap.set_in_memory(id)?;
                    }
                    PlannedLoad {
                        slot: Some(slot),
                        expect,
                    }
                }
            },
        };
        self.pending.push(planned);
        Ok(PlannedIo {
            slot: planned.slot,
            expect: planned.expect,
        })
    }

    /// Number of loads staged and not yet committed.
    pub fn pending_io(&self) -> usize {
        self.pending.len()
    }

    /// A detached opener for the current epoch (see [`BatchOpener`]).
    pub fn batch_opener(&self) -> BatchOpener {
        BatchOpener {
            sealer: self.sealer.clone(),
            zero_copy: self.zero_copy,
            device: self.device.name().to_string(),
        }
    }

    /// The shared wall-clock worker pool (`None` on the serial path).
    pub(crate) fn workers(&self) -> Option<Arc<WorkerPool>> {
        self.workers.clone()
    }

    /// The device half of a batch commit: issues the first `count` staged
    /// loads (one scatter read — or a plain read for a singleton, which
    /// charges identically) and returns the raw ciphertexts for
    /// [`BatchOpener::open`]. All simulated cost and trace records happen
    /// here, on the calling thread, in planning order; the crypto phase
    /// carries none.
    ///
    /// # Errors
    ///
    /// Storage errors propagate (fail-stop, as
    /// [`commit_io`](Self::commit_io)).
    pub fn commit_scatter(&mut self, count: usize) -> Result<RawBatch, OramError> {
        let count = count.min(self.pending.len());
        let planned: Vec<PlannedLoad> = self.pending.drain(..count).collect();
        let before = *self.device.stats();
        let mut loads = Vec::with_capacity(planned.len());
        if planned.len() == 1 {
            // Per-block fast path: the sequential configuration
            // (io_batch = 1) commits one load at a time — skip the batch
            // bookkeeping and issue a plain read (a singleton scatter
            // charges exactly the same cost, so timing and trace are
            // unchanged).
            let one = planned[0];
            match one.slot {
                None => loads.push(RawLoad {
                    slot: None,
                    expect: None,
                    sealed: None,
                    cost: SimDuration::ZERO,
                }),
                Some(slot) => {
                    let sealed = self.device.read_block(slot)?;
                    let cost = self.storage_delta(&before).busy;
                    loads.push(RawLoad {
                        slot: Some(slot),
                        expect: one.expect,
                        sealed: Some(sealed),
                        cost,
                    });
                }
            }
        } else {
            let slots: Vec<u64> = planned.iter().filter_map(|p| p.slot).collect();
            let mut items = self.device.read_scatter(&slots)?.into_iter();
            for planned in planned {
                let Some(slot) = planned.slot else {
                    loads.push(RawLoad {
                        slot: None,
                        expect: None,
                        sealed: None,
                        cost: SimDuration::ZERO,
                    });
                    continue;
                };
                let item = items
                    .next()
                    .ok_or_else(|| OramError::internal("fewer scatter items than planned slots"))?;
                loads.push(RawLoad {
                    slot: Some(slot),
                    expect: planned.expect,
                    sealed: item.block,
                    cost: item.cost,
                });
            }
        }
        let io_time = self.storage_delta(&before).busy;
        Ok(RawBatch { loads, io_time })
    }

    /// Issues every staged load as one scatter read and returns the
    /// per-load results in planning order. Blocks expected live are
    /// verified and decrypted (in place); stale/dummy reads discard their
    /// bytes unopened, exactly like the sequential path.
    ///
    /// # Errors
    ///
    /// [`OramError::MalformedBlock`] if a slot does not hold the expected
    /// block (protocol invariant violation); storage/crypto errors
    /// propagate. Every error here is **fail-stop**: planning already
    /// applied the loads' control-state transitions (period markers,
    /// locations), and they are not rolled back — a corrupted or missing
    /// block means the device no longer matches the trusted metadata, so
    /// the instance must be discarded, not retried.
    pub fn commit_io(&mut self) -> Result<BatchLoad, OramError> {
        let opener = self.batch_opener();
        let raw = self.commit_scatter(self.pending.len())?;
        opener.open(raw)
    }

    /// Plans and commits `plans` as one batch — the one-call form of
    /// [`plan_io`](Self::plan_io) + [`commit_io`](Self::commit_io).
    ///
    /// # Errors
    ///
    /// As [`plan_io`](Self::plan_io) and [`commit_io`](Self::commit_io) —
    /// fail-stop, not retryable; also [`OramError::Internal`] if loads are
    /// already staged (mixing the two interfaces mid-batch is a caller
    /// bug).
    pub fn load_batch(&mut self, plans: &[LoadPlan]) -> Result<BatchLoad, OramError> {
        if !self.pending.is_empty() {
            return Err(OramError::internal(
                "load_batch while a planned batch is uncommitted",
            ));
        }
        for &plan in plans {
            self.plan_io(plan)?;
        }
        self.commit_io()
    }

    /// Fetches the block `id` from its permuted slot (a **miss** load).
    /// Marks the block in-memory; the caller inserts it into the memory
    /// ORAM's stash. Equivalent to a single-element
    /// [`load_batch`](Self::load_batch).
    ///
    /// # Errors
    ///
    /// Returns [`OramError::MalformedBlock`] if the slot does not hold the
    /// expected block (protocol invariant violation); storage/crypto
    /// errors propagate; invariant violations surface as
    /// [`OramError::Internal`] (see [`plan_io`](Self::plan_io)).
    pub fn fetch(&mut self, id: BlockId) -> Result<IoLoad, OramError> {
        let mut batch = self.load_batch(&[LoadPlan::Miss(id)])?;
        batch
            .loads
            .pop()
            .ok_or_else(|| OramError::internal("one-load batch committed no load"))
    }

    /// A **dummy** load: reads the next untouched slot in the PRP order.
    /// If the slot holds a live block, that block migrates to memory as an
    /// opportunistic prefetch (the caller inserts it); stale or dummy
    /// slots produce no block but an indistinguishable bus access.
    /// Equivalent to a single-element [`load_batch`](Self::load_batch).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn dummy_load(&mut self) -> Result<IoLoad, OramError> {
        let mut batch = self.load_batch(&[LoadPlan::Dummy])?;
        batch
            .loads
            .pop()
            .ok_or_else(|| OramError::internal("one-load batch committed no load"))
    }

    /// Full group+partition shuffle (§4.3.2): rebuild every partition in
    /// order `0..√N`, folding the evicted `hot` blocks (already
    /// obliviously shuffled by the tree evict) into per-partition pieces.
    /// Starts a fresh epoch: new keys, new intra-partition permutations,
    /// cleared period markers.
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn rebuild_full(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        seed: u64,
    ) -> Result<ShuffleReport, OramError> {
        let window: Vec<u64> = (0..self.partition_count).collect();
        let (report, _) = self.rebuild_window(hot, &window, seed, false)?;
        Ok(report)
    }

    /// [`rebuild_full`](Self::rebuild_full) with the bulk position-map
    /// rebuild **deferred**: the fresh slot→owner image is returned
    /// instead of installed, and the caller must pass it to
    /// [`finish_posmap_rebuild`](Self::finish_posmap_rebuild) before the
    /// next access. The split lets the pipelined engine overlap the
    /// position-map level sweep (posmap-internal clocks and traces only)
    /// with the memory tree's own rebuild — the two touch disjoint state,
    /// and the serial order is posmap-then-tree either way, so results
    /// are byte-identical to [`rebuild_full`](Self::rebuild_full).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn rebuild_full_deferred(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        seed: u64,
    ) -> Result<(ShuffleReport, Vec<Option<BlockId>>), OramError> {
        let window: Vec<u64> = (0..self.partition_count).collect();
        let (report, image) = self.rebuild_window(hot, &window, seed, true)?;
        Ok((
            report,
            image.ok_or_else(|| OramError::internal("full rebuild produced no deferred image"))?,
        ))
    }

    /// Installs the slot→owner image a
    /// [`rebuild_full_deferred`](Self::rebuild_full_deferred) returned.
    ///
    /// # Errors
    ///
    /// Position-map errors propagate (instance-fatal).
    pub fn finish_posmap_rebuild(&mut self, image: &[Option<BlockId>]) -> Result<(), OramError> {
        self.posmap.rebuild_all(image)
    }

    /// Partial shuffle (§5.3.1): rebuild only the next `window_len`
    /// partitions of a rotating window (partition `i` is reshuffled once
    /// every `1/r` periods). All evicted hot blocks are absorbed by the
    /// window's partitions — the paper's "evicted data keeps concatenating
    /// on top of each partition" realized as concentration into the
    /// currently-shuffled window, which is why partial shuffling trades
    /// shuffle time against extra redundancy (window partitions run
    /// fuller, lengthening their rebuild and the dummy-load tail). If the
    /// window's free capacity cannot absorb the evicted set, the window is
    /// extended partition by partition (counted in
    /// [`ShuffleReport::spilled`]).
    ///
    /// # Errors
    ///
    /// Storage/crypto errors propagate.
    pub fn rebuild_partial(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        window_len: u64,
        seed: u64,
    ) -> Result<ShuffleReport, OramError> {
        let window_len = window_len.clamp(1, self.partition_count);
        let mut window: Vec<u64> = (0..window_len)
            .map(|i| (self.partial_window_start + i) % self.partition_count)
            .collect();

        // Extend the window until its free capacity covers the hot set
        // (capacity is control-layer metadata: live counts per partition).
        let mut capacity: u64 = window.iter().map(|&p| self.partition_free_slots(p)).sum();
        while capacity < hot.len() as u64 && (window.len() as u64) < self.partition_count {
            let next = (self.partial_window_start + window.len() as u64) % self.partition_count;
            capacity += self.partition_free_slots(next);
            window.push(next);
        }

        self.partial_window_start =
            (self.partial_window_start + window.len() as u64) % self.partition_count;
        let extended = window.len() as u64 - window_len;
        let (mut report, _) = self.rebuild_window(hot, &window, seed, false)?;
        report.spilled += extended;
        Ok(report)
    }

    /// Free (dummy) slots of one partition — O(1) from the incrementally
    /// maintained live counts.
    fn partition_free_slots(&self, partition: u64) -> u64 {
        self.partition_slots - self.partition_live[partition as usize]
    }

    /// Rebuilds the given partitions in ascending pass order, distributing
    /// `hot` across them as contiguous pieces sized to each partition's
    /// free capacity (the evict shuffle already randomized piece
    /// membership, so contiguous capacity-aware splitting keeps piece
    /// assignment uniform over identities).
    ///
    /// Each pass is a double-buffered stream: the partition's ciphertexts
    /// are taken off the device in one streaming read (the read buffer),
    /// opened in place, permuted into the write-side image, re-sealed in
    /// place under the fresh epoch, and streamed back out — no partition-
    /// sized plaintext image is ever materialized, and in steady state no
    /// per-block allocation happens (buffers recycle through the pool).
    /// The simulated read and write streams overlap (`max(read, write)`
    /// wall time); the in-enclave crypto is charged as zero simulated time
    /// per the paper's model, and the in-place pipeline keeps its host
    /// cost from dominating wall-clock runs.
    ///
    /// Capacity violations ([`OramError::Internal`]) cannot happen from
    /// the public callers — full windows by the `N ≤ P·S` invariant,
    /// partial windows by extension — but surface as typed errors rather
    /// than panics so a damaged instance can be quarantined.
    fn rebuild_window(
        &mut self,
        hot: Vec<(BlockId, Vec<u8>)>,
        window: &[u64],
        seed: u64,
        defer_posmap: bool,
    ) -> Result<(ShuffleReport, Option<SlotImage>), OramError> {
        if !self.pending.is_empty() {
            return Err(OramError::internal(
                "shuffle while a planned I/O batch is uncommitted",
            ));
        }
        let before = *self.device.stats();
        // New epoch unless this is a partial pass (partial passes keep the
        // epoch key so untouched partitions remain readable). Partitions
        // are still sealed under the old epoch, so reads during this pass
        // use the outgoing sealer while writes use the fresh one.
        let read_sealer = self.sealer.clone();
        let full = window.len() as u64 == self.partition_count;
        if full {
            self.epoch += 1;
            self.sealer = BlockSealer::new(&self.keys.epoch_keys(self.epoch));
        }
        // A window over every partition installs the new layout with one
        // bulk position-map rebuild at the end (the recursive map turns
        // this into a public linear level sweep instead of O(N) chain
        // walks); partial windows re-home per entry.
        let mut full_image: Vec<Option<BlockId>> = if full {
            vec![None; self.total_slots() as usize]
        } else {
            Vec::new()
        };
        let piece_prf = Prf::new(Prf::new([0u8; 16]).subkey("piece-split", seed ^ self.epoch));

        // Capacity-aware contiguous split of the hot list (§4.3.2's "i-th
        // piece of evicted data"): each partition's piece is its fair share
        // clamped to its free slots, with the remainder flowing onward.
        let free: Vec<u64> = window
            .iter()
            .map(|&p| self.partition_free_slots(p))
            .collect();
        let total_free: u64 = free.iter().sum();
        if hot.len() as u64 > total_free {
            return Err(OramError::internal(format!(
                "window free capacity {total_free} cannot hold {} evicted blocks",
                hot.len()
            )));
        }
        let fair_share = (hot.len() as u64).div_ceil(window.len() as u64);
        let mut pieces: Vec<Vec<(BlockId, Vec<u8>)>> =
            (0..window.len()).map(|_| Vec::new()).collect();
        {
            let mut hot_iter = hot.into_iter();
            let mut remaining = hot_iter.len() as u64;
            for (pass, &cap) in free.iter().enumerate() {
                let passes_left = (window.len() - pass) as u64;
                let fair = remaining.div_ceil(passes_left);
                let take = fair.min(cap).min(remaining);
                pieces[pass].extend(hot_iter.by_ref().take(take as usize));
                remaining -= take;
            }
            // Clamping can leave a residue; sweep it into any free space.
            let mut residue: Vec<(BlockId, Vec<u8>)> = hot_iter.collect();
            for (pass, &cap) in free.iter().enumerate() {
                if residue.is_empty() {
                    break;
                }
                let room = cap as usize - pieces[pass].len();
                let take = room.min(residue.len());
                pieces[pass].extend(residue.drain(..take));
            }
            if !residue.is_empty() {
                return Err(OramError::internal("capacity accounting failed"));
            }
        }

        let wire_len = BlockContent::encoded_len(self.payload_len);
        let slots_per_pass = self.partition_slots as usize;
        let workers = self.workers.clone();
        let mut spilled_total = 0u64;
        for (pass, &partition) in window.iter().enumerate() {
            let base = partition * self.partition_slots;

            // Read stream: one streaming op. Zero-copy mode takes the
            // ciphertexts out of the store (every slot is rewritten below);
            // legacy mode clones them like the original implementation.
            let mut taken = if self.zero_copy {
                self.device.take_run(base, self.partition_slots)?
            } else {
                self.device.read_run(base, self.partition_slots)?
            };

            // Control sweep: release every slot's ownership up front so
            // the crypto half below is pure over its inputs (the order of
            // releases within one pass is immaterial — re-ownership only
            // happens in the seal sweep).
            let owners = self.posmap.take_pass_owners(base, self.partition_slots)?;
            let live = owners.iter().flatten().count() as u64;
            self.partition_live[partition as usize] -= live;
            debug_assert_eq!(self.partition_live[partition as usize], 0);

            // Open: keep only live blocks (cold data) as decrypted wire
            // bodies; discarded ciphertext buffers refill the pool. With
            // a worker pool the per-slot crypto runs data-parallel over
            // deterministic chunks; results land in slot order either way.
            let mut opened: Vec<OpenedSlot> = Vec::with_capacity(slots_per_pass);
            {
                let ctx = PassCrypto {
                    read_sealer: &read_sealer,
                    write_sealer: &self.sealer,
                    zero_copy: self.zero_copy,
                    payload_len: self.payload_len,
                    wire_len,
                    device: self.device.name(),
                };
                match &workers {
                    None => {
                        for (offset, (sealed, owner)) in
                            taken.drain(..).zip(owners.iter()).enumerate()
                        {
                            let addr = base + offset as u64;
                            opened.push(open_pass_slot(
                                &ctx,
                                &mut self.pool,
                                addr,
                                *owner,
                                sealed,
                            )?);
                        }
                    }
                    Some(pool_handle) => {
                        let mut results: Vec<Option<Result<OpenedSlot, OramError>>> =
                            (0..slots_per_pass).map(|_| None).collect();
                        let owners = owners.as_slice();
                        dispatch_chunks(
                            pool_handle,
                            &mut self.worker_pools,
                            &mut self.pool,
                            &mut taken,
                            &mut results,
                            |wpool, offset, sealed, out| {
                                *out = Some(open_pass_slot(
                                    &ctx,
                                    wpool,
                                    base + offset as u64,
                                    owners[offset],
                                    sealed.take(),
                                ));
                            },
                        );
                        // Errors surface in slot order — the same slot the
                        // serial path would fail on first.
                        for result in results {
                            let result = result.ok_or_else(|| {
                                OramError::internal("worker left a shuffle slot unprocessed")
                            })?;
                            opened.push(result?);
                        }
                    }
                }
            }
            let mut union: Vec<PassEntry> = opened
                .into_iter()
                .flatten()
                .map(|(id, body)| PassEntry::Wire(id, body))
                .collect();

            // Concatenate the hot piece (sized to fit by construction);
            // payload bytes are encoded onto recycled buffers at seal
            // time. Blocks beyond the fair equal split indicate
            // capacity-driven redistribution and are reported as `spilled`.
            let piece = std::mem::take(&mut pieces[pass]);
            spilled_total += (piece.len() as u64).saturating_sub(fair_share);
            union.extend(
                piece
                    .into_iter()
                    .map(|(id, payload)| PassEntry::Hot(id, payload)),
            );
            debug_assert!(
                union.len() <= slots_per_pass,
                "piece sizing exceeded partition capacity"
            );

            // Fresh intra-partition permutation (in-enclave; the paper's
            // CacheShuffle — cost negligible next to the streaming I/O).
            // `image[offset]` holds the entry destined for slot
            // `base + offset`; unfilled slots become dummies below.
            let perm = Permutation::random(
                slots_per_pass,
                piece_prf.eval_words("partition-perm", &[partition, self.epoch]),
            );
            let mut image: Vec<Option<PassEntry>> = perm.scatter(union);

            // Control sweep: re-home ownership and reset the read-once
            // budget before the crypto half (slots in partitions outside
            // a partial window keep their markers until their own
            // rebuild). Full windows only record the image here — the
            // bulk rebuild after the loop installs it.
            for (offset, entry) in image.iter().enumerate() {
                let addr = base + offset as u64;
                if let Some(entry) = entry {
                    if full {
                        full_image[addr as usize] = Some(entry.id());
                        self.partition_live[partition as usize] += 1;
                    } else {
                        self.place_tracked(entry.id(), addr)?;
                    }
                }
                self.touched[addr as usize] = false;
            }

            // Seal + write stream: re-home every slot under the fresh
            // epoch — real blocks re-seal their decrypted body in place,
            // dummies and hot blocks encode onto pooled buffers — and
            // stream the run out. Seal sequence numbers are assigned in
            // slot order *before* dispatch, so the ciphertext of every
            // slot is byte-identical at any worker count.
            let seq_base = self.seal_seq;
            self.seal_seq += slots_per_pass as u64;
            let ctx = PassCrypto {
                read_sealer: &read_sealer,
                write_sealer: &self.sealer,
                zero_copy: self.zero_copy,
                payload_len: self.payload_len,
                wire_len,
                device: self.device.name(),
            };
            let sealed_run: Vec<SealedBlock> = match &workers {
                None => image
                    .iter_mut()
                    .enumerate()
                    .map(|(offset, entry)| {
                        seal_pass_slot(
                            &ctx,
                            &mut self.pool,
                            base + offset as u64,
                            seq_base + offset as u64,
                            entry.take(),
                        )
                    })
                    .collect(),
                Some(pool_handle) => {
                    // Pre-stock each chunk's pool with exactly the buffers
                    // its dummy/hot slots will take, so the chunked stream
                    // allocates no more than the serial one (chunk
                    // boundaries match `dispatch_chunks` by construction).
                    let chunk = chunk_len(slots_per_pass, pool_handle.threads());
                    for (chunk_index, image_chunk) in image.chunks(chunk).enumerate() {
                        let need = image_chunk
                            .iter()
                            .filter(|entry| !matches!(entry, Some(PassEntry::Wire(..))))
                            .count();
                        self.pool
                            .transfer_to(&mut self.worker_pools[chunk_index], need);
                    }
                    let mut outputs: Vec<Option<SealedBlock>> =
                        (0..slots_per_pass).map(|_| None).collect();
                    dispatch_chunks(
                        pool_handle,
                        &mut self.worker_pools,
                        &mut self.pool,
                        &mut image,
                        &mut outputs,
                        |wpool, offset, entry, out| {
                            *out = Some(seal_pass_slot(
                                &ctx,
                                wpool,
                                base + offset as u64,
                                seq_base + offset as u64,
                                entry.take(),
                            ));
                        },
                    );
                    outputs
                        .into_iter()
                        .map(|sealed| {
                            sealed.ok_or_else(|| {
                                OramError::internal("worker left a shuffle slot unsealed")
                            })
                        })
                        .collect::<Result<Vec<_>, OramError>>()?
                }
            };
            self.device.write_run(base, sealed_run)?;
        }
        let deferred_image = if full && defer_posmap {
            Some(full_image)
        } else {
            if full {
                self.posmap.rebuild_all(&full_image)?;
            }
            None
        };
        // New period: fresh PRP key for the lazy dummy order (touched
        // slots are skipped at consumption time).
        self.period_counter += 1;
        self.reset_dummy_order(seed)?;

        let delta = self.storage_delta(&before);
        Ok((
            ShuffleReport {
                wall_time: delta.busy_read.max(delta.busy_write),
                read_time: delta.busy_read,
                write_time: delta.busy_write,
                partitions: window.len() as u64,
                spilled: spilled_total,
            },
            deferred_image,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::keys::MasterKey;
    use oram_storage::calibration::MachineConfig;
    use oram_storage::clock::SimClock;
    use oram_storage::trace::AccessTrace;
    use std::collections::HashSet;

    fn build_threaded(
        capacity: u64,
        trace: Option<AccessTrace>,
        zero_copy: bool,
        worker_threads: usize,
    ) -> StorageLayer {
        let mut config = HOramConfig::new(capacity, 8, 64).with_worker_threads(worker_threads);
        config.zero_copy_io = zero_copy;
        let device = MachineConfig::dac2019().build_storage(SimClock::new(), trace);
        let master = MasterKey::from_bytes([8; 32]);
        let keys = KeyHierarchy::new(master.clone(), "storage-layer-test");
        let posmap = crate::posmap::build_posmap(&config, &master, false).unwrap();
        StorageLayer::new(&config, device, keys, posmap).unwrap()
    }

    // The baseline fixtures pin `worker_threads = 1` (the serial path) so
    // assertions about the shared pool's counters stay machine-independent;
    // the `parallel_*` tests below compare the threaded path against them.
    fn build_with(capacity: u64, trace: Option<AccessTrace>, zero_copy: bool) -> StorageLayer {
        build_threaded(capacity, trace, zero_copy, 1)
    }

    fn build(capacity: u64) -> StorageLayer {
        build_with(capacity, None, true)
    }

    fn build_traced(capacity: u64) -> (StorageLayer, AccessTrace) {
        let trace = AccessTrace::new();
        let layer = build_with(capacity, Some(trace.clone()), true);
        trace.clear();
        (layer, trace)
    }

    #[test]
    fn initial_layout_places_every_block() {
        let mut layer = build(100);
        for id in 0..100 {
            assert!(
                matches!(
                    layer.posmap_mut().location(BlockId(id)).unwrap(),
                    Location::Storage { .. }
                ),
                "block {id} missing"
            );
        }
        assert_eq!(layer.posmap().in_memory_count(), 0);
    }

    #[test]
    fn initial_slots_are_distinct() {
        let mut layer = build(64);
        let slots: HashSet<u64> = (0..64)
            .map(
                |id| match layer.posmap_mut().location(BlockId(id)).unwrap() {
                    Location::Storage { slot } => slot,
                    Location::Memory => panic!("unexpected memory residence"),
                },
            )
            .collect();
        assert_eq!(slots.len(), 64);
    }

    #[test]
    fn fetch_returns_payload_and_migrates() {
        let mut layer = build(64);
        let load = layer.fetch(BlockId(5)).unwrap();
        let (id, payload) = load.block.unwrap();
        assert_eq!(id, BlockId(5));
        assert_eq!(payload, vec![0u8; 8]);
        assert!(load.duration > SimDuration::ZERO);
        assert!(layer.is_in_memory(BlockId(5)));
    }

    #[test]
    fn double_fetch_is_a_typed_invariant_error() {
        let mut layer = build(64);
        layer.fetch(BlockId(5)).unwrap();
        let err = layer.fetch(BlockId(5)).unwrap_err();
        let OramError::Internal { context } = err else {
            panic!("expected Internal, got {err:?}");
        };
        assert!(context.contains("scheduler hit classification broken"));
    }

    #[test]
    fn dummy_loads_never_repeat_slots() {
        let mut layer = build(49);
        let trace_start = layer.device().stats().reads;
        let mut produced = 0;
        for _ in 0..30 {
            if layer.dummy_load().unwrap().block.is_some() {
                produced += 1;
            }
        }
        assert_eq!(layer.device().stats().reads - trace_start, 30);
        assert!(
            produced > 0,
            "dummy loads should prefetch live blocks sometimes"
        );
    }

    #[test]
    fn lazy_dummy_order_is_deterministic_and_covers_every_slot() {
        let (mut a, trace_a) = build_traced(49);
        let (mut b, trace_b) = build_traced(49);
        let total = a.total_slots();
        for _ in 0..total {
            a.dummy_load().unwrap();
            b.dummy_load().unwrap();
        }
        let order_a = trace_a.address_sequence(a.device().id());
        assert_eq!(
            order_a,
            trace_b.address_sequence(b.device().id()),
            "order must be replayable"
        );
        let distinct: HashSet<u64> = order_a.iter().copied().collect();
        assert_eq!(
            distinct.len() as u64,
            total,
            "each slot consumed exactly once"
        );
        // Exhausted period: further dummies are zero-cost no-ops.
        let exhausted = a.dummy_load().unwrap();
        assert_eq!(
            exhausted,
            IoLoad {
                block: None,
                duration: SimDuration::ZERO
            }
        );
        assert_eq!(trace_a.len() as u64, total);
        // A new period re-keys the order.
        a.rebuild_full(Vec::new(), 3).unwrap();
        trace_a.clear();
        for _ in 0..8 {
            a.dummy_load().unwrap();
        }
        assert_ne!(
            trace_a.address_sequence(a.device().id()),
            order_a[..8].to_vec()
        );
    }

    #[test]
    fn load_batch_matches_sequential_path_exactly() {
        use LoadPlan::{Dummy, Miss};
        let plan: Vec<LoadPlan> = vec![
            Miss(BlockId(3)),
            Dummy,
            Dummy,
            Miss(BlockId(17)),
            Dummy,
            Miss(BlockId(60)),
            Dummy,
            Dummy,
        ];
        let (mut sequential, seq_trace) = build_traced(64);
        let mut seq_loads = Vec::new();
        let seq_before = *sequential.device().stats();
        for &step in &plan {
            seq_loads.push(match step {
                Miss(id) => sequential.fetch(id).unwrap(),
                Dummy => sequential.dummy_load().unwrap(),
            });
        }
        let seq_stats = sequential.device().stats().delta_since(&seq_before);

        let (mut batched, bat_trace) = build_traced(64);
        let bat_before = *batched.device().stats();
        let batch = batched.load_batch(&plan).unwrap();
        let bat_stats = batched.device().stats().delta_since(&bat_before);

        // Byte-identical results (timing aside) ...
        let blocks = |loads: &[IoLoad]| loads.iter().map(|l| l.block.clone()).collect::<Vec<_>>();
        assert_eq!(blocks(&seq_loads), blocks(&batch.loads));
        // ... identical adversary view (same slots, same order, same op
        // shape — oblivious-trace equality) ...
        let strip = |t: &AccessTrace| {
            t.snapshot()
                .into_iter()
                .map(|e| (e.device, e.kind, e.addr, e.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&seq_trace), strip(&bat_trace));
        // ... identical op/byte accounting, strictly cheaper in simulated
        // time (queued scheduling is the whole point).
        assert_eq!(seq_stats.reads, bat_stats.reads);
        assert_eq!(seq_stats.bytes_read, bat_stats.bytes_read);
        assert!(
            bat_stats.busy < seq_stats.busy,
            "batched {:?} !< {:?}",
            bat_stats.busy,
            seq_stats.busy
        );
        assert_eq!(batch.io_time, bat_stats.busy);
    }

    #[test]
    fn batched_loads_honor_once_per_period() {
        use LoadPlan::{Dummy, Miss};
        let (mut layer, trace) = build_traced(64);
        layer
            .load_batch(&[Miss(BlockId(1)), Dummy, Dummy, Miss(BlockId(9)), Dummy])
            .unwrap();
        layer
            .load_batch(&[Dummy, Dummy, Miss(BlockId(30)), Dummy])
            .unwrap();
        let addrs = trace.address_sequence(layer.device().id());
        let distinct: HashSet<u64> = addrs.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            addrs.len(),
            "a slot was read twice within the period"
        );
        // After the shuffle the budget resets: the same blocks load again.
        layer
            .rebuild_full(
                vec![
                    (BlockId(1), vec![0u8; 8]),
                    (BlockId(9), vec![0u8; 8]),
                    (BlockId(30), vec![0u8; 8]),
                ],
                5,
            )
            .unwrap();
        layer.load_batch(&[Miss(BlockId(1)), Dummy]).unwrap();
    }

    #[test]
    fn batched_dummy_exhaustion_is_a_zero_cost_no_op() {
        let mut layer = build(16);
        let total = layer.total_slots() as usize;
        let plan: Vec<LoadPlan> = std::iter::repeat_n(LoadPlan::Dummy, total + 5).collect();
        let before_reads = layer.device().stats().reads;
        let batch = layer.load_batch(&plan).unwrap();
        assert_eq!(batch.loads.len(), total + 5);
        assert_eq!(layer.device().stats().reads - before_reads, total as u64);
        for load in &batch.loads[total..] {
            assert_eq!(
                *load,
                IoLoad {
                    block: None,
                    duration: SimDuration::ZERO
                }
            );
        }
    }

    #[test]
    fn plan_commit_interface_matches_load_batch() {
        let (mut split, split_trace) = build_traced(64);
        split.plan_io(LoadPlan::Miss(BlockId(2))).unwrap();
        split.plan_io(LoadPlan::Dummy).unwrap();
        assert_eq!(split.pending_io(), 2);
        let split_batch = split.commit_io().unwrap();
        assert_eq!(split.pending_io(), 0);

        let (mut whole, whole_trace) = build_traced(64);
        let whole_batch = whole
            .load_batch(&[LoadPlan::Miss(BlockId(2)), LoadPlan::Dummy])
            .unwrap();
        assert_eq!(split_batch, whole_batch);
        assert_eq!(
            split_trace.address_sequence(split.device().id()),
            whole_trace.address_sequence(whole.device().id())
        );
    }

    #[test]
    fn legacy_crypto_mode_is_observably_identical() {
        // zero_copy off must produce the same data, trace, and simulated
        // timing — it ablates host-side copies only.
        let trace_zc = AccessTrace::new();
        let mut zc = build_with(64, Some(trace_zc.clone()), true);
        let trace_legacy = AccessTrace::new();
        let mut legacy = build_with(64, Some(trace_legacy.clone()), false);
        let plan = [
            LoadPlan::Miss(BlockId(7)),
            LoadPlan::Dummy,
            LoadPlan::Miss(BlockId(3)),
            LoadPlan::Dummy,
        ];
        let batch_zc = zc.load_batch(&plan).unwrap();
        let batch_legacy = legacy.load_batch(&plan).unwrap();
        assert_eq!(batch_zc, batch_legacy);
        let hot = vec![(BlockId(7), vec![1u8; 8]), (BlockId(3), vec![0u8; 8])];
        zc.rebuild_full(hot.clone(), 9).unwrap();
        legacy.rebuild_full(hot, 9).unwrap();
        assert_eq!(
            trace_zc.address_sequence(zc.device().id()),
            trace_legacy.address_sequence(legacy.device().id())
        );
        assert_eq!(zc.device().stats(), legacy.device().stats());
        assert_eq!(
            zc.fetch(BlockId(7)).unwrap().block,
            legacy.fetch(BlockId(7)).unwrap().block
        );
    }

    #[test]
    fn partition_live_counts_stay_consistent() {
        let mut layer = build(256);
        layer.fetch(BlockId(3)).unwrap();
        layer.fetch(BlockId(77)).unwrap();
        for _ in 0..12 {
            layer.dummy_load().unwrap();
        }
        layer
            .rebuild_partial(vec![(BlockId(3), vec![0u8; 8])], 4, 6)
            .unwrap();
        // Cross-check the incremental counts against the location table:
        // a slot is live iff some block's current location maps to it.
        let mut scanned = vec![0u64; layer.partition_count() as usize];
        for id in 0..256 {
            if let Location::Storage { slot } = layer.posmap_mut().location(BlockId(id)).unwrap() {
                scanned[(slot / layer.partition_slots) as usize] += 1;
            }
        }
        for partition in 0..layer.partition_count() {
            assert_eq!(
                layer.partition_live[partition as usize], scanned[partition as usize],
                "partition {partition} live count drifted"
            );
            assert_eq!(
                layer.partition_free_slots(partition),
                layer.partition_slots - scanned[partition as usize]
            );
        }
    }

    #[test]
    fn steady_state_shuffle_recycles_buffers() {
        let mut layer = build(256);
        // One warm-up period with real traffic (misses + dummies + a hot
        // set folding back in) fills the pool to its working set...
        let period = |layer: &mut StorageLayer, seed: u64| {
            let mut hot = Vec::new();
            for id in [seed % 256, (seed + 100) % 256] {
                if !layer.is_in_memory(BlockId(id)) {
                    hot.push(layer.fetch(BlockId(id)).unwrap().block.unwrap());
                }
            }
            for _ in 0..6 {
                if let Some(block) = layer.dummy_load().unwrap().block {
                    hot.push(block);
                }
            }
            layer.rebuild_full(hot, seed).unwrap();
        };
        period(&mut layer, 1);
        let (_, allocated_before) = layer.pool.counters();
        // ...after which whole periods — hot blocks included — must run
        // allocation-free off recycled buffers.
        period(&mut layer, 2);
        period(&mut layer, 3);
        let (reused, allocated_after) = layer.pool.counters();
        assert_eq!(
            allocated_after, allocated_before,
            "steady-state shuffle must not allocate"
        );
        assert!(reused > 0, "pool must actually be exercised");
    }

    /// Drives one instance through misses, dummies and a rebuild; returns
    /// the storage trace and a probe fetch for cross-config comparison.
    fn shuffle_fingerprint(layer: &mut StorageLayer, trace: &AccessTrace) -> (Vec<u64>, Vec<u8>) {
        let mut hot = Vec::new();
        for id in [3u64, 77, 150] {
            hot.push(layer.fetch(BlockId(id)).unwrap().block.unwrap());
        }
        for _ in 0..10 {
            if let Some(block) = layer.dummy_load().unwrap().block {
                hot.push(block);
            }
        }
        hot[0].1 = vec![9u8; 8];
        layer.rebuild_full(hot, 21).unwrap();
        let probe = layer.fetch(BlockId(3)).unwrap().block.unwrap().1;
        (trace.address_sequence(layer.device().id()), probe)
    }

    #[test]
    fn parallel_rebuild_is_byte_identical_to_serial() {
        // The data-parallel seal/open stream must leave no observable
        // difference: same storage trace, same device bytes, same data.
        let (mut serial, serial_trace) = build_traced(256);
        let serial_fp = shuffle_fingerprint(&mut serial, &serial_trace);
        for threads in [2usize, 4] {
            let trace = AccessTrace::new();
            let mut layer = build_threaded(256, Some(trace.clone()), true, threads);
            trace.clear();
            let fp = shuffle_fingerprint(&mut layer, &trace);
            assert_eq!(serial_fp, fp, "threads={threads} diverged");
            assert_eq!(
                serial.device().stats(),
                layer.device().stats(),
                "threads={threads} device accounting diverged"
            );
        }
    }

    #[test]
    fn parallel_rebuild_legacy_mode_matches_too() {
        let trace_a = AccessTrace::new();
        let mut serial = build_threaded(256, Some(trace_a.clone()), false, 1);
        trace_a.clear();
        let fp_a = shuffle_fingerprint(&mut serial, &trace_a);
        let trace_b = AccessTrace::new();
        let mut threaded = build_threaded(256, Some(trace_b.clone()), false, 4);
        trace_b.clear();
        let fp_b = shuffle_fingerprint(&mut threaded, &trace_b);
        assert_eq!(fp_a, fp_b);
    }

    #[test]
    fn parallel_steady_state_shuffle_recycles_buffers() {
        // The per-worker pools (pre-stocked per chunk, drained back each
        // phase) must preserve the zero-allocation steady state: after a
        // warm-up period, whole periods allocate nothing across the shared
        // pool and every worker pool combined.
        let mut layer = build_threaded(256, None, true, 4);
        let period = |layer: &mut StorageLayer, seed: u64| {
            let mut hot = Vec::new();
            for id in [seed % 256, (seed + 100) % 256] {
                if !layer.is_in_memory(BlockId(id)) {
                    hot.push(layer.fetch(BlockId(id)).unwrap().block.unwrap());
                }
            }
            for _ in 0..6 {
                if let Some(block) = layer.dummy_load().unwrap().block {
                    hot.push(block);
                }
            }
            layer.rebuild_full(hot, seed).unwrap();
        };
        let total_counters = |layer: &StorageLayer| {
            let (mut reused, mut allocated) = layer.pool.counters();
            for pool in &layer.worker_pools {
                let (r, a) = pool.counters();
                reused += r;
                allocated += a;
            }
            (reused, allocated)
        };
        period(&mut layer, 1);
        let (_, allocated_before) = total_counters(&layer);
        period(&mut layer, 2);
        period(&mut layer, 3);
        let (reused, allocated_after) = total_counters(&layer);
        assert_eq!(
            allocated_after, allocated_before,
            "steady-state parallel shuffle must not allocate"
        );
        assert!(reused > 0, "worker pools must actually be exercised");
    }

    #[test]
    fn rebuild_full_brings_everything_home() {
        let mut layer = build(64);
        let mut hot = Vec::new();
        for id in [1u64, 7, 30, 63] {
            hot.push(layer.fetch(BlockId(id)).unwrap().block.unwrap());
        }
        // Overwrite one payload as the memory layer would.
        hot[0].1 = vec![9u8; 8];
        let report = layer.rebuild_full(hot, 33).unwrap();
        assert_eq!(report.partitions, layer.partition_count);
        assert_eq!(layer.posmap().in_memory_count(), 0);
        // Refetch the updated block and verify the new payload survived.
        let load = layer.fetch(BlockId(1)).unwrap();
        assert_eq!(load.block.unwrap().1, vec![9u8; 8]);
    }

    #[test]
    fn rebuild_repermutes_slots() {
        let mut layer = build(256);
        let before: Vec<u64> = (0..256)
            .map(
                |id| match layer.posmap_mut().location(BlockId(id)).unwrap() {
                    Location::Storage { slot } => slot,
                    Location::Memory => unreachable!(),
                },
            )
            .collect();
        layer.rebuild_full(Vec::new(), 77).unwrap();
        let after: Vec<u64> = (0..256)
            .map(
                |id| match layer.posmap_mut().location(BlockId(id)).unwrap() {
                    Location::Storage { slot } => slot,
                    Location::Memory => unreachable!(),
                },
            )
            .collect();
        let moved = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert!(moved > 200, "only {moved}/256 blocks moved");
    }

    #[test]
    fn rebuild_rotates_epoch_and_resets_touched() {
        let mut layer = build(64);
        let epoch = layer.epoch();
        layer.fetch(BlockId(3)).unwrap();
        let hot = vec![(BlockId(3), vec![0u8; 8])];
        layer.rebuild_full(hot, 1).unwrap();
        assert_eq!(layer.epoch(), epoch + 1);
        // The block is fetchable again (its new slot is untouched).
        layer.fetch(BlockId(3)).unwrap();
    }

    #[test]
    fn shuffle_wall_time_is_pipelined_max() {
        let mut layer = build(1024);
        let report = layer.rebuild_full(Vec::new(), 5).unwrap();
        assert_eq!(report.wall_time, report.read_time.max(report.write_time));
        assert!(report.wall_time < report.read_time + report.write_time);
    }

    #[test]
    fn partial_rebuild_covers_a_window_and_rotates() {
        let mut layer = build(256); // 16 partitions
        let r1 = layer.rebuild_partial(Vec::new(), 4, 9).unwrap();
        assert_eq!(r1.partitions, 4);
        let r2 = layer.rebuild_partial(Vec::new(), 4, 10).unwrap();
        assert_eq!(r2.partitions, 4);
        // After 4 windows the rotation wraps.
        layer.rebuild_partial(Vec::new(), 4, 11).unwrap();
        layer.rebuild_partial(Vec::new(), 4, 12).unwrap();
        let wrapped = layer.rebuild_partial(Vec::new(), 4, 13).unwrap();
        assert_eq!(wrapped.partitions, 4);
    }

    #[test]
    fn partial_rebuild_keeps_unshuffled_blocks_fetchable_once() {
        let mut layer = build(256);
        // Fetch a block, then partially shuffle a window. The fetched
        // block's home partition may not be rewritten; it must remain
        // marked in-memory either way.
        layer.fetch(BlockId(100)).unwrap();
        let hot = vec![(BlockId(100), vec![0u8; 8])];
        layer.rebuild_partial(hot, 2, 3).unwrap();
        // Block 100 went into the window, so it is on storage again.
        assert!(!layer.is_in_memory(BlockId(100)));
        layer.fetch(BlockId(100)).unwrap();
    }

    #[test]
    fn storage_footprint_has_headroom_only() {
        let layer = build(1 << 12);
        let slots = layer.total_slots();
        let ratio = slots as f64 / (1u64 << 12) as f64;
        assert!(ratio < 1.35, "storage blowup {ratio}");
        assert!(ratio >= 1.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Batching equivalence over arbitrary miss/dummy interleavings:
            /// identical blocks, identical device trace, identical op and
            /// byte counts, never more simulated time than sequential.
            #[test]
            fn load_batch_equals_sequential(
                miss_ids in proptest::collection::vec(0u64..64, 0..12),
                gaps in proptest::collection::vec(0usize..4, 0..13),
            ) {
                let mut intended: Vec<LoadPlan> = vec![LoadPlan::Dummy];
                let mut seen = HashSet::new();
                let mut gaps = gaps.into_iter();
                for id in miss_ids {
                    if !seen.insert(id) {
                        continue; // each block can only miss once per period
                    }
                    for _ in 0..gaps.next().unwrap_or(0) {
                        intended.push(LoadPlan::Dummy);
                    }
                    intended.push(LoadPlan::Miss(BlockId(id)));
                }
                intended.extend(gaps.flat_map(|n| std::iter::repeat_n(LoadPlan::Dummy, n)));

                // Run the sequential reference, downgrading misses whose
                // block an earlier dummy already prefetched (the scheduler
                // never issues I/O for in-memory blocks); the surviving
                // plan is what the batch replays.
                let (mut sequential, seq_trace) = build_traced(64);
                let mut plan: Vec<LoadPlan> = Vec::with_capacity(intended.len());
                let mut seq_blocks = Vec::new();
                for step in intended {
                    let step = match step {
                        LoadPlan::Miss(id) if sequential.is_in_memory(id) => LoadPlan::Dummy,
                        other => other,
                    };
                    plan.push(step);
                    let load = match step {
                        LoadPlan::Miss(id) => sequential.fetch(id).unwrap(),
                        LoadPlan::Dummy => sequential.dummy_load().unwrap(),
                    };
                    seq_blocks.push(load.block);
                }
                let (mut batched, bat_trace) = build_traced(64);
                let batch = batched.load_batch(&plan).unwrap();

                let bat_blocks: Vec<_> = batch.loads.iter().map(|l| l.block.clone()).collect();
                prop_assert_eq!(seq_blocks, bat_blocks);
                prop_assert_eq!(
                    seq_trace.address_sequence(sequential.device().id()),
                    bat_trace.address_sequence(batched.device().id())
                );
                let seq_stats = sequential.device().stats();
                let bat_stats = batched.device().stats();
                prop_assert_eq!(seq_stats.reads, bat_stats.reads);
                prop_assert_eq!(seq_stats.bytes_read, bat_stats.bytes_read);
                prop_assert!(bat_stats.busy <= seq_stats.busy);
            }
        }
    }
}

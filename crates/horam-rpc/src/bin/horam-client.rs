//! `horam-client` — operator CLI for a running `horam-serverd`.
//!
//! ```text
//! horam-client --connect tcp://127.0.0.1:7171 read 42
//! horam-client --connect tcp://127.0.0.1:7171 write 42 68656c6c6f
//! horam-client --connect tcp://127.0.0.1:7171 ping
//! horam-client --connect tcp://127.0.0.1:7171 stats
//! horam-client --connect tcp://127.0.0.1:7171 drain
//! ```
//!
//! Payloads are hex; `read`/`write` print the (previous) payload as
//! hex. Exit code 0 on success, 1 on any typed failure.

use horam_rpc::{ClientConfig, Endpoint, RpcClient};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "horam-client — H-ORAM RPC client CLI

  horam-client [flags] <command>

commands:
  read <block>            read a block, print payload hex
  write <block> <hex>     write a block, print previous payload hex
  ping                    round-trip probe, print latency
  stats                   print server counters
  drain                   ask the server to drain and checkpoint

flags:
  --connect <endpoint>    tcp://host:port or unix://path (required)
  --tenant <n>            tenant id (default 0)
  --client-id <n>         retry-stable client identity (default pid)
  --token <n>             Hello token
  --deadline-ms <n>       total per-call budget (default 10000)
  --server-deadline-ms <n>  advertised per-request deadline";

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("bad value {raw:?}: {e}"))
}

fn hex_decode(raw: &str) -> Result<Vec<u8>, String> {
    if !raw.len().is_multiple_of(2) {
        return Err("hex payload must have even length".into());
    }
    (0..raw.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&raw[i..i + 2], 16).map_err(|e| format!("bad hex at {i}: {e}")))
        .collect()
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn run() -> Result<(), String> {
    let mut endpoint = None;
    let mut tenant = 0u32;
    let mut client_id = std::process::id() as u64;
    let mut token = 0u64;
    let mut deadline_ms = 10_000u64;
    let mut server_deadline_ms: Option<u64> = None;
    let mut command: Vec<String> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--connect" => {
                endpoint = Some(Endpoint::parse(&value("--connect")?).map_err(|e| e.to_string())?)
            }
            "--tenant" => tenant = parse(&value("--tenant")?)?,
            "--client-id" => client_id = parse(&value("--client-id")?)?,
            "--token" => token = parse(&value("--token")?)?,
            "--deadline-ms" => deadline_ms = parse(&value("--deadline-ms")?)?,
            "--server-deadline-ms" => {
                server_deadline_ms = Some(parse(&value("--server-deadline-ms")?)?)
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => command.push(other.to_string()),
        }
    }
    let endpoint = endpoint.ok_or("missing --connect (see --help)")?;

    let mut config = ClientConfig::new(endpoint, client_id, tenant);
    config.token = token;
    config.call_deadline = Duration::from_millis(deadline_ms);
    config.server_deadline = server_deadline_ms.map(Duration::from_millis);
    let mut client = RpcClient::new(config);

    match command.first().map(String::as_str) {
        Some("read") => {
            let block: u64 = parse(command.get(1).ok_or("read needs a block id")?)?;
            let payload = client.read(block).map_err(|e| e.to_string())?;
            println!("{}", hex_encode(&payload));
        }
        Some("write") => {
            let block: u64 = parse(command.get(1).ok_or("write needs a block id")?)?;
            let payload = hex_decode(command.get(2).ok_or("write needs a hex payload")?)?;
            let previous = client.write(block, payload).map_err(|e| e.to_string())?;
            println!("{}", hex_encode(&previous));
        }
        Some("ping") => {
            let rtt = client.ping().map_err(|e| e.to_string())?;
            println!(
                "pong in {rtt:?} (epoch {})",
                client.epoch().unwrap_or_default()
            );
        }
        Some("stats") => {
            let counters = client.server_stats().map_err(|e| e.to_string())?;
            println!(
                "served {}\nshed_deadline {}\nbusy_rejects {}\nqueue_full_rejects {}\ndedup_hits {}\nshed_draining {}\nconnections {}\ndraining {}",
                counters.served,
                counters.shed_deadline,
                counters.busy_rejects,
                counters.queue_full_rejects,
                counters.dedup_hits,
                counters.shed_draining,
                counters.connections,
                counters.draining,
            );
        }
        Some("drain") => {
            client.drain().map_err(|e| e.to_string())?;
            println!("drain started");
        }
        Some(other) => return Err(format!("unknown command {other} (see --help)")),
        None => return Err(format!("no command given\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("horam-client: {message}");
            ExitCode::FAILURE
        }
    }
}

//! `horam-serverd` — the H-ORAM network server daemon.
//!
//! Serves a sharded H-ORAM engine over TCP or a Unix socket until a
//! graceful drain (SIGTERM, or a client `Drain` frame), then writes the
//! drain checkpoint — sealed engine snapshot plus the idempotency
//! window — to `--checkpoint`. Started again with the same flags, it
//! restores from that file and resumes byte-identically; see
//! `docs/OPERATIONS.md` for the runbook.
//!
//! ```text
//! horam-serverd --listen tcp://127.0.0.1:7171 --checkpoint /var/lib/horam/ckpt \
//!               --capacity 4096 --payload-len 16 --memory-slots 1024 \
//!               --shards 4 --tenants 8
//! ```

use horam_core::config::HOramConfig;
use horam_core::multi_user::UserId;
use horam_core::shard::{ShardedConfig, ShardedOram};
use horam_rpc::server::{bind_signals_to_drain, run_server, Checkpoint, ServerConfig};
use horam_rpc::{Endpoint, Listener};
use horam_server::service::{OramService, ServiceConfig};
use horam_server::FifoPolicy;
use oram_crypto::keys::MasterKey;
use oram_storage::hierarchy::MemoryHierarchy;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

struct Args {
    listen: Endpoint,
    checkpoint: Option<PathBuf>,
    capacity: u64,
    payload_len: usize,
    memory_slots: u64,
    shards: u64,
    tenants: u32,
    batch_size: usize,
    pipeline_depth: Option<u64>,
    max_connections: usize,
    max_inflight: usize,
    dedup_window: usize,
    token: Option<u64>,
    seed: u64,
    key: u8,
    ready_fd_line: bool,
}

impl Args {
    fn parse() -> Result<Self, String> {
        let mut args = Args {
            listen: Endpoint::Tcp("127.0.0.1:7171".into()),
            checkpoint: None,
            capacity: 4096,
            payload_len: 16,
            memory_slots: 1024,
            shards: 4,
            tenants: 8,
            batch_size: 128,
            pipeline_depth: None,
            max_connections: 16,
            max_inflight: 256,
            dedup_window: 1024,
            token: None,
            seed: 7,
            key: 0xB2,
            ready_fd_line: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match flag.as_str() {
                "--listen" => {
                    args.listen = Endpoint::parse(&value("--listen")?).map_err(|e| e.to_string())?
                }
                "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
                "--capacity" => args.capacity = parse(&value("--capacity")?)?,
                "--payload-len" => args.payload_len = parse(&value("--payload-len")?)?,
                "--memory-slots" => args.memory_slots = parse(&value("--memory-slots")?)?,
                "--shards" => args.shards = parse(&value("--shards")?)?,
                "--tenants" => args.tenants = parse(&value("--tenants")?)?,
                "--batch-size" => args.batch_size = parse(&value("--batch-size")?)?,
                "--pipeline-depth" => {
                    args.pipeline_depth = Some(parse(&value("--pipeline-depth")?)?)
                }
                "--max-connections" => args.max_connections = parse(&value("--max-connections")?)?,
                "--max-inflight" => args.max_inflight = parse(&value("--max-inflight")?)?,
                "--dedup-window" => args.dedup_window = parse(&value("--dedup-window")?)?,
                "--token" => args.token = Some(parse(&value("--token")?)?),
                "--seed" => args.seed = parse(&value("--seed")?)?,
                "--key" => args.key = parse(&value("--key")?)?,
                "--ready-line" => args.ready_fd_line = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

const USAGE: &str = "horam-serverd — H-ORAM network server

  --listen <tcp://host:port | unix://path>   (default tcp://127.0.0.1:7171)
  --checkpoint <path>    restore from this file if present; write the
                         drain checkpoint here on SIGTERM
  --capacity/--payload-len/--memory-slots    engine geometry
  --shards N             sharded engine width (default 4)
  --tenants N            tenants 0..N, equal disjoint block ranges
  --batch-size N         admission batch size (default 128)
  --pipeline-depth N     I/O windows the engine keeps in flight per shard
                         (default: the machine hint; 1 = sequential).
                         Responses are byte-identical at any depth
  --max-connections / --max-inflight / --dedup-window
  --token T              require this Hello token
  --seed S / --key K     engine seed and master-key byte
  --ready-line           print `READY <endpoint> <epoch>` once serving";

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("bad value {raw:?}: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("horam-serverd: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse()?;

    let mut service_config = ServiceConfig {
        batch_size: args.batch_size,
        ..ServiceConfig::default()
    };
    if let Some(depth) = args.pipeline_depth {
        service_config.pipeline = horam_core::PipelineConfig::with_depth(depth);
    }
    let base = service_config
        .engine_config(HOramConfig::new(
            args.capacity,
            args.payload_len,
            args.memory_slots,
        ))
        .with_seed(args.seed);
    let sharded = ShardedConfig::new(base, args.shards);
    let master = MasterKey::from_bytes([args.key; 32]);

    // Restore-or-fresh: a checkpoint file from a previous drain carries
    // the sealed engine state and the idempotency window; tenants and
    // grants are configuration, re-registered deterministically below.
    let mut preload_window = Vec::new();
    let mut epoch = 0u64;
    let oram = match args.checkpoint.as_ref().filter(|path| path.exists()) {
        Some(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let checkpoint = Checkpoint::from_bytes(&bytes).map_err(|e| e.to_string())?;
            epoch = checkpoint.epoch + 1;
            preload_window = checkpoint.window;
            eprintln!(
                "horam-serverd: restoring epoch {epoch} from {} ({} window entries)",
                path.display(),
                preload_window.len()
            );
            ShardedOram::restore(master, |_| MemoryHierarchy::dac2019(), &checkpoint.snapshot)
                .map_err(|e| format!("restore: {e}"))?
        }
        None => ShardedOram::new(sharded, master, |_| MemoryHierarchy::dac2019())
            .map_err(|e| format!("init: {e}"))?,
    };

    let mut service = OramService::new(oram, Box::new(FifoPolicy), service_config);
    let per_tenant = args.capacity / u64::from(args.tenants.max(1));
    for tenant in 0..args.tenants {
        let start = u64::from(tenant) * per_tenant;
        service.register_tenant(
            UserId(tenant),
            start..start + per_tenant,
            horam_core::access_control::Permission::ReadWrite,
        );
    }

    let drain = Arc::new(AtomicBool::new(false));
    let server_config = ServerConfig {
        max_connections: args.max_connections,
        max_inflight: args.max_inflight,
        dedup_window: args.dedup_window,
        token: args.token,
        epoch,
        drain: Arc::clone(&drain),
        preload_window,
        ..ServerConfig::default()
    };

    let listener =
        Listener::bind(&args.listen).map_err(|e| format!("bind {}: {e}", args.listen))?;
    let bound = listener.local_endpoint().map_err(|e| e.to_string())?;
    if args.ready_fd_line {
        // Machine-readable readiness for process supervisors and the
        // bench gate's spawner.
        println!("READY {bound} {epoch}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    eprintln!("horam-serverd: serving {bound} (epoch {epoch})");

    bind_signals_to_drain(Arc::clone(&drain));

    let outcome =
        run_server(&mut service, &listener, &server_config).map_err(|e| format!("serve: {e}"))?;

    eprintln!(
        "horam-serverd: drained (served {} shed_deadline {} busy {} queue_full {} dedup_hits {} shed_draining {} connections {})",
        outcome.counters.served,
        outcome.counters.shed_deadline,
        outcome.counters.busy_rejects,
        outcome.counters.queue_full_rejects,
        outcome.counters.dedup_hits,
        outcome.counters.shed_draining,
        outcome.counters.connections,
    );
    if let Some(path) = &args.checkpoint {
        std::fs::write(path, outcome.checkpoint.to_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!("horam-serverd: checkpoint written to {}", path.display());
    }
    if let Endpoint::Unix(path) = &bound {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

//! The retrying client: pipelined calls, idempotent retries, bounded
//! deadlines.
//!
//! Every logical call is keyed by a `req_id` that stays fixed across
//! resends and redials — the server's idempotency window turns a
//! retried-but-already-executed request into a replay of the original
//! outcome, so the client can retry aggressively without ever
//! duplicating a write. The retry ladder, in order:
//!
//! 1. **Resend** — no response within [`ClientConfig::resend_after`]
//!    (the frame may have been lost): send the same `req_id` again on
//!    the same connection.
//! 2. **Redial** — the connection died (reset, truncation, refused):
//!    dial and handshake again, then resend everything unanswered.
//!    Bounded by [`ClientConfig::max_redials`] per call.
//! 3. **Backoff** — the server shed the request with a retryable code
//!    (`BUSY`, `QUEUE_FULL`): wait [`ClientConfig::backoff`] and resend.
//!
//! The whole ladder lives under one [`ClientConfig::call_deadline`];
//! when it expires the call returns a typed
//! [`RpcError::DeadlineExpired`]. **No call ever hangs** — every socket
//! wait uses a bounded read timeout.
//!
//! Calls are **pipelined**: [`RpcClient::call_many`] keeps a whole
//! batch of requests in flight on one connection and matches responses
//! by `req_id`, which is what lets a handful of client processes
//! saturate the server's batched admission path (see the `rpc` bench
//! gate).

use crate::net::{Endpoint, NetStream};
use crate::status;
use crate::wire::{write_frame, Accept, Frame, FramePoll, FrameReader, PollError, ServerCounters};
use oram_storage::fault::{ConnFaultPlan, FaultyConn};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Where the server listens.
    pub endpoint: Endpoint,
    /// Retry-stable client identity; **must** stay fixed across redials
    /// and process restarts of the client for idempotent retries to be
    /// recognized.
    pub client_id: u64,
    /// Tenant to submit as.
    pub tenant: u32,
    /// `Hello` token (must match the server's, if it configured one).
    pub token: u64,
    /// Total budget for one call (or one pipelined batch) across every
    /// resend, redial, and backoff.
    pub call_deadline: Duration,
    /// Relative per-request deadline advertised to the server (`None` =
    /// none); the server sheds the request typed if the budget is spent
    /// before admission.
    pub server_deadline: Option<Duration>,
    /// Resend an unanswered request after this long (rescues dropped
    /// frames; safe because requests are idempotent by `req_id`).
    pub resend_after: Duration,
    /// Pause before retrying a `BUSY`/`QUEUE_FULL` shed or a failed
    /// dial.
    pub backoff: Duration,
    /// Redials allowed within one call before giving up typed.
    pub max_redials: u32,
    /// Socket poll granularity; every read blocks at most this long.
    pub tick: Duration,
    /// When set, every connection is wrapped in a
    /// [`FaultyConn`] drawing from this shared schedule — one seed, one
    /// uninterrupted fault sequence across redials. Test-only in
    /// spirit, but safe anywhere.
    pub fault_plan: Option<Arc<Mutex<ConnFaultPlan>>>,
}

impl ClientConfig {
    /// A config with conventional timeouts for `endpoint`.
    pub fn new(endpoint: Endpoint, client_id: u64, tenant: u32) -> Self {
        Self {
            endpoint,
            client_id,
            tenant,
            token: 0,
            call_deadline: Duration::from_secs(30),
            server_deadline: None,
            resend_after: Duration::from_millis(250),
            backoff: Duration::from_millis(10),
            max_redials: 8,
            tick: Duration::from_millis(1),
            fault_plan: None,
        }
    }
}

/// Why a call failed, after the whole retry ladder.
#[derive(Debug)]
pub enum RpcError {
    /// Transport failure that survived every redial.
    Io(io::Error),
    /// The server answered with a non-OK wire status (see
    /// [`status`]); `shard`/`message` carry the
    /// `Degraded { shard, reason }` detail when applicable.
    Status {
        /// The wire code.
        code: u16,
        /// Degraded shard index (when `code == DEGRADED`).
        shard: u32,
        /// Server-side detail.
        message: String,
    },
    /// The call's total deadline elapsed.
    DeadlineExpired {
        /// How long the call waited.
        waited: Duration,
    },
    /// The handshake was refused (`Busy`/`Draining`/`AuthFailed`) on
    /// the final permitted attempt.
    Rejected {
        /// The server's verdict.
        accept: Accept,
    },
    /// The redial budget ran out.
    RedialsExhausted {
        /// Redials attempted.
        redials: u32,
    },
    /// The server sent something the protocol does not allow here.
    Protocol(&'static str),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "transport: {e}"),
            RpcError::Status {
                code,
                shard,
                message,
            } => {
                write!(f, "{} ({code})", status::name(*code))?;
                if *code == status::DEGRADED {
                    write!(f, " shard {shard}")?;
                }
                if message.is_empty() {
                    Ok(())
                } else {
                    write!(f, ": {message}")
                }
            }
            RpcError::DeadlineExpired { waited } => {
                write!(f, "call deadline expired after {waited:?}")
            }
            RpcError::Rejected { accept } => write!(f, "handshake rejected: {accept:?}"),
            RpcError::RedialsExhausted { redials } => {
                write!(f, "gave up after {redials} redials")
            }
            RpcError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl Error for RpcError {}

impl From<io::Error> for RpcError {
    fn from(e: io::Error) -> Self {
        RpcError::Io(e)
    }
}

/// Client-side retry accounting, for tests and the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections (re)established.
    pub dials: u64,
    /// Requests re-sent after a silent loss or reconnect.
    pub resends: u64,
    /// Backoffs taken on retryable sheds or failed dials.
    pub backoffs: u64,
    /// Retries that the server answered from its idempotency window
    /// are invisible here by design — they look like normal responses.
    pub calls: u64,
}

struct Conn {
    stream: Box<dyn NetStream>,
    reader: FrameReader,
}

/// One in-flight operation of a pipelined batch.
struct OpState {
    block: u64,
    payload: Option<Vec<u8>>,
    sent_at: Option<Instant>,
    outcome: Option<Result<Vec<u8>, RpcError>>,
}

/// A synchronous, retrying connection to one `horam-serverd`.
pub struct RpcClient {
    config: ClientConfig,
    conn: Option<Conn>,
    next_req_id: u64,
    epoch: Option<u64>,
    stats: ClientStats,
}

impl RpcClient {
    /// Creates a client; the connection is established lazily on the
    /// first call (and re-established transparently after failures).
    pub fn new(config: ClientConfig) -> Self {
        Self {
            config,
            conn: None,
            next_req_id: 1,
            epoch: None,
            stats: ClientStats::default(),
        }
    }

    /// The server epoch observed at the last successful handshake. A
    /// change between calls means the server restarted in between.
    pub fn epoch(&self) -> Option<u64> {
        self.epoch
    }

    /// Client-side retry accounting.
    pub fn client_stats(&self) -> ClientStats {
        self.stats
    }

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// See [`RpcError`]; never hangs past
    /// [`ClientConfig::call_deadline`].
    pub fn read(&mut self, block: u64) -> Result<Vec<u8>, RpcError> {
        self.call_many(vec![(block, None)])?
            .pop()
            .unwrap_or(Err(RpcError::Protocol("empty batch result")))
    }

    /// Writes one block, returning the previous payload.
    ///
    /// # Errors
    ///
    /// See [`RpcError`]; retries cannot double-apply the write — the
    /// server's idempotency window replays the original outcome.
    pub fn write(&mut self, block: u64, payload: Vec<u8>) -> Result<Vec<u8>, RpcError> {
        self.call_many(vec![(block, Some(payload))])?
            .pop()
            .unwrap_or(Err(RpcError::Protocol("empty batch result")))
    }

    /// Runs a pipelined batch of `(block, write-payload?)` operations,
    /// returning per-operation outcomes in order. All requests share
    /// one connection and one [`ClientConfig::call_deadline`]; lost
    /// frames, disconnects, and retryable sheds are retried internally
    /// with stable `req_id`s.
    ///
    /// # Errors
    ///
    /// The outer error is a whole-batch transport failure (deadline,
    /// redial budget, handshake rejection); per-operation server
    /// verdicts come back in the inner results.
    pub fn call_many(
        &mut self,
        ops: Vec<(u64, Option<Vec<u8>>)>,
    ) -> Result<Vec<Result<Vec<u8>, RpcError>>, RpcError> {
        let start = Instant::now();
        let mut pending: BTreeMap<u64, OpState> = BTreeMap::new();
        let mut order = Vec::with_capacity(ops.len());
        for (block, payload) in ops {
            let req_id = self.next_req_id;
            self.next_req_id += 1;
            order.push(req_id);
            pending.insert(
                req_id,
                OpState {
                    block,
                    payload,
                    sent_at: None,
                    outcome: None,
                },
            );
            self.stats.calls += 1;
        }
        let mut redials = 0u32;
        let mut open = order
            .iter()
            .filter(|id| pending[id].outcome.is_none())
            .count();

        while open > 0 {
            if start.elapsed() >= self.config.call_deadline {
                return Err(RpcError::DeadlineExpired {
                    waited: start.elapsed(),
                });
            }
            // (Re)establish the connection, consuming redial budget.
            if self.conn.is_none() {
                match self.dial_handshake(start) {
                    Ok(()) => {
                        // A fresh connection invalidates in-flight sends.
                        for state in pending.values_mut() {
                            if state.outcome.is_none() {
                                state.sent_at = None;
                            }
                        }
                    }
                    Err(e) => {
                        redials += 1;
                        if redials > self.config.max_redials {
                            return Err(match e {
                                RpcError::Rejected { .. } | RpcError::Io(_) => e,
                                _ => RpcError::RedialsExhausted { redials },
                            });
                        }
                        self.stats.backoffs += 1;
                        std::thread::sleep(self.config.backoff);
                        continue;
                    }
                }
            }

            // Send every unsent / resend-due request.
            let mut conn_died = false;
            for (&req_id, state) in pending.iter_mut() {
                if state.outcome.is_some() {
                    continue;
                }
                let due = match state.sent_at {
                    None => true,
                    Some(at) => at.elapsed() >= self.config.resend_after,
                };
                if !due {
                    continue;
                }
                if state.sent_at.is_some() {
                    self.stats.resends += 1;
                }
                let frame = Frame::Request {
                    req_id,
                    deadline_nanos: self
                        .config
                        .server_deadline
                        .map_or(0, |d| d.as_nanos() as u64),
                    block: state.block,
                    payload: state.payload.clone(),
                };
                let conn = self.conn.as_mut().expect("connected above");
                if write_frame(&mut conn.stream, &frame).is_err() {
                    conn_died = true;
                    break;
                }
                state.sent_at = Some(Instant::now());
            }
            if conn_died {
                self.conn = None;
                continue;
            }

            // Receive until the tick runs dry.
            match self.poll_frame() {
                Ok(Some(Frame::Response {
                    req_id,
                    status: code,
                    shard,
                    message,
                    payload,
                })) => {
                    if let Some(state) = pending.get_mut(&req_id) {
                        if state.outcome.is_none() {
                            if code == status::OK {
                                state.outcome = Some(Ok(payload));
                                open -= 1;
                            } else if status::is_retryable(code) {
                                // Shed before execution: back off, then
                                // resend the same req_id.
                                state.sent_at = None;
                                self.stats.backoffs += 1;
                                std::thread::sleep(self.config.backoff);
                            } else {
                                state.outcome = Some(Err(RpcError::Status {
                                    code,
                                    shard,
                                    message,
                                }));
                                open -= 1;
                            }
                        }
                        // A duplicate response (we resent, both executed
                        // server-side as one) is simply ignored.
                    }
                }
                // Unsolicited but harmless frames during a batch.
                Ok(Some(Frame::Pong { .. } | Frame::StatsReply(_) | Frame::DrainStarted)) => {}
                Ok(Some(_)) => {
                    self.conn = None;
                    return Err(RpcError::Protocol("unexpected frame during batch"));
                }
                Ok(None) => {}
                Err(_) => {
                    // Reset, truncation, poisoned stream: redial.
                    self.conn = None;
                }
            }
        }

        Ok(order
            .into_iter()
            .map(|id| {
                pending
                    .remove(&id)
                    .and_then(|s| s.outcome)
                    .unwrap_or(Err(RpcError::Protocol("lost batch slot")))
            })
            .collect())
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// See [`RpcError`].
    pub fn ping(&mut self) -> Result<Duration, RpcError> {
        let nonce = self.next_req_id;
        self.next_req_id += 1;
        let start = Instant::now();
        self.transact(
            &Frame::Ping { nonce },
            |frame| matches!(frame, Frame::Pong { nonce: got } if *got == nonce),
        )?;
        Ok(start.elapsed())
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// See [`RpcError`].
    pub fn server_stats(&mut self) -> Result<ServerCounters, RpcError> {
        let frame = self.transact(&Frame::Stats, |frame| matches!(frame, Frame::StatsReply(_)))?;
        match frame {
            Frame::StatsReply(counters) => Ok(counters),
            _ => Err(RpcError::Protocol("stats reply shape")),
        }
    }

    /// Asks the server to drain (finish in-flight work, checkpoint,
    /// exit) — the remote SIGTERM.
    ///
    /// # Errors
    ///
    /// See [`RpcError`].
    pub fn drain(&mut self) -> Result<(), RpcError> {
        self.transact(&Frame::Drain, |frame| matches!(frame, Frame::DrainStarted))?;
        Ok(())
    }

    /// Sends one control frame and waits (bounded) for the frame
    /// `matches` accepts, redialing on transport failure.
    fn transact(
        &mut self,
        request: &Frame,
        matches: impl Fn(&Frame) -> bool,
    ) -> Result<Frame, RpcError> {
        let start = Instant::now();
        let mut redials = 0u32;
        let mut sent = false;
        loop {
            if start.elapsed() >= self.config.call_deadline {
                return Err(RpcError::DeadlineExpired {
                    waited: start.elapsed(),
                });
            }
            if self.conn.is_none() {
                sent = false;
                if let Err(e) = self.dial_handshake(start) {
                    redials += 1;
                    if redials > self.config.max_redials {
                        return Err(e);
                    }
                    self.stats.backoffs += 1;
                    std::thread::sleep(self.config.backoff);
                    continue;
                }
            }
            if !sent {
                let conn = self.conn.as_mut().expect("connected above");
                if write_frame(&mut conn.stream, request).is_err() {
                    self.conn = None;
                    continue;
                }
                sent = true;
            }
            match self.poll_frame() {
                Ok(Some(frame)) if matches(&frame) => return Ok(frame),
                Ok(Some(Frame::Response { .. })) | Ok(Some(_)) | Ok(None) => {}
                Err(_) => self.conn = None,
            }
        }
    }

    /// Dials and wraps the endpoint (optionally in the shared fault
    /// plan), then runs the handshake within the remaining budget.
    fn dial_handshake(&mut self, start: Instant) -> Result<(), RpcError> {
        let stream = self.dial()?;
        stream
            .set_read_timeout(Some(self.config.tick))
            .map_err(RpcError::Io)?;
        let mut conn = Conn {
            stream,
            reader: FrameReader::new(),
        };
        self.stats.dials += 1;
        write_frame(
            &mut conn.stream,
            &Frame::Hello {
                client_id: self.config.client_id,
                tenant: self.config.tenant,
                token: self.config.token,
            },
        )
        .map_err(RpcError::Io)?;
        loop {
            if start.elapsed() >= self.config.call_deadline {
                return Err(RpcError::DeadlineExpired {
                    waited: start.elapsed(),
                });
            }
            match conn.reader.poll(&mut conn.stream) {
                Ok(FramePoll::Frame(Frame::HelloAck { accept, epoch })) => {
                    return match accept {
                        Accept::Ok => {
                            self.epoch = Some(epoch);
                            self.conn = Some(conn);
                            Ok(())
                        }
                        refused => Err(RpcError::Rejected { accept: refused }),
                    };
                }
                Ok(FramePoll::Frame(_)) => return Err(RpcError::Protocol("frame before ack")),
                Ok(FramePoll::Pending) => {}
                Ok(FramePoll::Closed) => {
                    return Err(RpcError::Io(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "closed during handshake",
                    )))
                }
                Err(PollError::Io(e)) => return Err(RpcError::Io(e)),
                Err(PollError::Wire(e)) => {
                    return Err(RpcError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        e.to_string(),
                    )))
                }
            }
        }
    }

    fn dial(&self) -> Result<Box<dyn NetStream>, RpcError> {
        let stream: Box<dyn NetStream> = match &self.config.endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str()).map_err(RpcError::Io)?;
                stream.set_nodelay(true).map_err(RpcError::Io)?;
                match &self.config.fault_plan {
                    Some(plan) => Box::new(FaultyConn::new(stream, Arc::clone(plan))),
                    None => Box::new(stream),
                }
            }
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path).map_err(RpcError::Io)?;
                match &self.config.fault_plan {
                    Some(plan) => Box::new(FaultyConn::new(stream, Arc::clone(plan))),
                    None => Box::new(stream),
                }
            }
        };
        Ok(stream)
    }

    /// One bounded poll on the live connection: `Ok(None)` when the
    /// tick elapsed without a complete frame.
    fn poll_frame(&mut self) -> Result<Option<Frame>, RpcError> {
        let Some(conn) = self.conn.as_mut() else {
            return Ok(None);
        };
        match conn.reader.poll(&mut conn.stream) {
            Ok(FramePoll::Frame(frame)) => Ok(Some(frame)),
            Ok(FramePoll::Pending) => Ok(None),
            Ok(FramePoll::Closed) => Err(RpcError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            ))),
            Err(PollError::Io(e)) => Err(RpcError::Io(e)),
            Err(PollError::Wire(e)) => Err(RpcError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                e.to_string(),
            ))),
        }
    }
}

impl fmt::Debug for RpcClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RpcClient")
            .field("endpoint", &self.config.endpoint)
            .field("client_id", &self.config.client_id)
            .field("connected", &self.conn.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

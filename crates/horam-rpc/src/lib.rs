//! Fault-tolerant network serving for the H-ORAM reproduction.
//!
//! This crate puts [`horam-server`'s](horam_server) in-process
//! [`OramService`](horam_server::service::OramService) behind a socket
//! with **failure semantics as the design center**:
//!
//! * [`wire`] — a length-prefixed binary frame codec over TCP or
//!   Unix-domain sockets. Resumable reads, a hard frame-size bound
//!   enforced on the length prefix, and typed errors for every way a
//!   stream can go wrong.
//! * [`status`] — stable numeric wire codes for every serving and
//!   transport outcome; an exhaustive match makes shipping an uncoded
//!   `ServeError` variant a compile error.
//! * [`server`] — thread-per-connection serving on the existing
//!   [`WorkerPool`](horam_core::pool::WorkerPool) (no async runtime):
//!   server-side deadline shedding, a bounded idempotency window that
//!   makes client retries safe (no duplicated writes), typed
//!   `BUSY`/`QUEUE_FULL` backpressure, and SIGTERM-triggered graceful
//!   drain that finishes in-flight work and emits a restartable
//!   [`Checkpoint`].
//! * [`client`] — a pipelined, retrying client whose every wait is
//!   deadline-bounded: resend on silent loss, redial on disconnect,
//!   back off on shed — all under one per-call budget, all idempotent.
//!
//! The transport chaos methodology mirrors PR 7's storage fault
//! injection: wrap any connection in
//! [`FaultyConn`](oram_storage::fault::FaultyConn) with a seeded
//! schedule and every client call still resolves to a typed error or a
//! correct response — never a hang, never a duplicated write. See
//! `docs/ARCHITECTURE.md` §13 for the protocol state machine and
//! `docs/OPERATIONS.md` for the drain → checkpoint → restart runbook.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod client;
pub mod net;
pub mod server;
pub mod status;
pub mod wire;

pub use client::{ClientConfig, ClientStats, RpcClient, RpcError};
pub use net::{connect, Endpoint, Listener, NetStream};
pub use server::{
    bind_signals_to_drain, run_server, Checkpoint, ServerConfig, ServerError, ServerOutcome,
    WindowEntry,
};
pub use wire::{Accept, Frame, FrameReader, ServerCounters, WireError, MAX_FRAME, VERSION};

//! Transport plumbing: endpoint addressing, listeners, and the stream
//! abstraction shared by server, client, and the fault injector.
//!
//! Both TCP and Unix-domain sockets are supported behind one
//! [`Endpoint`] syntax (`tcp://host:port`, `unix:///path`); everything
//! above this module works on a boxed [`NetStream`], which is also what
//! lets the chaos battery wrap a real socket in
//! [`FaultyConn`] without the server or
//! client knowing.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use oram_storage::fault::FaultyConn;

/// Where a server listens / a client dials.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp://host:port`, `unix:///path`, or a bare `host:port`
    /// (treated as TCP).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for an empty address or unknown scheme.
    pub fn parse(raw: &str) -> io::Result<Self> {
        if let Some(rest) = raw.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty tcp address",
                ));
            }
            return Ok(Endpoint::Tcp(rest.to_string()));
        }
        if let Some(rest) = raw.strip_prefix("unix://") {
            if rest.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "empty socket path",
                ));
            }
            return Ok(Endpoint::Unix(PathBuf::from(rest)));
        }
        if raw.contains("://") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown endpoint scheme in {raw:?} (use tcp:// or unix://)"),
            ));
        }
        if raw.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty endpoint",
            ));
        }
        Ok(Endpoint::Tcp(raw.to_string()))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds the endpoint. For Unix sockets a stale socket file from a
    /// previous (crashed) process is removed first. The listener is set
    /// nonblocking — the server's control loop polls it between engine
    /// pumps, so accepting never blocks request processing.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Tcp(listener))
            }
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok(Listener::Unix(listener))
            }
        }
    }

    /// The endpoint actually bound — for TCP with port 0, this reports
    /// the kernel-assigned port.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(listener) => Ok(Endpoint::Tcp(listener.local_addr()?.to_string())),
            Listener::Unix(listener) => {
                let addr = listener.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unnamed socket"))?;
                Ok(Endpoint::Unix(path.to_path_buf()))
            }
        }
    }

    /// Accepts one pending connection, if any (nonblocking): `Ok(None)`
    /// when no connection is waiting.
    ///
    /// # Errors
    ///
    /// Propagates accept failures other than `WouldBlock`.
    pub fn try_accept(&self) -> io::Result<Option<Box<dyn NetStream>>> {
        let stream: Box<dyn NetStream> = match self {
            Listener::Tcp(listener) => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(false)?;
                    Box::new(stream)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            Listener::Unix(listener) => match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Box::new(stream)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        Ok(Some(stream))
    }
}

/// The stream capabilities the protocol needs beyond `Read + Write`:
/// bounded reads (no wait in the system is indefinite) and a hard
/// close. Implemented for plain sockets and for fault-injected ones.
pub trait NetStream: Read + Write + Send {
    /// Bounds how long one `read` may block (`None` = unbounded).
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Severs both directions immediately.
    fn shutdown_both(&self) -> io::Result<()>;
}

impl NetStream for TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl NetStream for UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(self, timeout)
    }
    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl NetStream for FaultyConn<TcpStream> {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.get_ref().set_read_timeout(timeout)
    }
    fn shutdown_both(&self) -> io::Result<()> {
        self.get_ref().shutdown(std::net::Shutdown::Both)
    }
}

impl NetStream for FaultyConn<UnixStream> {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.get_ref().set_read_timeout(timeout)
    }
    fn shutdown_both(&self) -> io::Result<()> {
        self.get_ref().shutdown(std::net::Shutdown::Both)
    }
}

/// Dials the endpoint, returning a blocking stream.
///
/// # Errors
///
/// Propagates connect failures.
pub fn connect(endpoint: &Endpoint) -> io::Result<Box<dyn NetStream>> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            stream.set_nodelay(true)?;
            Ok(Box::new(stream))
        }
        Endpoint::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7000").unwrap(),
            Endpoint::Tcp("127.0.0.1:7000".into())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7000").unwrap(),
            Endpoint::Tcp("127.0.0.1:7000".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///tmp/horam.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/horam.sock"))
        );
        assert!(Endpoint::parse("http://x").is_err());
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
    }

    #[test]
    fn endpoint_display_roundtrips() {
        for raw in ["tcp://127.0.0.1:9", "unix:///tmp/h.sock"] {
            let endpoint = Endpoint::parse(raw).unwrap();
            assert_eq!(endpoint.to_string(), raw);
            assert_eq!(Endpoint::parse(&endpoint.to_string()).unwrap(), endpoint);
        }
    }

    #[test]
    fn tcp_listener_reports_ephemeral_port() {
        let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        match listener.local_endpoint().unwrap() {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "got {addr}"),
            other => panic!("unexpected {other}"),
        }
    }
}

//! The serving loop: accept, admit, pump, respond, drain.
//!
//! # Threading model
//!
//! Thread-per-connection on the existing
//! [`WorkerPool`] — no async runtime. One
//! **control thread** (the pool's scope body) owns the
//! [`OramService`] outright and interleaves three duties per tick:
//! accept pending connections (nonblocking), drain the job inbox into
//! the service, and pump the engine / collect results. Each accepted
//! connection runs on a pool worker, parsing frames and forwarding
//! [`Frame::Request`]s to the control thread over an mpsc inbox;
//! responses travel back on a per-connection channel. The service never
//! crosses a thread boundary, so the engine needs no locks and the
//! deterministic pump order is exactly the in-process one.
//!
//! # Failure semantics
//!
//! Every request resolves to exactly one of:
//!
//! * **executed** — admitted to the ORAM and run to completion; the
//!   outcome (success or typed in-flight failure) is cached in the
//!   bounded idempotency window keyed by `(client_id, req_id)`, so a
//!   retry after a lost response replays the *original* outcome instead
//!   of re-executing. Once admitted, a request is never cancelled — an
//!   applied write cannot be idempotently un-applied.
//! * **shed** — refused *before* reaching the ORAM engine with a typed
//!   code (`BUSY`, `QUEUE_FULL`, `DEADLINE_EXPIRED`, `SHUTTING_DOWN`,
//!   serving-layer rejections). Shed outcomes are deliberately **not**
//!   cached: a retry must re-evaluate admission, or a transient `BUSY`
//!   would be pinned forever.
//!
//! # Drain
//!
//! When the drain flag rises (SIGTERM in `horam-serverd`, or a
//! [`Frame::Drain`]): stop accepting, shed new requests with
//! `SHUTTING_DOWN`, finish every in-flight request and deliver its
//! response, then [`OramService::checkpoint`]. The checkpoint bundles
//! the sealed engine snapshot **and** the idempotency window, so a
//! restarted server still recognizes retries of work the old process
//! executed. Because drain completes or sheds everything, no request is
//! ever half-applied at the checkpoint boundary — which is what makes
//! restart + restore + replay byte-identical to an uninterrupted run.

use crate::net::{Listener, NetStream};
use crate::status;
use crate::wire::{write_frame, Accept, Frame, FramePoll, FrameReader, PollError, ServerCounters};
use horam_core::engine::OramEngine;
use horam_core::multi_user::UserId;
use horam_core::pool::WorkerPool;
use horam_server::service::{OramService, ServeError, ServiceTicket};
use oram_protocols::types::Request;
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How long a freshly accepted connection gets to present its `Hello`.
const HANDSHAKE_BUDGET: Duration = Duration::from_secs(3);

/// Server tuning and lifecycle knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connection bound; excess dials get a `Busy` handshake
    /// and are dropped (typed backpressure, not unbounded buffering).
    pub max_connections: usize,
    /// Server-wide in-flight request bound; excess requests get `BUSY`.
    pub max_inflight: usize,
    /// Executed-outcome entries retained for idempotent retries.
    pub dedup_window: usize,
    /// Required `Hello` token, if any.
    pub token: Option<u64>,
    /// Process start epoch reported in every `HelloAck` (bump it on
    /// restart so clients can observe that they crossed a restart).
    pub epoch: u64,
    /// Control-loop park / connection read-timeout granularity. Every
    /// blocking wait in the server is bounded by (a small multiple of)
    /// this tick.
    pub tick: Duration,
    /// Raised by SIGTERM (see `horam-serverd`) or a [`Frame::Drain`];
    /// starts the graceful drain. Hold a clone to trigger drain
    /// externally.
    pub drain: Arc<AtomicBool>,
    /// Idempotency-window entries carried over from a previous process's
    /// [`Checkpoint`], so retries of already-executed work survive a
    /// restart.
    pub preload_window: Vec<WindowEntry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 16,
            max_inflight: 256,
            dedup_window: 1024,
            token: None,
            epoch: 0,
            tick: Duration::from_millis(1),
            drain: Arc::new(AtomicBool::new(false)),
            preload_window: Vec::new(),
        }
    }
}

/// One executed outcome in the idempotency window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowEntry {
    /// The retry-stable client identity from the `Hello`.
    pub client_id: u64,
    /// The request's idempotency key.
    pub req_id: u64,
    /// The cached response frame (always a [`Frame::Response`]).
    pub response: Frame,
}

/// What a graceful drain produces: the sealed engine snapshot plus the
/// idempotency window, serialized together so a restarted server
/// resumes with both the data *and* the memory of what it already
/// executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Sealed engine state from [`OramService::checkpoint`].
    pub snapshot: Vec<u8>,
    /// Idempotency-window entries, oldest first.
    pub window: Vec<WindowEntry>,
    /// The epoch of the process that took the checkpoint.
    pub epoch: u64,
}

const CHECKPOINT_MAGIC: &[u8; 4] = b"HCKP";
const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Serializes the checkpoint for the restart file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.snapshot.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.snapshot);
        out.extend_from_slice(&(self.window.len() as u32).to_le_bytes());
        for entry in &self.window {
            out.extend_from_slice(&entry.client_id.to_le_bytes());
            out.extend_from_slice(&entry.req_id.to_le_bytes());
            let frame = crate::wire::encode_frame(&entry.response);
            out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
            out.extend_from_slice(&frame);
        }
        out
    }

    /// Parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// `InvalidData` on truncation, bad magic, or an unknown version —
    /// restores fail closed, a corrupt checkpoint is never half-adopted.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        fn bad(reason: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {reason}"))
        }
        let mut pos = 0usize;
        let mut take = |n: usize| -> io::Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(|| bad("length overflow"))?;
            if end > bytes.len() {
                return Err(bad("truncated"));
            }
            let slice = &bytes[pos..end];
            pos = end;
            Ok(slice)
        };
        if take(4)? != CHECKPOINT_MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        if version != CHECKPOINT_VERSION {
            return Err(bad("unknown version"));
        }
        let epoch = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let snapshot_len = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes")) as usize;
        let snapshot = take(snapshot_len)?.to_vec();
        let count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
        let mut window = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let client_id = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            let req_id = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
            let frame_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
            let frame_bytes = take(frame_len)?;
            if frame_bytes.len() < 5 {
                return Err(bad("window frame too short"));
            }
            let response = crate::wire::decode_frame(frame_bytes[4], &frame_bytes[5..])
                .map_err(|e| bad(&format!("window frame: {e}")))?;
            window.push(WindowEntry {
                client_id,
                req_id,
                response,
            });
        }
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(Self {
            snapshot,
            window,
            epoch,
        })
    }
}

/// What [`run_server`] returns after a graceful drain.
#[derive(Debug)]
pub struct ServerOutcome {
    /// Final counter values.
    pub counters: ServerCounters,
    /// The drain checkpoint (engine snapshot + idempotency window).
    pub checkpoint: Checkpoint,
}

/// Why the server stopped other than a graceful drain.
#[derive(Debug)]
pub enum ServerError {
    /// The listener or a control-path socket failed.
    Io(io::Error),
    /// The engine failed while pumping or checkpointing.
    Serve(ServeError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<ServeError> for ServerError {
    fn from(e: ServeError) -> Self {
        ServerError::Serve(e)
    }
}

/// One parsed request travelling from a connection thread to the
/// control thread.
struct Job {
    client_id: u64,
    tenant: u32,
    req_id: u64,
    /// Absolute shed point, stamped at arrival on the connection thread
    /// from the request's relative budget.
    deadline_at: Option<Instant>,
    block: u64,
    payload: Option<Vec<u8>>,
    reply: mpsc::Sender<Frame>,
}

/// Atomic counter block shared by the control thread and connections.
#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed_deadline: AtomicU64,
    busy_rejects: AtomicU64,
    queue_full_rejects: AtomicU64,
    dedup_hits: AtomicU64,
    shed_draining: AtomicU64,
    connections: AtomicU64,
}

impl Counters {
    fn snapshot(&self, draining: bool) -> ServerCounters {
        ServerCounters {
            served: self.served.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            busy_rejects: self.busy_rejects.load(Ordering::Relaxed),
            queue_full_rejects: self.queue_full_rejects.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            shed_draining: self.shed_draining.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            draining,
        }
    }
}

/// Immutable context handed to every connection thread.
struct ConnShared {
    inbox: mpsc::Sender<Job>,
    counters: Arc<Counters>,
    draining: Arc<AtomicBool>,
    stopped: Arc<AtomicBool>,
    token: Option<u64>,
    epoch: u64,
    tick: Duration,
}

/// Control-thread bookkeeping for one admitted request.
struct Inflight {
    client_id: u64,
    req_id: u64,
    reply: mpsc::Sender<Frame>,
}

/// Bounded idempotency window of executed outcomes.
struct DedupWindow {
    entries: HashMap<(u64, u64), Frame>,
    order: VecDeque<(u64, u64)>,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize, preload: Vec<WindowEntry>) -> Self {
        let mut window = Self {
            entries: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        };
        for entry in preload {
            window.insert(entry.client_id, entry.req_id, entry.response);
        }
        window
    }

    fn get(&self, client_id: u64, req_id: u64) -> Option<&Frame> {
        self.entries.get(&(client_id, req_id))
    }

    fn insert(&mut self, client_id: u64, req_id: u64, response: Frame) {
        let key = (client_id, req_id);
        if self.entries.insert(key, response).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
    }

    fn to_entries(&self) -> Vec<WindowEntry> {
        self.order
            .iter()
            .filter_map(|key| {
                self.entries.get(key).map(|response| WindowEntry {
                    client_id: key.0,
                    req_id: key.1,
                    response: response.clone(),
                })
            })
            .collect()
    }
}

/// Runs the server until a graceful drain completes, then returns the
/// drain checkpoint. The service is borrowed, not consumed — after a
/// drain the caller still owns the (now idle) service, which is what
/// the drain-equivalence tests exploit.
///
/// Every blocking wait inside — accept, connection reads, the control
/// loop park — is bounded by `config.tick` (or the handshake budget),
/// so a vanished client or a lost frame can never wedge the server.
///
/// # Errors
///
/// [`ServerError::Io`] if the listener fails, [`ServerError::Serve`] if
/// the engine fails while pumping or taking the drain checkpoint.
pub fn run_server<E: OramEngine>(
    service: &mut OramService<E>,
    listener: &Listener,
    config: &ServerConfig,
) -> Result<ServerOutcome, ServerError> {
    let counters = Arc::new(Counters::default());
    let draining = Arc::clone(&config.drain);
    let stopped = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let (inbox_tx, inbox_rx) = mpsc::channel::<Job>();

    // Workers cover every concurrent connection; the control loop is the
    // scope body and does not help until the final barrier.
    let pool = WorkerPool::new(config.max_connections.max(1) + 1);
    pool.scope(|scope| {
        let run = (|| -> Result<ServerOutcome, ServerError> {
            let mut window = DedupWindow::new(config.dedup_window, config.preload_window.clone());
            let mut inflight: HashMap<ServiceTicket, Inflight> = HashMap::new();
            let mut inflight_by_key: HashMap<(u64, u64), ServiceTicket> = HashMap::new();

            loop {
                // 1. Accept pending dials (stops once draining).
                if !draining.load(Ordering::Acquire) {
                    while let Some(mut stream) = listener.try_accept()? {
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        if active.load(Ordering::Acquire) >= config.max_connections {
                            // Typed backpressure at the door: say Busy,
                            // hang up. Best-effort — the client also
                            // handles a plain disconnect.
                            counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
                            let _ = write_frame(
                                &mut stream,
                                &Frame::HelloAck {
                                    accept: Accept::Busy,
                                    epoch: config.epoch,
                                },
                            );
                            let _ = stream.shutdown_both();
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let shared = ConnShared {
                            inbox: inbox_tx.clone(),
                            counters: Arc::clone(&counters),
                            draining: Arc::clone(&draining),
                            stopped: Arc::clone(&stopped),
                            token: config.token,
                            epoch: config.epoch,
                            tick: config.tick,
                        };
                        let active = Arc::clone(&active);
                        scope.spawn(move || {
                            handle_conn(stream, &shared);
                            active.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                }

                // 2. Drain the inbox into the engine.
                while let Ok(job) = inbox_rx.try_recv() {
                    admit_job(
                        service,
                        job,
                        &counters,
                        &draining,
                        &mut window,
                        &mut inflight,
                        &mut inflight_by_key,
                        config.max_inflight,
                    );
                }

                // 3. Pump and deliver.
                let busy = !inflight.is_empty();
                if busy {
                    service.pump()?;
                    collect_resolved(
                        service,
                        &counters,
                        &mut window,
                        &mut inflight,
                        &mut inflight_by_key,
                    );
                }

                // 4. Drain completion: everything admitted has resolved.
                if draining.load(Ordering::Acquire) && inflight.is_empty() {
                    // Shed whatever raced into the inbox after the flag.
                    while let Ok(job) = inbox_rx.try_recv() {
                        counters.shed_draining.fetch_add(1, Ordering::Relaxed);
                        let _ = job.reply.send(status::transport_error_response(
                            job.req_id,
                            status::SHUTTING_DOWN,
                            "server draining; request not executed, safe to replay".into(),
                        ));
                    }
                    let snapshot = service.checkpoint()?;
                    return Ok(ServerOutcome {
                        counters: counters.snapshot(true),
                        checkpoint: Checkpoint {
                            snapshot,
                            window: window.to_entries(),
                            epoch: config.epoch,
                        },
                    });
                }

                // 5. Park briefly when idle so the loop does not spin.
                if !busy {
                    match inbox_rx.recv_timeout(config.tick) {
                        Ok(job) => admit_job(
                            service,
                            job,
                            &counters,
                            &draining,
                            &mut window,
                            &mut inflight,
                            &mut inflight_by_key,
                            config.max_inflight,
                        ),
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        // Unreachable while we hold `inbox_tx`, but a
                        // disconnect would simply mean no more senders.
                        Err(mpsc::RecvTimeoutError::Disconnected) => {}
                    }
                }
            }
        })();
        // Whatever the exit path, release the connection threads before
        // the scope barrier, or the barrier would never clear.
        stopped.store(true, Ordering::Release);
        run
    })
}

/// Admission on the control thread: dedup → drain → deadline → busy →
/// submit. Everything shed here never touches the ORAM engine.
#[allow(clippy::too_many_arguments)]
fn admit_job<E: OramEngine>(
    service: &mut OramService<E>,
    job: Job,
    counters: &Counters,
    draining: &AtomicBool,
    window: &mut DedupWindow,
    inflight: &mut HashMap<ServiceTicket, Inflight>,
    inflight_by_key: &mut HashMap<(u64, u64), ServiceTicket>,
    max_inflight: usize,
) {
    let key = (job.client_id, job.req_id);

    // An already-executed outcome answers the retry verbatim — this is
    // what makes retried writes safe (the original previous-bytes come
    // back; nothing re-executes).
    if let Some(cached) = window.get(key.0, key.1) {
        counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(cached.clone());
        return;
    }

    // A retry of a request still executing re-attaches the (possibly
    // redialed) reply channel to the in-flight entry instead of
    // resubmitting.
    if let Some(&ticket) = inflight_by_key.get(&key) {
        counters.dedup_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(meta) = inflight.get_mut(&ticket) {
            meta.reply = job.reply;
        }
        return;
    }

    if draining.load(Ordering::Acquire) {
        counters.shed_draining.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(status::transport_error_response(
            job.req_id,
            status::SHUTTING_DOWN,
            "server draining; request not executed, safe to replay".into(),
        ));
        return;
    }

    // Deadline shedding happens before the engine ever sees the work.
    if let Some(deadline_at) = job.deadline_at {
        if Instant::now() >= deadline_at {
            counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(status::transport_error_response(
                job.req_id,
                status::DEADLINE_EXPIRED,
                "deadline budget spent before admission; not executed".into(),
            ));
            return;
        }
    }

    if inflight.len() >= max_inflight {
        counters.busy_rejects.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(status::transport_error_response(
            job.req_id,
            status::BUSY,
            format!("server at its in-flight bound ({max_inflight}); retry after backoff"),
        ));
        return;
    }

    let request = match job.payload {
        Some(payload) => Request::write(job.block, payload),
        None => Request::read(job.block),
    };
    match service.submit(UserId(job.tenant), request) {
        Ok(ticket) => {
            inflight.insert(
                ticket,
                Inflight {
                    client_id: job.client_id,
                    req_id: job.req_id,
                    reply: job.reply,
                },
            );
            inflight_by_key.insert(key, ticket);
        }
        Err(error) => {
            if matches!(error, ServeError::QueueFull { .. }) {
                counters.queue_full_rejects.fetch_add(1, Ordering::Relaxed);
            }
            // Pre-execution rejection: typed, not cached, retry
            // re-evaluates.
            let _ = job
                .reply
                .send(status::serve_error_response(job.req_id, &error));
        }
    }
}

/// Harvests every resolved ticket, caches the executed outcome in the
/// idempotency window, and delivers it (best-effort — a vanished client
/// collects it from the window on retry).
fn collect_resolved<E: OramEngine>(
    service: &mut OramService<E>,
    counters: &Counters,
    window: &mut DedupWindow,
    inflight: &mut HashMap<ServiceTicket, Inflight>,
    inflight_by_key: &mut HashMap<(u64, u64), ServiceTicket>,
) {
    let tickets: Vec<ServiceTicket> = inflight.keys().copied().collect();
    for ticket in tickets {
        let Some(result) = service.take_result(ticket) else {
            continue;
        };
        let Some(meta) = inflight.remove(&ticket) else {
            continue;
        };
        inflight_by_key.remove(&(meta.client_id, meta.req_id));
        let frame = match result {
            Ok(payload) => Frame::Response {
                req_id: meta.req_id,
                status: status::OK,
                shard: 0,
                message: String::new(),
                payload,
            },
            Err(error) => status::serve_error_response(meta.req_id, &error),
        };
        counters.served.fetch_add(1, Ordering::Relaxed);
        window.insert(meta.client_id, meta.req_id, frame.clone());
        let _ = meta.reply.send(frame);
    }
}

/// One connection's lifecycle on a pool worker: handshake, then a
/// bounded-poll loop forwarding requests inward and responses outward.
/// Never blocks unboundedly; exits on peer close, poisoned stream,
/// handshake timeout, or server stop.
fn handle_conn(mut stream: Box<dyn NetStream>, shared: &ConnShared) {
    if stream.set_read_timeout(Some(shared.tick)).is_err() {
        return;
    }
    let mut reader = FrameReader::new();

    // Handshake: the peer gets a bounded budget to present its Hello.
    let started = Instant::now();
    let (client_id, tenant) = loop {
        if shared.stopped.load(Ordering::Acquire) || started.elapsed() > HANDSHAKE_BUDGET {
            return;
        }
        match reader.poll(&mut stream) {
            Ok(FramePoll::Frame(Frame::Hello {
                client_id,
                tenant,
                token,
            })) => {
                if shared.token.is_some_and(|expected| expected != token) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::HelloAck {
                            accept: Accept::AuthFailed,
                            epoch: shared.epoch,
                        },
                    );
                    let _ = stream.shutdown_both();
                    return;
                }
                if shared.draining.load(Ordering::Acquire) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::HelloAck {
                            accept: Accept::Draining,
                            epoch: shared.epoch,
                        },
                    );
                    let _ = stream.shutdown_both();
                    return;
                }
                break (client_id, tenant);
            }
            // Anything else before the handshake is a protocol violation.
            Ok(FramePoll::Frame(_)) | Ok(FramePoll::Closed) | Err(_) => return,
            Ok(FramePoll::Pending) => {}
        }
    };
    if write_frame(
        &mut stream,
        &Frame::HelloAck {
            accept: Accept::Ok,
            epoch: shared.epoch,
        },
    )
    .is_err()
    {
        return;
    }

    let (reply_tx, reply_rx) = mpsc::channel::<Frame>();
    loop {
        // Outbound first: deliver whatever the engine resolved since the
        // last poll.
        while let Ok(frame) = reply_rx.try_recv() {
            if write_frame(&mut stream, &frame).is_err() {
                // Client gone mid-response; executed outcomes stay in
                // the idempotency window for its retry.
                return;
            }
        }

        if shared.stopped.load(Ordering::Acquire) {
            // The engine queued every drain response before raising
            // `stopped`; flush the tail and close.
            while let Ok(frame) = reply_rx.try_recv() {
                if write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
            let _ = stream.flush();
            let _ = stream.shutdown_both();
            return;
        }

        match reader.poll(&mut stream) {
            Ok(FramePoll::Frame(frame)) => match frame {
                Frame::Request {
                    req_id,
                    deadline_nanos,
                    block,
                    payload,
                } => {
                    let deadline_at = (deadline_nanos > 0)
                        .then(|| Instant::now() + Duration::from_nanos(deadline_nanos));
                    let job = Job {
                        client_id,
                        tenant,
                        req_id,
                        deadline_at,
                        block,
                        payload,
                        reply: reply_tx.clone(),
                    };
                    if shared.inbox.send(job).is_err() {
                        // Control loop already gone: shed, typed.
                        let _ = write_frame(
                            &mut stream,
                            &status::transport_error_response(
                                req_id,
                                status::SHUTTING_DOWN,
                                "server stopped; request not executed".into(),
                            ),
                        );
                    }
                }
                Frame::Ping { nonce } => {
                    if write_frame(&mut stream, &Frame::Pong { nonce }).is_err() {
                        return;
                    }
                }
                Frame::Stats => {
                    let snapshot = shared
                        .counters
                        .snapshot(shared.draining.load(Ordering::Acquire));
                    if write_frame(&mut stream, &Frame::StatsReply(snapshot)).is_err() {
                        return;
                    }
                }
                Frame::Drain => {
                    shared.draining.store(true, Ordering::Release);
                    if write_frame(&mut stream, &Frame::DrainStarted).is_err() {
                        return;
                    }
                }
                // A second Hello or any server-to-client frame from a
                // client is a protocol violation; poison the connection.
                _ => {
                    let _ = stream.shutdown_both();
                    return;
                }
            },
            Ok(FramePoll::Pending) => {}
            Ok(FramePoll::Closed) => return,
            Err(PollError::Wire(error)) => {
                // Undecodable bytes: there is no resynchronizing a
                // length-prefixed stream, so report and hang up.
                let _ = write_frame(
                    &mut stream,
                    &status::transport_error_response(0, status::BAD_FRAME, error.to_string()),
                );
                let _ = stream.shutdown_both();
                return;
            }
            Err(PollError::Io(_)) => return,
        }
    }
}

/// Raised by the process signal handler; bridged onto drain flags by
/// [`bind_signals_to_drain`]. Process-global because `signal(2)`
/// handlers cannot carry state.
static TERM: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that raise the given drain flag,
/// turning either signal into a graceful drain-and-checkpoint.
///
/// The handler itself is async-signal-safe (it only stores to a static
/// atomic); a small watcher thread bridges that static onto the
/// caller's `drain` flag. Installation uses `signal(2)` directly so the
/// dependency set stays std-only. Calling this more than once is
/// harmless — the last registered drain flag (and every earlier one,
/// via its own watcher) is raised on the first signal.
pub fn bind_signals_to_drain(drain: Arc<AtomicBool>) {
    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
    thread::spawn(move || loop {
        if TERM.load(Ordering::Acquire) {
            drain.store(true, Ordering::Release);
            return;
        }
        thread::sleep(Duration::from_millis(20));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status as st;

    #[test]
    fn checkpoint_roundtrips() {
        let checkpoint = Checkpoint {
            snapshot: vec![7u8; 129],
            window: vec![
                WindowEntry {
                    client_id: 1,
                    req_id: 9,
                    response: Frame::Response {
                        req_id: 9,
                        status: st::OK,
                        shard: 0,
                        message: String::new(),
                        payload: vec![1, 2, 3],
                    },
                },
                WindowEntry {
                    client_id: 2,
                    req_id: 4,
                    response: st::transport_error_response(4, st::DEADLINE_EXPIRED, "late".into()),
                },
            ],
            epoch: 3,
        };
        let bytes = checkpoint.to_bytes();
        assert_eq!(Checkpoint::from_bytes(&bytes).expect("parses"), checkpoint);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let checkpoint = Checkpoint {
            snapshot: vec![1, 2, 3],
            window: Vec::new(),
            epoch: 0,
        };
        let bytes = checkpoint.to_bytes();
        // Truncations at every boundary fail closed.
        for cut in 0..bytes.len() {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Checkpoint::from_bytes(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes;
        long.push(0);
        assert!(Checkpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn dedup_window_caps_and_evicts_fifo() {
        let mut window = DedupWindow::new(2, Vec::new());
        let frame = |id: u64| Frame::Response {
            req_id: id,
            status: st::OK,
            shard: 0,
            message: String::new(),
            payload: Vec::new(),
        };
        window.insert(1, 1, frame(1));
        window.insert(1, 2, frame(2));
        window.insert(1, 3, frame(3));
        assert!(window.get(1, 1).is_none(), "oldest entry evicted");
        assert!(window.get(1, 2).is_some());
        assert!(window.get(1, 3).is_some());
        // Re-inserting an existing key does not double-count capacity.
        window.insert(1, 3, frame(3));
        assert_eq!(window.to_entries().len(), 2);
    }
}

//! Stable numeric wire codes for request outcomes.
//!
//! Every [`Frame::Response`] carries one
//! `u16` status. Codes are **stable** — they are part of the protocol
//! and must never be renumbered. The space is split in two:
//!
//! * `0..100` — serving-layer outcomes, one per
//!   [`ServeError`] variant (plus
//!   [`OK`]). [`serve_error_code`] is an *exhaustive* match, so adding a
//!   `ServeError` variant without assigning it a wire code is a compile
//!   error — a variant can never ship uncoded.
//! * `100..` — transport/server outcomes that exist only at the RPC
//!   boundary (admission, deadlines, drain) and never come from the
//!   serving layer.

use crate::wire::Frame;
use horam_server::service::ServeError;

/// Success; the response payload carries the block bytes.
pub const OK: u16 = 0;
/// [`ServeError::UnknownTenant`] — the tenant was never registered.
pub const UNKNOWN_TENANT: u16 = 1;
/// [`ServeError::Denied`] — access control rejected the request.
pub const DENIED: u16 = 2;
/// [`ServeError::QueueFull`] — the tenant hit its backpressure bound;
/// retryable after backoff.
pub const QUEUE_FULL: u16 = 3;
/// [`ServeError::Oram`] — geometry validation or the ORAM itself failed.
pub const ORAM: u16 = 4;
/// [`ServeError::Degraded`] — the owning shard is quarantined. The
/// response's `shard` field carries the shard index and its `message`
/// the quarantine reason.
pub const DEGRADED: u16 = 5;
/// [`ServeError::Timeout`] — a bounded server-side wait elapsed.
pub const TIMEOUT: u16 = 6;

/// The server is at its in-flight bound; retryable after backoff.
pub const BUSY: u16 = 100;
/// The request's deadline budget was already spent when it would have
/// been admitted; it was shed before reaching the ORAM engine.
pub const DEADLINE_EXPIRED: u16 = 101;
/// The server is draining toward a checkpoint; the request was **not**
/// executed and is safe to replay against the restarted server.
pub const SHUTTING_DOWN: u16 = 102;
/// The peer sent bytes that do not decode as a protocol frame.
pub const BAD_FRAME: u16 = 103;
/// The connection's `Hello` token did not verify.
pub const AUTH_FAILED: u16 = 104;

/// The stable wire code for a serving-layer error.
///
/// Exhaustive by construction: a new `ServeError` variant fails to
/// compile here until it is assigned a code, which is exactly the
/// property the wire needs.
pub fn serve_error_code(error: &ServeError) -> u16 {
    match error {
        ServeError::UnknownTenant(_) => UNKNOWN_TENANT,
        ServeError::Denied(_) => DENIED,
        ServeError::QueueFull { .. } => QUEUE_FULL,
        ServeError::Oram(_) => ORAM,
        ServeError::Degraded { .. } => DEGRADED,
        ServeError::Timeout { .. } => TIMEOUT,
    }
}

/// Builds the response frame for a serving-layer error, preserving the
/// `Degraded { shard, reason }` detail: the shard index travels in the
/// response's `shard` field and the reason in `message`.
pub fn serve_error_response(req_id: u64, error: &ServeError) -> Frame {
    let shard = match error {
        ServeError::Degraded { shard, .. } => *shard as u32,
        _ => 0,
    };
    Frame::Response {
        req_id,
        status: serve_error_code(error),
        shard,
        message: error.to_string(),
        payload: Vec::new(),
    }
}

/// Builds a transport-layer error response.
pub fn transport_error_response(req_id: u64, status: u16, message: String) -> Frame {
    Frame::Response {
        req_id,
        status,
        shard: 0,
        message,
        payload: Vec::new(),
    }
}

/// Human-readable name for a wire code (unknown codes report as such —
/// a newer server may emit codes an older client has no name for).
pub fn name(code: u16) -> &'static str {
    match code {
        OK => "OK",
        UNKNOWN_TENANT => "UNKNOWN_TENANT",
        DENIED => "DENIED",
        QUEUE_FULL => "QUEUE_FULL",
        ORAM => "ORAM",
        DEGRADED => "DEGRADED",
        TIMEOUT => "TIMEOUT",
        BUSY => "BUSY",
        DEADLINE_EXPIRED => "DEADLINE_EXPIRED",
        SHUTTING_DOWN => "SHUTTING_DOWN",
        BAD_FRAME => "BAD_FRAME",
        AUTH_FAILED => "AUTH_FAILED",
        _ => "UNKNOWN_CODE",
    }
}

/// Whether a client may safely retry the same request id after this
/// code. `BUSY`/`QUEUE_FULL` are load shedding (nothing executed);
/// `SHUTTING_DOWN` and `DEADLINE_EXPIRED` also shed before execution,
/// but retrying them is a policy decision (the next attempt needs a new
/// server or a new budget), so they are not auto-retryable.
pub fn is_retryable(code: u16) -> bool {
    matches!(code, BUSY | QUEUE_FULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use horam_core::access_control::AccessDenied;
    use horam_core::multi_user::UserId;
    use horam_server::service::ServiceTicket;
    use oram_protocols::error::OramError;
    use oram_protocols::types::BlockId;

    /// One representative value per `ServeError` variant. Written as an
    /// exhaustive list that the test below checks for distinct, stable
    /// codes; if `serve_error_code` itself gains a variant (compile
    /// error forces that), this list is where the new code's stability
    /// gets pinned.
    fn exemplars() -> Vec<(ServeError, u16)> {
        vec![
            (ServeError::UnknownTenant(UserId(3)), UNKNOWN_TENANT),
            (
                ServeError::Denied(AccessDenied::NoGrant {
                    user: UserId(2),
                    block: BlockId(11),
                }),
                DENIED,
            ),
            (
                ServeError::QueueFull {
                    tenant: UserId(1),
                    limit: 8,
                },
                QUEUE_FULL,
            ),
            (
                ServeError::Oram(OramError::BlockOutOfRange { id: 9, capacity: 4 }),
                ORAM,
            ),
            (
                ServeError::Degraded {
                    shard: 2,
                    reason: "tag mismatch".into(),
                },
                DEGRADED,
            ),
            (
                ServeError::Timeout {
                    ticket: ServiceTicket(7),
                    pumps: 64,
                },
                TIMEOUT,
            ),
        ]
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for (error, expected) in exemplars() {
            let code = serve_error_code(&error);
            assert_eq!(code, expected, "code drifted for {error}");
            assert!(seen.insert(code), "code {code} assigned twice");
            assert!(code < 100, "serving-layer codes live below 100");
            assert_ne!(name(code), "UNKNOWN_CODE");
        }
        // Transport codes are distinct from serving codes by range.
        for code in [
            BUSY,
            DEADLINE_EXPIRED,
            SHUTTING_DOWN,
            BAD_FRAME,
            AUTH_FAILED,
        ] {
            assert!(code >= 100);
            assert!(seen.insert(code), "transport code {code} collides");
            assert_ne!(name(code), "UNKNOWN_CODE");
        }
    }

    #[test]
    fn degraded_detail_survives_the_wire() {
        let error = ServeError::Degraded {
            shard: 5,
            reason: "seal tag mismatch during rebuild".into(),
        };
        let frame = serve_error_response(42, &error);
        let encoded = crate::wire::encode_frame(&frame);
        let decoded = crate::wire::decode_frame(encoded[4], &encoded[5..]).expect("decodes");
        match decoded {
            Frame::Response {
                req_id,
                status,
                shard,
                message,
                payload,
            } => {
                assert_eq!(req_id, 42);
                assert_eq!(status, DEGRADED);
                assert_eq!(shard, 5);
                assert!(message.contains("seal tag mismatch"));
                assert!(payload.is_empty());
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn retryability_is_conservative() {
        assert!(is_retryable(BUSY));
        assert!(is_retryable(QUEUE_FULL));
        for code in [
            OK,
            UNKNOWN_TENANT,
            DENIED,
            ORAM,
            DEGRADED,
            TIMEOUT,
            DEADLINE_EXPIRED,
            SHUTTING_DOWN,
            BAD_FRAME,
            AUTH_FAILED,
        ] {
            assert!(!is_retryable(code), "{} must not auto-retry", name(code));
        }
    }
}

//! The length-prefixed binary frame codec.
//!
//! Every message on the wire is one **frame**:
//!
//! ```text
//! ┌────────────┬─────────┬──────────────────────────────┐
//! │ u32 length │ u8 kind │ body (length − 1 bytes, LE)  │
//! └────────────┴─────────┴──────────────────────────────┘
//! ```
//!
//! `length` counts the kind byte plus the body and is bounded by
//! [`MAX_FRAME`]; anything larger is rejected *before* buffering, so a
//! corrupt or adversarial length prefix cannot balloon server memory.
//! All integers are little-endian. The codec is hand-rolled (no serde on
//! the wire): the frame set is small, fixed, and versioned through the
//! `Hello` handshake, and every decode error is a typed [`WireError`] —
//! a truncated or garbled frame can never panic the peer.
//!
//! Reading is **resumable**: [`FrameReader`] accumulates bytes across
//! short reads and poll timeouts and yields a frame only when it is
//! complete, which is what lets both endpoints run bounded socket
//! timeouts (no wait in the system is ever indefinite) and lets the
//! chaos battery cut frames at every byte boundary.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol magic, first field of every `Hello` body (`"HRPC"`).
pub const MAGIC: u32 = 0x4852_5043;
/// Protocol version negotiated by the handshake.
pub const VERSION: u16 = 1;
/// Upper bound on one frame's `length` field (kind + body).
pub const MAX_FRAME: usize = 1 << 20;

/// Handshake verdicts carried by [`Frame::HelloAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// Connection admitted; requests may flow.
    Ok,
    /// The server is at its connection bound — typed backpressure, the
    /// client should back off and redial.
    Busy,
    /// The server is draining toward a checkpoint and accepts no new
    /// connections.
    Draining,
    /// The `Hello` token did not verify.
    AuthFailed,
}

impl Accept {
    fn to_u8(self) -> u8 {
        match self {
            Accept::Ok => 0,
            Accept::Busy => 1,
            Accept::Draining => 2,
            Accept::AuthFailed => 3,
        }
    }

    fn from_u8(raw: u8) -> Result<Self, WireError> {
        Ok(match raw {
            0 => Accept::Ok,
            1 => Accept::Busy,
            2 => Accept::Draining,
            3 => Accept::AuthFailed,
            other => return Err(WireError::Malformed("unknown Accept verdict", other as u64)),
        })
    }
}

/// Server-side counters reported over the wire (`Frame::StatsReply`),
/// for the ops CLI and the failure-semantics tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Requests resolved with an executed outcome (success or typed
    /// in-flight failure).
    pub served: u64,
    /// Requests shed at the server because their deadline had already
    /// expired — these never reached the ORAM engine.
    pub shed_deadline: u64,
    /// Requests refused with `Busy` (server at its in-flight bound).
    pub busy_rejects: u64,
    /// Requests refused with `QueueFull` (tenant at its backpressure
    /// bound).
    pub queue_full_rejects: u64,
    /// Retries answered from the idempotent response window without
    /// re-executing.
    pub dedup_hits: u64,
    /// Requests refused because the server was draining.
    pub shed_draining: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Whether the server is currently draining.
    pub draining: bool,
}

/// One protocol message. See the module docs for the envelope; each
/// variant documents its body layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server, first frame on every connection:
    /// `u32 magic | u16 version | u64 client_id | u32 tenant | u64 token`.
    ///
    /// `client_id` scopes the idempotent request-id space — a client
    /// must reuse the same id across redials for the dedup window to
    /// recognize its retries.
    Hello {
        /// The retry-stable client identity.
        client_id: u64,
        /// The tenant to submit as (must be registered server-side).
        tenant: u32,
        /// Auth token (checked iff the server configures one).
        token: u64,
    },
    /// Server → client handshake verdict: `u8 accept | u64 epoch`.
    ///
    /// `epoch` increments each time the serving process starts, so a
    /// client that reconnects can observe a restart.
    HelloAck {
        /// Admission verdict.
        accept: Accept,
        /// The serving process's start epoch.
        epoch: u64,
    },
    /// Client → server, one ORAM operation:
    /// `u64 req_id | u64 deadline_nanos | u8 op | u64 block | [u32 len | bytes]`.
    ///
    /// `req_id` must be unique per `(client_id, request)` and **reused
    /// verbatim on retries** — it is the idempotency key. The payload is
    /// present iff `op` is a write. `deadline_nanos` is a relative
    /// budget from submission (0 = none); the server sheds the request
    /// with `DEADLINE_EXPIRED` if the budget is already spent when the
    /// request would otherwise be admitted.
    Request {
        /// Idempotency key, unique per client.
        req_id: u64,
        /// Relative deadline budget in nanoseconds; 0 = none.
        deadline_nanos: u64,
        /// Target logical block.
        block: u64,
        /// Write payload; `None` makes this a read.
        payload: Option<Vec<u8>>,
    },
    /// Server → client, the outcome of one request:
    /// `u64 req_id | u16 status | u32 shard | u32 mlen | msg | u32 plen | payload`.
    ///
    /// `status` 0 carries the payload; any other value is a typed error
    /// (see [`crate::status`]) whose `shard`/`msg` preserve the
    /// `Degraded { shard, reason }` detail across the wire.
    Response {
        /// Echo of the request's idempotency key.
        req_id: u64,
        /// Wire status code (see [`crate::status`]).
        status: u16,
        /// Degraded-shard index (meaningful for `DEGRADED` only).
        shard: u32,
        /// Human-readable error detail (empty on success).
        message: String,
        /// Response payload (empty on error).
        payload: Vec<u8>,
    },
    /// Liveness probe: `u64 nonce`.
    Ping {
        /// Echoed by the matching [`Frame::Pong`].
        nonce: u64,
    },
    /// Probe reply: `u64 nonce`.
    Pong {
        /// Echo of the probe nonce.
        nonce: u64,
    },
    /// Client → server: begin a graceful drain (stop accepting, finish
    /// in-flight work, checkpoint, exit) — the remote equivalent of
    /// SIGTERM, for operators and tests.
    Drain,
    /// Server → client: the drain has begun.
    DrainStarted,
    /// Client → server: report counters.
    Stats,
    /// Server → client: the counters.
    StatsReply(ServerCounters),
}

/// Typed decode failures. `Truncated` is *resumable* (more bytes may
/// still arrive); everything else poisons the stream — there is no way
/// to resynchronize a length-prefixed stream after a garbled prefix, so
/// the connection must be dropped and redialed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffered bytes end before the frame does.
    Truncated {
        /// Bytes needed to finish the pending item.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize {
        /// The claimed frame length.
        len: u64,
    },
    /// The frame kind byte is not part of the protocol.
    UnknownKind(u8),
    /// A `Hello` without the protocol magic.
    BadMagic {
        /// What arrived instead of [`MAGIC`].
        got: u32,
    },
    /// A `Hello` from an incompatible protocol version.
    BadVersion {
        /// The peer's version.
        got: u16,
    },
    /// A structurally invalid body (context, offending value).
    Malformed(&'static str, u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, have {got}")
            }
            WireError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte bound")
            }
            WireError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
            WireError::BadMagic { got } => write!(f, "bad protocol magic {got:#x}"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::Malformed(context, value) => {
                write!(f, "malformed frame: {context} ({value})")
            }
        }
    }
}

impl Error for WireError {}

// ------------------------------------------------------------ body codec

/// Little-endian body writer.
#[derive(Debug, Default)]
struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian body reader over a complete frame body.
struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Oversize { len: u64::MAX })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }
    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversize { len: len as u64 });
        }
        self.take(len)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(
                "trailing bytes after body",
                (self.buf.len() - self.pos) as u64,
            ))
        }
    }
}

// ------------------------------------------------------------- frame codec

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_REQUEST: u8 = 3;
const KIND_RESPONSE: u8 = 4;
const KIND_PING: u8 = 5;
const KIND_PONG: u8 = 6;
const KIND_DRAIN: u8 = 7;
const KIND_DRAIN_STARTED: u8 = 8;
const KIND_STATS: u8 = 9;
const KIND_STATS_REPLY: u8 = 10;

/// Encodes one frame: length prefix, kind byte, body.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut body = BodyWriter::default();
    let kind = match frame {
        Frame::Hello {
            client_id,
            tenant,
            token,
        } => {
            body.u32(MAGIC);
            body.u16(VERSION);
            body.u64(*client_id);
            body.u32(*tenant);
            body.u64(*token);
            KIND_HELLO
        }
        Frame::HelloAck { accept, epoch } => {
            body.u8(accept.to_u8());
            body.u64(*epoch);
            KIND_HELLO_ACK
        }
        Frame::Request {
            req_id,
            deadline_nanos,
            block,
            payload,
        } => {
            body.u64(*req_id);
            body.u64(*deadline_nanos);
            body.u8(u8::from(payload.is_some()));
            body.u64(*block);
            if let Some(payload) = payload {
                body.bytes(payload);
            }
            KIND_REQUEST
        }
        Frame::Response {
            req_id,
            status,
            shard,
            message,
            payload,
        } => {
            body.u64(*req_id);
            body.u16(*status);
            body.u32(*shard);
            body.bytes(message.as_bytes());
            body.bytes(payload);
            KIND_RESPONSE
        }
        Frame::Ping { nonce } => {
            body.u64(*nonce);
            KIND_PING
        }
        Frame::Pong { nonce } => {
            body.u64(*nonce);
            KIND_PONG
        }
        Frame::Drain => KIND_DRAIN,
        Frame::DrainStarted => KIND_DRAIN_STARTED,
        Frame::Stats => KIND_STATS,
        Frame::StatsReply(counters) => {
            body.u64(counters.served);
            body.u64(counters.shed_deadline);
            body.u64(counters.busy_rejects);
            body.u64(counters.queue_full_rejects);
            body.u64(counters.dedup_hits);
            body.u64(counters.shed_draining);
            body.u64(counters.connections);
            body.u8(u8::from(counters.draining));
            KIND_STATS_REPLY
        }
    };
    let body = body.buf;
    let mut out = Vec::with_capacity(5 + body.len());
    out.extend_from_slice(&(1 + body.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&body);
    out
}

/// Decodes one complete frame body (everything after the length prefix
/// and kind byte).
pub fn decode_frame(kind: u8, body: &[u8]) -> Result<Frame, WireError> {
    let mut r = BodyReader::new(body);
    let frame = match kind {
        KIND_HELLO => {
            let magic = r.u32()?;
            if magic != MAGIC {
                return Err(WireError::BadMagic { got: magic });
            }
            let version = r.u16()?;
            if version != VERSION {
                return Err(WireError::BadVersion { got: version });
            }
            Frame::Hello {
                client_id: r.u64()?,
                tenant: r.u32()?,
                token: r.u64()?,
            }
        }
        KIND_HELLO_ACK => Frame::HelloAck {
            accept: Accept::from_u8(r.u8()?)?,
            epoch: r.u64()?,
        },
        KIND_REQUEST => {
            let req_id = r.u64()?;
            let deadline_nanos = r.u64()?;
            let is_write = r.u8()?;
            let block = r.u64()?;
            let payload = match is_write {
                0 => None,
                1 => Some(r.bytes()?.to_vec()),
                other => return Err(WireError::Malformed("request op byte", other as u64)),
            };
            Frame::Request {
                req_id,
                deadline_nanos,
                block,
                payload,
            }
        }
        KIND_RESPONSE => {
            let req_id = r.u64()?;
            let status = r.u16()?;
            let shard = r.u32()?;
            let message = String::from_utf8_lossy(r.bytes()?).into_owned();
            let payload = r.bytes()?.to_vec();
            Frame::Response {
                req_id,
                status,
                shard,
                message,
                payload,
            }
        }
        KIND_PING => Frame::Ping { nonce: r.u64()? },
        KIND_PONG => Frame::Pong { nonce: r.u64()? },
        KIND_DRAIN => Frame::Drain,
        KIND_DRAIN_STARTED => Frame::DrainStarted,
        KIND_STATS => Frame::Stats,
        KIND_STATS_REPLY => Frame::StatsReply(ServerCounters {
            served: r.u64()?,
            shed_deadline: r.u64()?,
            busy_rejects: r.u64()?,
            queue_full_rejects: r.u64()?,
            dedup_hits: r.u64()?,
            shed_draining: r.u64()?,
            connections: r.u64()?,
            draining: r.u8()? != 0,
        }),
        other => return Err(WireError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(frame)
}

/// Writes one frame as a single `write_all` call — one frame, one write,
/// which is also the granularity the transport fault injector
/// ([`oram_storage::fault::FaultyConn`]) schedules on.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// What one [`FrameReader::poll`] produced.
#[derive(Debug)]
pub enum FramePoll {
    /// A complete frame.
    Frame(Frame),
    /// No complete frame yet (short read or poll timeout); call again.
    Pending,
    /// The peer closed the stream cleanly between frames.
    Closed,
}

/// Resumable frame reader: accumulates bytes across short reads and
/// bounded-timeout polls, yields complete frames, and reports a typed
/// [`WireError::Truncated`] when the peer dies mid-frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a partially received frame is pending (peer death now
    /// would be a mid-frame truncation, not a clean close).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to parse one frame out of the buffer; `Ok(None)` means more
    /// bytes are needed.
    fn try_parse(&mut self) -> Result<Option<Frame>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len == 0 {
            return Err(WireError::Malformed("zero-length frame", 0));
        }
        if len > MAX_FRAME {
            // Reject before buffering the body: the bound is enforced on
            // the prefix, not on allocation.
            return Err(WireError::Oversize { len: len as u64 });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let kind = self.buf[4];
        let frame = decode_frame(kind, &self.buf[5..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    /// Polls the stream for the next frame. Returns
    /// [`FramePoll::Pending`] on `WouldBlock`/`TimedOut` (the bounded
    /// socket timeout ticking over) and [`FramePoll::Closed`] on a clean
    /// EOF; an EOF that lands mid-frame is a typed
    /// [`WireError::Truncated`].
    ///
    /// # Errors
    ///
    /// [`WireError`] for malformed bytes (poisons the stream — redial);
    /// I/O errors other than the would-block family propagate.
    pub fn poll<R: Read>(&mut self, stream: &mut R) -> Result<FramePoll, PollError> {
        // Serve buffered frames before touching the socket, so several
        // frames arriving in one read are all delivered.
        if let Some(frame) = self.try_parse()? {
            return Ok(FramePoll::Frame(frame));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if self.mid_frame() {
                    Err(PollError::Wire(WireError::Truncated {
                        needed: 4,
                        got: self.buf.len(),
                    }))
                } else {
                    Ok(FramePoll::Closed)
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.try_parse()? {
                    Some(frame) => Ok(FramePoll::Frame(frame)),
                    None => Ok(FramePoll::Pending),
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(FramePoll::Pending)
            }
            Err(e) => Err(PollError::Io(e)),
        }
    }
}

/// Why a [`FrameReader::poll`] failed.
#[derive(Debug)]
pub enum PollError {
    /// The stream died or errored.
    Io(io::Error),
    /// The bytes are not a valid frame (stream is poisoned).
    Wire(WireError),
}

impl From<WireError> for PollError {
    fn from(e: WireError) -> Self {
        PollError::Wire(e)
    }
}

impl fmt::Display for PollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PollError::Io(e) => write!(f, "io: {e}"),
            PollError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl Error for PollError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = encode_frame(&frame);
        let len = u32::from_le_bytes([encoded[0], encoded[1], encoded[2], encoded[3]]) as usize;
        assert_eq!(len, encoded.len() - 4);
        let decoded = decode_frame(encoded[4], &encoded[5..]).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello {
            client_id: 7,
            tenant: 3,
            token: 0xdead_beef,
        });
        roundtrip(Frame::HelloAck {
            accept: Accept::Ok,
            epoch: 42,
        });
        roundtrip(Frame::HelloAck {
            accept: Accept::Draining,
            epoch: 1,
        });
        roundtrip(Frame::Request {
            req_id: 1,
            deadline_nanos: 5_000,
            block: 99,
            payload: None,
        });
        roundtrip(Frame::Request {
            req_id: 2,
            deadline_nanos: 0,
            block: 0,
            payload: Some(vec![1, 2, 3]),
        });
        roundtrip(Frame::Response {
            req_id: 9,
            status: 5,
            shard: 2,
            message: "shard 2 degraded: tag mismatch".into(),
            payload: Vec::new(),
        });
        roundtrip(Frame::Ping { nonce: 11 });
        roundtrip(Frame::Pong { nonce: 11 });
        roundtrip(Frame::Drain);
        roundtrip(Frame::DrainStarted);
        roundtrip(Frame::Stats);
        roundtrip(Frame::StatsReply(ServerCounters {
            served: 1,
            shed_deadline: 2,
            busy_rejects: 3,
            queue_full_rejects: 4,
            dedup_hits: 5,
            shed_draining: 6,
            connections: 7,
            draining: true,
        }));
    }

    #[test]
    fn oversize_prefix_is_rejected_before_buffering() {
        let mut reader = FrameReader::new();
        let mut bytes: &[u8] = &(MAX_FRAME as u32 + 1).to_le_bytes();
        let err = reader.poll(&mut bytes).unwrap_err();
        assert!(matches!(err, PollError::Wire(WireError::Oversize { .. })));
    }

    #[test]
    fn truncation_at_every_byte_is_pending_then_typed_on_eof() {
        let encoded = encode_frame(&Frame::Request {
            req_id: 3,
            deadline_nanos: 0,
            block: 17,
            payload: Some(vec![9u8; 16]),
        });
        for cut in 1..encoded.len() {
            let mut reader = FrameReader::new();
            let mut partial: &[u8] = &encoded[..cut];
            // Feeding the prefix: never a frame, never a crash.
            match reader.poll(&mut partial) {
                Ok(FramePoll::Pending) => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
            // EOF mid-frame is a typed truncation.
            let mut eof: &[u8] = &[];
            match reader.poll(&mut eof) {
                Ok(FramePoll::Pending) if reader.mid_frame() => {
                    // A cut inside the length prefix still counts as
                    // mid-frame; poll again to surface the truncation.
                    match reader.poll(&mut eof) {
                        Err(PollError::Wire(WireError::Truncated { .. })) => {}
                        other => panic!("cut at {cut}: expected truncation, got {other:?}"),
                    }
                }
                Err(PollError::Wire(WireError::Truncated { .. })) => {}
                other => panic!("cut at {cut}: expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn pipelined_frames_in_one_read_all_surface() {
        let mut bytes = encode_frame(&Frame::Ping { nonce: 1 });
        bytes.extend(encode_frame(&Frame::Ping { nonce: 2 }));
        bytes.extend(encode_frame(&Frame::Drain));
        let mut reader = FrameReader::new();
        let mut stream: &[u8] = &bytes;
        let mut got = Vec::new();
        loop {
            match reader.poll(&mut stream).expect("valid stream") {
                FramePoll::Frame(frame) => got.push(frame),
                FramePoll::Closed => break,
                FramePoll::Pending => {}
            }
        }
        assert_eq!(
            got,
            vec![
                Frame::Ping { nonce: 1 },
                Frame::Ping { nonce: 2 },
                Frame::Drain
            ]
        );
    }

    #[test]
    fn unknown_kind_is_typed() {
        let err = decode_frame(200, &[]).unwrap_err();
        assert_eq!(err, WireError::UnknownKind(200));
    }

    #[test]
    fn hello_checks_magic_and_version() {
        let mut body = Vec::new();
        body.extend_from_slice(&0x0BAD_0BAD_u32.to_le_bytes());
        body.extend_from_slice(&VERSION.to_le_bytes());
        body.extend_from_slice(&[0u8; 20]);
        assert!(matches!(
            decode_frame(KIND_HELLO, &body),
            Err(WireError::BadMagic { .. })
        ));

        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.extend_from_slice(&999u16.to_le_bytes());
        body.extend_from_slice(&[0u8; 20]);
        assert!(matches!(
            decode_frame(KIND_HELLO, &body),
            Err(WireError::BadVersion { got: 999 })
        ));
    }

    #[test]
    fn trailing_garbage_is_typed() {
        let mut encoded = encode_frame(&Frame::Ping { nonce: 4 });
        // Corrupt: lengthen the body without updating the prefix's view.
        encoded.extend_from_slice(&[0xFF; 3]);
        let len = (encoded.len() - 4) as u32;
        encoded[..4].copy_from_slice(&len.to_le_bytes());
        let err = decode_frame(encoded[4], &encoded[5..]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Malformed("trailing bytes after body", 3)
        ));
    }
}

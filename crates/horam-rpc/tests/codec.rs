//! Property tests over the wire codec: arbitrary frames roundtrip,
//! arbitrary bytes never panic the decoder, truncation and oversize are
//! always typed.

use horam_rpc::wire::{
    decode_frame, encode_frame, Accept, Frame, FramePoll, FrameReader, PollError, ServerCounters,
    WireError, MAX_FRAME,
};
use proptest::prelude::*;

fn arb_accept() -> impl Strategy<Value = Accept> {
    prop_oneof![
        Just(Accept::Ok),
        Just(Accept::Busy),
        Just(Accept::Draining),
        Just(Accept::AuthFailed),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(client_id, tenant, token)| {
            Frame::Hello {
                client_id,
                tenant,
                token,
            }
        }),
        (arb_accept(), any::<u64>()).prop_map(|(accept, epoch)| Frame::HelloAck { accept, epoch }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..128)),
        )
            .prop_map(|(req_id, deadline_nanos, block, payload)| Frame::Request {
                req_id,
                deadline_nanos,
                block,
                payload,
            }),
        (
            (any::<u64>(), any::<u16>(), any::<u32>()),
            proptest::collection::vec(32u8..127, 0..64),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(
                |((req_id, status, shard), message, payload)| Frame::Response {
                    req_id,
                    status,
                    shard,
                    message: String::from_utf8(message).expect("printable ascii"),
                    payload,
                }
            ),
        any::<u64>().prop_map(|nonce| Frame::Ping { nonce }),
        any::<u64>().prop_map(|nonce| Frame::Pong { nonce }),
        Just(Frame::Drain),
        Just(Frame::DrainStarted),
        Just(Frame::Stats),
        (any::<[u64; 7]>(), any::<bool>()).prop_map(|(v, draining)| {
            Frame::StatsReply(ServerCounters {
                served: v[0],
                shed_deadline: v[1],
                busy_rejects: v[2],
                queue_full_rejects: v[3],
                dedup_hits: v[4],
                shed_draining: v[5],
                connections: v[6],
                draining,
            })
        }),
    ]
}

proptest! {
    /// Any frame encodes, decodes back to itself, and the length prefix
    /// is exact.
    #[test]
    fn roundtrip(frame in arb_frame()) {
        let encoded = encode_frame(&frame);
        prop_assert!(encoded.len() >= 5);
        let len = u32::from_le_bytes([encoded[0], encoded[1], encoded[2], encoded[3]]) as usize;
        prop_assert_eq!(len, encoded.len() - 4);
        prop_assert!(len <= MAX_FRAME);
        let decoded = decode_frame(encoded[4], &encoded[5..]);
        prop_assert_eq!(decoded.expect("well-formed frame decodes"), frame);
    }

    /// Feeding any frame one byte at a time through the resumable reader
    /// yields exactly that frame, with `Pending` for every prefix.
    #[test]
    fn byte_at_a_time_reassembly(frame in arb_frame()) {
        let encoded = encode_frame(&frame);
        let mut reader = FrameReader::new();
        let mut produced = None;
        for (i, byte) in encoded.iter().enumerate() {
            let mut one: &[u8] = std::slice::from_ref(byte);
            match reader.poll(&mut one) {
                Ok(FramePoll::Frame(got)) => {
                    prop_assert_eq!(i, encoded.len() - 1, "frame before final byte");
                    produced = Some(got);
                }
                Ok(FramePoll::Pending) => prop_assert!(i < encoded.len() - 1),
                other => prop_assert!(false, "unexpected poll result {:?}", other),
            }
        }
        prop_assert_eq!(produced.expect("frame produced"), frame);
    }

    /// Truncating a frame at any boundary then closing the stream gives
    /// a typed truncation error — never a hang, never a panic, never a
    /// bogus frame.
    #[test]
    fn truncation_is_typed(frame in arb_frame(), cut_seed in any::<u64>()) {
        let encoded = encode_frame(&frame);
        let cut = 1 + (cut_seed as usize) % (encoded.len() - 1);
        let mut reader = FrameReader::new();
        let mut partial: &[u8] = &encoded[..cut];
        match reader.poll(&mut partial) {
            Ok(FramePoll::Pending) => {}
            other => {
                prop_assert!(false, "prefix produced {:?}", other);
            }
        }
        // Simulated peer death: EOF with a partial frame buffered.
        let mut eof: &[u8] = &[];
        let mut saw_truncation = false;
        for _ in 0..2 {
            match reader.poll(&mut eof) {
                Err(PollError::Wire(WireError::Truncated { .. })) => {
                    saw_truncation = true;
                    break;
                }
                Ok(FramePoll::Pending) => {}
                other => {
                    prop_assert!(false, "eof produced {:?}", other);
                }
            }
        }
        prop_assert!(saw_truncation);
    }

    /// Arbitrary garbage never panics the decoder: every poll outcome is
    /// a frame, pending, clean close, or a typed error.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = FrameReader::new();
        let mut stream: &[u8] = &bytes;
        for _ in 0..(bytes.len() + 2) {
            match reader.poll(&mut stream) {
                Ok(FramePoll::Frame(_)) | Ok(FramePoll::Pending) => {}
                Ok(FramePoll::Closed) | Err(_) => break,
            }
        }
    }

    /// A length prefix beyond the bound is rejected as `Oversize` before
    /// any body is buffered.
    #[test]
    fn oversize_is_typed(excess in 1u64..u32::MAX as u64 - MAX_FRAME as u64) {
        let len = (MAX_FRAME as u64 + excess) as u32;
        let mut reader = FrameReader::new();
        let mut bytes: &[u8] = &len.to_le_bytes();
        match reader.poll(&mut bytes) {
            Err(PollError::Wire(WireError::Oversize { len: got })) => {
                prop_assert_eq!(got, len as u64);
            }
            other => prop_assert!(false, "got {:?}", other),
        }
    }
}

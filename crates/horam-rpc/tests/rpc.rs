//! End-to-end failure battery for the RPC layer: real sockets, real
//! threads, seeded transport chaos.
//!
//! The invariants under test, in rough order of appearance:
//!
//! * RPC results are byte-identical to the in-process service on the
//!   same schedule.
//! * A client dying mid-frame (or speaking garbage) never harms other
//!   connections.
//! * Deadlines, backpressure, and auth failures all resolve typed.
//! * Drain → checkpoint → restore → the restarted server still answers
//!   retries of pre-restart work from its idempotency window.
//! * Under seeded `FaultyConn` chaos every call resolves to a typed
//!   error or a correct response, writes are never duplicated, and two
//!   identically-seeded runs end byte-identical.

use horam_core::access_control::Permission;
use horam_core::config::HOramConfig;
use horam_core::multi_user::UserId;
use horam_core::shard::{ShardedConfig, ShardedOram};
use horam_rpc::server::{run_server, Checkpoint, ServerConfig, ServerError, ServerOutcome};
use horam_rpc::status;
use horam_rpc::wire::{encode_frame, Frame, FramePoll, FrameReader};
use horam_rpc::{Accept, ClientConfig, Endpoint, Listener, RpcClient, RpcError};
use horam_server::service::{OramService, ServiceConfig};
use horam_server::FifoPolicy;
use oram_crypto::keys::MasterKey;
use oram_protocols::types::Request;
use oram_storage::fault::{ConnFaultConfig, ConnFaultPlan};
use oram_storage::hierarchy::MemoryHierarchy;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CAPACITY: u64 = 256;
const PAYLOAD_LEN: usize = 8;
const MEMORY_SLOTS: u64 = 64;
const SHARDS: u64 = 2;
const TENANTS: u32 = 2;
const ENGINE_SEED: u64 = 1;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        batch_size: 8,
        ..ServiceConfig::default()
    }
}

/// A deterministic `PAYLOAD_LEN`-byte payload for `tag`.
fn payload(tag: u64) -> Vec<u8> {
    tag.to_le_bytes().to_vec()
}

/// Builds the canonical test service — fresh, or restored from a drain
/// checkpoint's engine snapshot. Identical construction is what makes
/// the in-process-vs-RPC and run-twice comparisons byte-exact.
fn make_service(snapshot: Option<&[u8]>) -> OramService<ShardedOram> {
    let config = service_config();
    let base = config
        .engine_config(HOramConfig::new(CAPACITY, PAYLOAD_LEN, MEMORY_SLOTS))
        .with_seed(ENGINE_SEED);
    let master = MasterKey::from_bytes([0xA7; 32]);
    let oram = match snapshot {
        Some(bytes) => ShardedOram::restore(master, |_| MemoryHierarchy::dac2019(), bytes)
            .expect("snapshot restores"),
        None => ShardedOram::new(ShardedConfig::new(base, SHARDS), master, |_| {
            MemoryHierarchy::dac2019()
        })
        .expect("engine builds"),
    };
    let mut service = OramService::new(oram, Box::new(FifoPolicy), config);
    let per_tenant = CAPACITY / u64::from(TENANTS);
    for tenant in 0..TENANTS {
        let start = u64::from(tenant) * per_tenant;
        service.register_tenant(
            UserId(tenant),
            start..start + per_tenant,
            Permission::ReadWrite,
        );
    }
    service
}

struct Server {
    endpoint: Endpoint,
    drain: Arc<std::sync::atomic::AtomicBool>,
    join: thread::JoinHandle<(Result<ServerOutcome, ServerError>, OramService<ShardedOram>)>,
}

/// Binds `endpoint` (port 0 for an ephemeral TCP port), then runs the
/// server on its own thread. The service crosses into the thread and
/// comes back through the join handle after drain.
fn spawn_server(
    service: OramService<ShardedOram>,
    config: ServerConfig,
    endpoint: &Endpoint,
) -> Server {
    let listener = Listener::bind(endpoint).expect("bind");
    let endpoint = listener.local_endpoint().expect("local endpoint");
    let drain = Arc::clone(&config.drain);
    let join = thread::spawn(move || {
        let mut service = service;
        let outcome = run_server(&mut service, &listener, &config);
        (outcome, service)
    });
    Server {
        endpoint,
        drain,
        join,
    }
}

impl Server {
    /// Raises the drain flag (the in-process SIGTERM) and waits for the
    /// graceful exit.
    fn drain_join(self) -> (ServerOutcome, OramService<ShardedOram>) {
        self.drain.store(true, Ordering::Release);
        let (outcome, service) = self.join.join().expect("server thread");
        (outcome.expect("graceful drain"), service)
    }
}

fn tcp() -> Endpoint {
    Endpoint::Tcp("127.0.0.1:0".into())
}

/// A client tuned for fast tests: aggressive resends, tiny backoff, a
/// generous redial budget under one wide call deadline.
fn client(endpoint: &Endpoint, client_id: u64, tenant: u32) -> RpcClient {
    let mut config = ClientConfig::new(endpoint.clone(), client_id, tenant);
    config.resend_after = Duration::from_millis(50);
    config.backoff = Duration::from_millis(2);
    config.call_deadline = Duration::from_secs(30);
    config.max_redials = 500;
    RpcClient::new(config)
}

/// Reads one complete frame from a raw socket, bounded.
fn read_frame_raw(stream: &mut TcpStream, reader: &mut FrameReader) -> Frame {
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("read timeout");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match reader.poll(stream) {
            Ok(FramePoll::Frame(frame)) => return frame,
            Ok(FramePoll::Pending) => assert!(Instant::now() < deadline, "no frame within 10s"),
            other => panic!("raw read: unexpected {other:?}"),
        }
    }
}

/// The same mixed read/write schedule, run over RPC and in-process
/// against identically-built engines, must produce byte-identical
/// results — the network layer adds failure semantics, not semantics.
#[test]
fn rpc_matches_in_process_byte_for_byte() {
    // Same blocks revisited so write-returns-previous actually chains.
    let schedule: Vec<(u64, Option<Vec<u8>>)> = (0..48u64)
        .map(|i| {
            let block = (i * 7) % 16;
            if i % 3 == 0 {
                (block, Some(payload(1_000 + i)))
            } else {
                (block, None)
            }
        })
        .collect();

    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let mut rpc = client(&server.endpoint, 11, 0);
    let mut remote = Vec::new();
    for (block, write) in &schedule {
        let result = match write {
            Some(bytes) => rpc.write(*block, bytes.clone()),
            None => rpc.read(*block),
        };
        remote.push(result.expect("op resolves"));
    }

    // A pipelined batch over distinct blocks exercises the same path the
    // bench gate uses; every op must land.
    let batch: Vec<(u64, Option<Vec<u8>>)> = (32..64u64).map(|b| (b, Some(payload(b)))).collect();
    let batched = rpc.call_many(batch).expect("batch resolves");
    assert_eq!(batched.len(), 32);
    for result in &batched {
        assert_eq!(result.as_deref().expect("batched op"), &[0u8; PAYLOAD_LEN]);
    }

    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, 48 + 32);

    let mut local_service = make_service(None);
    let mut local = Vec::new();
    for (block, write) in &schedule {
        let request = match write {
            Some(bytes) => Request::write(*block, bytes.clone()),
            None => Request::read(*block),
        };
        let ticket = local_service
            .submit(UserId(0), request)
            .expect("local submit");
        local.push(
            local_service
                .take_result_timeout(ticket, 10_000)
                .expect("local resolve"),
        );
    }
    assert_eq!(remote, local, "RPC and in-process results diverge");
}

/// Two clients on different tenants with disjoint grants serve
/// concurrently; every op lands and the read-back matches the writes.
#[test]
fn concurrent_tenants_are_isolated() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let endpoint = server.endpoint.clone();
    let per_tenant = CAPACITY / u64::from(TENANTS);

    let workers: Vec<_> = (0..TENANTS)
        .map(|tenant| {
            let endpoint = endpoint.clone();
            thread::spawn(move || {
                let base = u64::from(tenant) * per_tenant;
                let mut c = client(&endpoint, 100 + u64::from(tenant), tenant);
                let ops: Vec<(u64, Option<Vec<u8>>)> = (0..24u64)
                    .map(|i| (base + i, Some(payload(u64::from(tenant) * 10_000 + i))))
                    .collect();
                for result in c.call_many(ops).expect("write batch") {
                    result.expect("write lands");
                }
                for i in 0..24u64 {
                    assert_eq!(
                        c.read(base + i).expect("read back"),
                        payload(u64::from(tenant) * 10_000 + i),
                        "tenant {tenant} block {i}"
                    );
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("tenant worker");
    }

    // Out-of-grant access resolves typed, not silently.
    let mut trespasser = client(&endpoint, 200, 0);
    match trespasser.read(CAPACITY - 1) {
        Err(RpcError::Status { code, .. }) => assert_eq!(code, status::DENIED),
        other => panic!("cross-tenant read: {other:?}"),
    }

    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, u64::from(TENANTS) * 48);
}

/// A client that dies mid-frame — and another that speaks garbage —
/// leave the server fully healthy for everyone else.
#[test]
fn killed_and_garbage_clients_do_not_harm_the_server() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let addr = match &server.endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("expected tcp endpoint, got {other}"),
    };

    // Handshake fine, then half a Request frame, then death.
    {
        let mut raw = TcpStream::connect(addr.as_str()).expect("raw connect");
        raw.write_all(&encode_frame(&Frame::Hello {
            client_id: 666,
            tenant: 0,
            token: 0,
        }))
        .expect("raw hello");
        let mut reader = FrameReader::new();
        match read_frame_raw(&mut raw, &mut reader) {
            Frame::HelloAck {
                accept: Accept::Ok, ..
            } => {}
            other => panic!("handshake: {other:?}"),
        }
        let frame = encode_frame(&Frame::Request {
            req_id: 1,
            deadline_nanos: 0,
            block: 0,
            payload: None,
        });
        raw.write_all(&frame[..frame.len() / 2])
            .expect("half frame");
        // Dropped here: the server holds a partial frame and gets EOF.
    }

    // Garbage before the handshake.
    {
        let mut raw = TcpStream::connect(addr.as_str()).expect("raw connect");
        raw.write_all(&[0x02, 0x00, 0x00, 0x00, 0xEE, 0xEE])
            .expect("garbage");
    }

    // A well-behaved client is unaffected.
    let mut c = client(&server.endpoint, 1, 0);
    assert_eq!(
        c.write(3, payload(42)).expect("write"),
        vec![0u8; PAYLOAD_LEN]
    );
    assert_eq!(c.read(3).expect("read"), payload(42));
    c.ping().expect("ping");

    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, 2);
    assert!(outcome.counters.connections >= 3);
}

/// An impossible server-side deadline sheds the request typed, before
/// the engine sees it.
#[test]
fn expired_deadline_is_shed_typed() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let mut config = ClientConfig::new(server.endpoint.clone(), 5, 0);
    config.server_deadline = Some(Duration::from_nanos(1));
    let mut c = RpcClient::new(config);
    match c.read(3) {
        Err(RpcError::Status { code, .. }) => assert_eq!(code, status::DEADLINE_EXPIRED),
        other => panic!("expected typed deadline shed, got {other:?}"),
    }
    let (outcome, _service) = server.drain_join();
    assert!(outcome.counters.shed_deadline >= 1);
    assert_eq!(outcome.counters.served, 0, "shed work must not execute");
}

/// With the in-flight bound pinned to 1, a pipelined batch is throttled
/// with typed `BUSY` sheds — and still lands completely through the
/// client's backoff ladder.
#[test]
fn busy_backpressure_resolves_through_retries() {
    let config = ServerConfig {
        max_inflight: 1,
        ..ServerConfig::default()
    };
    let server = spawn_server(make_service(None), config, &tcp());
    let mut c = client(&server.endpoint, 9, 0);
    let ops: Vec<(u64, Option<Vec<u8>>)> = (0..16u64).map(|b| (b, Some(payload(b)))).collect();
    for result in c.call_many(ops).expect("batch resolves") {
        result.expect("op lands despite backpressure");
    }
    assert!(c.client_stats().backoffs > 0, "no backoff ever taken");
    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, 16);
    assert!(outcome.counters.busy_rejects > 0, "bound never enforced");
}

/// A token mismatch is refused at the handshake, typed; the right token
/// sails through.
#[test]
fn auth_failure_is_typed() {
    let config = ServerConfig {
        token: Some(0xC0FFEE),
        ..ServerConfig::default()
    };
    let server = spawn_server(make_service(None), config, &tcp());

    let mut bad = ClientConfig::new(server.endpoint.clone(), 1, 0);
    bad.token = 1; // wrong
    bad.max_redials = 0;
    match RpcClient::new(bad).ping() {
        Err(RpcError::Rejected {
            accept: Accept::AuthFailed,
        }) => {}
        other => panic!("expected AuthFailed, got {other:?}"),
    }

    let mut config = ClientConfig::new(server.endpoint.clone(), 2, 0);
    config.token = 0xC0FFEE;
    let mut good = RpcClient::new(config);
    good.ping().expect("authorized ping");
    let (_outcome, _service) = server.drain_join();
}

/// A client that resends a request whose response it never saw gets the
/// *original* outcome replayed from the idempotency window — the write
/// is not applied twice. Deterministic: raw socket, explicit resend.
#[test]
fn resent_request_replays_original_outcome() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let addr = match &server.endpoint {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("expected tcp endpoint, got {other}"),
    };
    let mut raw = TcpStream::connect(addr.as_str()).expect("connect");
    let mut reader = FrameReader::new();
    raw.write_all(&encode_frame(&Frame::Hello {
        client_id: 77,
        tenant: 0,
        token: 0,
    }))
    .expect("hello");
    match read_frame_raw(&mut raw, &mut reader) {
        Frame::HelloAck {
            accept: Accept::Ok, ..
        } => {}
        other => panic!("handshake: {other:?}"),
    }

    let request = encode_frame(&Frame::Request {
        req_id: 1,
        deadline_nanos: 0,
        block: 2,
        payload: Some(payload(555)),
    });
    raw.write_all(&request).expect("first send");
    let first = read_frame_raw(&mut raw, &mut reader);
    match &first {
        Frame::Response {
            status: code,
            payload,
            ..
        } => {
            assert_eq!(*code, status::OK);
            assert_eq!(payload, &vec![0u8; PAYLOAD_LEN], "previous bytes");
        }
        other => panic!("first response: {other:?}"),
    }

    // Byte-identical resend of the same req_id: the pretend-lost-response
    // retry. A re-execution would return previous = payload(555).
    raw.write_all(&request).expect("resend");
    let second = read_frame_raw(&mut raw, &mut reader);
    assert_eq!(second, first, "resend must replay the cached outcome");

    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, 1, "executed exactly once");
    assert_eq!(outcome.counters.dedup_hits, 1);
}

/// Drain → checkpoint → restore on a fresh server: data survives, the
/// epoch advances under a transparently-redialing client, and the
/// restored idempotency window still answers pre-restart retries
/// without re-executing them. Runs over a Unix socket (doubling as the
/// unix transport smoke test — and sidestepping TCP TIME_WAIT on
/// rebinding the same address).
#[test]
fn drain_checkpoint_restore_replays_across_restart() {
    let dir = std::env::temp_dir().join(format!("horam-rpc-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let endpoint = Endpoint::Unix(dir.join("restart.sock"));

    let server = spawn_server(make_service(None), ServerConfig::default(), &endpoint);
    let mut c = client(&endpoint, 7, 0);
    for i in 0..8u64 {
        assert_eq!(
            c.write(i, payload(100 + i)).expect("pre-drain write"),
            vec![0u8; PAYLOAD_LEN]
        );
    }
    assert_eq!(c.epoch(), Some(0));
    let (outcome, _service) = server.drain_join();
    assert_eq!(outcome.counters.served, 8);

    // The checkpoint file format roundtrips exactly.
    let reparsed = Checkpoint::from_bytes(&outcome.checkpoint.to_bytes()).expect("reparse");
    assert_eq!(reparsed, outcome.checkpoint);

    let restored = make_service(Some(&outcome.checkpoint.snapshot));
    let config = ServerConfig {
        epoch: outcome.checkpoint.epoch + 1,
        preload_window: outcome.checkpoint.window.clone(),
        ..ServerConfig::default()
    };
    let server = spawn_server(restored, config, &endpoint);

    // The same client redials transparently and sees its data — and the
    // new epoch.
    for i in 0..8u64 {
        assert_eq!(c.read(i).expect("post-restart read"), payload(100 + i));
    }
    assert_eq!(c.epoch(), Some(1), "restart must be observable");

    // A retry of pre-restart work: same client identity, same req_id 1
    // (the first write), now carrying a *different* payload. The window
    // preloaded from the checkpoint must replay the original outcome —
    // previous bytes all-zero — and must not execute the new write.
    let mut retry = client(&endpoint, 7, 0);
    assert_eq!(
        retry.write(0, payload(999)).expect("replayed retry"),
        vec![0u8; PAYLOAD_LEN],
        "window replay must return the original previous-bytes"
    );
    let mut probe = client(&endpoint, 8, 0);
    assert_eq!(
        probe.read(0).expect("probe read"),
        payload(100),
        "the retried write must not have re-executed"
    );

    let (outcome, _service) = server.drain_join();
    assert!(outcome.counters.dedup_hits >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under seeded frame drops, truncations, and disconnects, a chain of
/// writes to one block still applies exactly once each: every write's
/// returned previous-bytes is exactly the prior write's payload.
#[test]
fn chaos_chain_never_duplicates_a_write() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let plan = ConnFaultPlan::shared(ConnFaultConfig {
        seed: 0xFA_17,
        drop_permille: 120,
        truncate_permille: 60,
        disconnect_permille: 60,
        delay_permille: 0,
        delay_micros: 0,
    });
    let mut config = ClientConfig::new(server.endpoint.clone(), 21, 0);
    config.fault_plan = Some(Arc::clone(&plan));
    config.resend_after = Duration::from_millis(40);
    config.backoff = Duration::from_millis(2);
    config.call_deadline = Duration::from_secs(30);
    config.max_redials = 500;
    let mut c = RpcClient::new(config);

    let block = 5u64;
    let mut expected_prev = vec![0u8; PAYLOAD_LEN];
    for i in 0..40u64 {
        let next = payload(7_000 + i);
        let prev = c.write(block, next.clone()).expect("write resolves");
        assert_eq!(
            prev, expected_prev,
            "write {i}: previous-bytes chain broken — a write was duplicated or lost"
        );
        expected_prev = next;
    }

    let stats = plan.lock().expect("plan lock").stats();
    assert!(
        stats.dropped + stats.truncated + stats.disconnects > 0,
        "chaos schedule never fired — the test proved nothing"
    );
    let client_stats = c.client_stats();
    assert!(
        client_stats.dials > 1 || client_stats.resends > 0,
        "retry ladder never exercised"
    );
    let (outcome, _service) = server.drain_join();
    assert_eq!(
        outcome.counters.served, 40,
        "each write executed exactly once"
    );
}

/// Everything a chaos run observes: per-op outcomes (payload or wire
/// status), the final tenant-range read-back, and the served count.
type ChaosObservation = (Vec<Result<Vec<u8>, u16>>, Vec<Vec<u8>>, u64);

/// One full chaos run: seeded faults, mixed schedule, then a clean
/// read-back of the whole tenant range.
fn chaos_run(fault_seed: u64) -> ChaosObservation {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let plan = ConnFaultPlan::shared(ConnFaultConfig {
        seed: fault_seed,
        drop_permille: 80,
        truncate_permille: 40,
        disconnect_permille: 40,
        delay_permille: 0,
        delay_micros: 0,
    });
    let mut config = ClientConfig::new(server.endpoint.clone(), 31, 1);
    config.fault_plan = Some(plan);
    config.resend_after = Duration::from_millis(40);
    config.backoff = Duration::from_millis(2);
    config.call_deadline = Duration::from_secs(30);
    config.max_redials = 500;
    let mut c = RpcClient::new(config);

    let base = CAPACITY / u64::from(TENANTS); // tenant 1's range start
    let mut outcomes = Vec::new();
    for i in 0..30u64 {
        let block = base + (i * 11) % 32;
        let result = if i % 2 == 0 {
            c.write(block, payload(i))
        } else {
            c.read(block)
        };
        outcomes.push(result.map_err(|error| match error {
            RpcError::Status { code, .. } => code,
            other => panic!("transport failure escaped the retry ladder: {other}"),
        }));
    }

    // Clean (fault-free) client reads the whole range back.
    let mut probe = client(&server.endpoint, 32, 1);
    let readback: Vec<Vec<u8>> = (base..base + 32)
        .map(|block| probe.read(block).expect("probe read"))
        .collect();
    let (outcome, _service) = server.drain_join();
    (outcomes, readback, outcome.counters.served)
}

/// Two runs with identical seeds — engine and fault schedule — finish
/// with identical per-op outcomes, identical final state, and identical
/// executed-request counts, no matter how the retry timing wobbled in
/// between.
#[test]
fn seeded_chaos_runs_are_deterministic() {
    let first = chaos_run(0xD5EED);
    let second = chaos_run(0xD5EED);
    assert_eq!(first.0, second.0, "per-op outcomes diverged");
    assert_eq!(first.1, second.1, "final state diverged");
    assert_eq!(first.2, second.2, "executed-request counts diverged");
}

/// Draining mid-load sheds the stragglers typed (`SHUTTING_DOWN`) and
/// executes everything admitted — never a half-applied request at the
/// checkpoint boundary.
#[test]
fn drain_under_load_sheds_typed_and_checkpoints() {
    let server = spawn_server(make_service(None), ServerConfig::default(), &tcp());
    let endpoint = server.endpoint.clone();
    let drain = Arc::clone(&server.drain);

    let pusher = thread::spawn(move || {
        let mut config = ClientConfig::new(endpoint, 55, 0);
        config.call_deadline = Duration::from_secs(10);
        config.max_redials = 0;
        let mut c = RpcClient::new(config);
        let mut landed = 0u64;
        let mut shed = 0u64;
        for i in 0..200u64 {
            match c.write(i % 16, payload(3_000 + i)) {
                Ok(_) => landed += 1,
                Err(RpcError::Status { code, .. }) if code == status::SHUTTING_DOWN => shed += 1,
                // Once the server is gone the connection just dies.
                Err(_) => break,
            }
            if i == 20 {
                drain.store(true, Ordering::Release);
            }
        }
        (landed, shed)
    });

    let (landed, _shed) = pusher.join().expect("pusher");
    let (outcome, _service) = server.drain_join();
    assert!(landed >= 21, "writes before the drain flag must land");
    assert_eq!(
        outcome.counters.served, landed,
        "every executed request was answered; everything else was shed typed"
    );
}

//! Pluggable admission policies for the serving layer.
//!
//! Each [`OramService::pump`](crate::service::OramService::pump) builds
//! one oblivious batch. The *admission policy* decides which queued
//! requests fill it: the service snapshots every tenant's pending queue
//! (in per-tenant FIFO order) and the policy returns the interleaving —
//! a sequence of tenant ids, each occurrence popping one request from
//! that tenant's queue front. Popping only from queue fronts means *no
//! policy can reorder a single tenant's requests*, so per-tenant
//! read-your-writes ordering holds under every policy.
//!
//! Three policies ship:
//!
//! * [`FifoPolicy`] — global arrival order; simplest, but a hot tenant
//!   can starve everyone behind it;
//! * [`FairSharePolicy`] — round-robin across tenants with pending work
//!   (the arrival order §5.3.2's discussion assumes), with a rotating
//!   start so no tenant is structurally favoured;
//! * [`DeadlinePolicy`] — earliest-deadline-first over the per-request
//!   deadlines assigned at submit time, arrival order as tie-break.

use horam_core::multi_user::UserId;
use std::fmt;

/// One queued request as the policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedSnapshot {
    /// The owning tenant.
    pub tenant: UserId,
    /// Global arrival sequence number (monotone across tenants).
    pub arrival_seq: u64,
    /// Absolute deadline in arrival-sequence units, if the tenant was
    /// registered with a deadline budget.
    pub deadline: Option<u64>,
    /// Position within the tenant's queue (0 = front).
    pub position: usize,
}

/// Decides which queued requests fill the next batch.
///
/// Implementations return a sequence of tenant ids of length at most
/// `batch_size`; each occurrence admits the request at that tenant's
/// queue front (at the time of the pop). Returning a tenant more often
/// than it has queued requests is tolerated — excess pops are skipped.
pub trait AdmissionPolicy: fmt::Debug + Send {
    /// A short display name for reports.
    fn name(&self) -> &'static str;

    /// Plans the interleaving for one batch.
    fn plan_batch(&mut self, queued: &[QueuedSnapshot], batch_size: usize) -> Vec<UserId>;
}

/// Global first-in-first-out admission.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl AdmissionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn plan_batch(&mut self, queued: &[QueuedSnapshot], batch_size: usize) -> Vec<UserId> {
        let mut by_arrival: Vec<&QueuedSnapshot> = queued.iter().collect();
        by_arrival.sort_by_key(|entry| entry.arrival_seq);
        by_arrival
            .iter()
            .take(batch_size)
            .map(|entry| entry.tenant)
            .collect()
    }
}

/// Round-robin across tenants with pending work.
///
/// The starting tenant rotates every batch, so when the batch size does
/// not divide evenly across tenants the extra slot moves around instead
/// of always favouring the lowest tenant id.
#[derive(Debug, Default)]
pub struct FairSharePolicy {
    rotation: usize,
}

impl AdmissionPolicy for FairSharePolicy {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn plan_batch(&mut self, queued: &[QueuedSnapshot], batch_size: usize) -> Vec<UserId> {
        // One pass: per-tenant occupancy, tenants in ascending order
        // (BTreeMap iteration).
        let mut occupancy = std::collections::BTreeMap::new();
        for entry in queued {
            *occupancy.entry(entry.tenant).or_insert(0usize) += 1;
        }
        if occupancy.is_empty() {
            return Vec::new();
        }
        let (tenants, mut remaining): (Vec<UserId>, Vec<usize>) = occupancy.into_iter().unzip();

        let start = self.rotation % tenants.len();
        self.rotation = self.rotation.wrapping_add(1);

        let mut total: usize = remaining.iter().sum();
        let mut plan = Vec::with_capacity(batch_size);
        let mut idx = start;
        while plan.len() < batch_size && total > 0 {
            if remaining[idx] > 0 {
                remaining[idx] -= 1;
                total -= 1;
                plan.push(tenants[idx]);
            }
            idx = (idx + 1) % tenants.len();
        }
        plan
    }
}

/// Earliest-deadline-first admission.
///
/// Requests from tenants registered without a deadline budget sort last
/// (deadline = ∞) and fall back to arrival order among themselves.
#[derive(Debug, Default)]
pub struct DeadlinePolicy;

impl AdmissionPolicy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "deadline"
    }

    fn plan_batch(&mut self, queued: &[QueuedSnapshot], batch_size: usize) -> Vec<UserId> {
        let mut by_deadline: Vec<&QueuedSnapshot> = queued.iter().collect();
        by_deadline.sort_by_key(|entry| (entry.deadline.unwrap_or(u64::MAX), entry.arrival_seq));
        by_deadline
            .iter()
            .take(batch_size)
            .map(|entry| entry.tenant)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(tenant: u32, arrival: u64, deadline: Option<u64>) -> QueuedSnapshot {
        QueuedSnapshot {
            tenant: UserId(tenant),
            arrival_seq: arrival,
            deadline,
            position: 0,
        }
    }

    #[test]
    fn fifo_follows_arrival_order() {
        let queued = vec![
            snap(1, 5, None),
            snap(0, 2, None),
            snap(1, 3, None),
            snap(2, 4, None),
        ];
        let plan = FifoPolicy.plan_batch(&queued, 3);
        assert_eq!(plan, vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn fair_share_interleaves_a_hot_tenant() {
        // Tenant 0 has 6 queued, tenants 1 and 2 have 2 each.
        let mut queued = Vec::new();
        for i in 0..6 {
            queued.push(snap(0, i, None));
        }
        queued.push(snap(1, 6, None));
        queued.push(snap(1, 7, None));
        queued.push(snap(2, 8, None));
        queued.push(snap(2, 9, None));

        let mut policy = FairSharePolicy::default();
        let plan = policy.plan_batch(&queued, 6);
        let hot = plan.iter().filter(|t| **t == UserId(0)).count();
        assert_eq!(plan.len(), 6);
        assert!(hot <= 2, "hot tenant took {hot}/6 slots under fair share");
        assert_eq!(plan.iter().filter(|t| **t == UserId(1)).count(), 2);
        assert_eq!(plan.iter().filter(|t| **t == UserId(2)).count(), 2);
    }

    #[test]
    fn fair_share_rotates_the_extra_slot() {
        let queued = vec![
            snap(0, 0, None),
            snap(0, 1, None),
            snap(1, 2, None),
            snap(1, 3, None),
        ];
        let mut policy = FairSharePolicy::default();
        let first = policy.plan_batch(&queued, 3);
        let second = policy.plan_batch(&queued, 3);
        let extra_first = first.iter().filter(|t| **t == UserId(0)).count();
        let extra_second = second.iter().filter(|t| **t == UserId(0)).count();
        assert_ne!(extra_first, extra_second, "rotation moves the odd slot");
    }

    #[test]
    fn deadline_prefers_urgent_tenants() {
        let queued = vec![
            snap(0, 0, None),
            snap(1, 1, Some(10)),
            snap(2, 2, Some(4)),
            snap(1, 3, Some(12)),
        ];
        let plan = DeadlinePolicy.plan_batch(&queued, 3);
        assert_eq!(plan, vec![UserId(2), UserId(1), UserId(1)]);
    }

    #[test]
    fn plans_never_exceed_batch_size() {
        let queued: Vec<QueuedSnapshot> = (0..50).map(|i| snap(i % 5, i as u64, None)).collect();
        for policy in [
            &mut FifoPolicy as &mut dyn AdmissionPolicy,
            &mut FairSharePolicy::default(),
            &mut DeadlinePolicy,
        ] {
            assert!(
                policy.plan_batch(&queued, 8).len() <= 8,
                "{}",
                policy.name()
            );
        }
    }
}

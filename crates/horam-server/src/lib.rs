//! Batched multi-tenant serving layer for the H-ORAM reproduction.
//!
//! `horam-core` gives one caller a synchronous `enqueue`/`drain` view of
//! an H-ORAM instance. Production traffic looks different: many logical
//! tenants submit concurrently, and the scheduler's grouping factor `c`
//! only pays off when the ROB actually holds enough requests to fill
//! scheduling groups. This crate adds that front-end:
//!
//! * [`OramService`] — accepts requests from registered tenants, checks
//!   them against `horam-core`'s per-tenant [`AccessControl`] table,
//!   coalesces duplicate reads, and drives the shared
//!   [`RequestQueue`](horam_core::queue::RequestQueue)/scheduler on a
//!   deterministic pump loop. Responses come back through
//!   [`ServiceTicket`]s, so tenants never block each other. The service
//!   is generic over its [`OramEngine`](horam_core::engine::OramEngine)
//!   back-end: with a [`ShardedOram`](horam_core::shard::ShardedOram) it
//!   becomes a shard router, splitting each admitted batch across
//!   independent instances and pumping them concurrently in simulated
//!   time.
//! * [`admission`] — pluggable batch-filling policies:
//!   [`FifoPolicy`], [`FairSharePolicy`] (starvation-free round-robin)
//!   and [`DeadlinePolicy`] (earliest-deadline-first).
//! * [`stats`] — per-tenant and service-wide accounting in the style of
//!   `horam_core::stats`, including simulated submission-to-completion
//!   latency and the dedup amplification factor.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the full
//! request lifecycle and `crates/bench/src/bin/serving_throughput.rs`
//! for the batched-vs-sequential comparison.
//!
//! [`AccessControl`]: horam_core::access_control::AccessControl

#![warn(missing_docs)]

pub mod admission;
pub mod service;
pub mod stats;

pub use admission::{AdmissionPolicy, DeadlinePolicy, FairSharePolicy, FifoPolicy, QueuedSnapshot};
pub use service::{OramService, PumpReport, ServeError, ServeReport, ServiceConfig, ServiceTicket};
pub use stats::{ServiceStats, TenantStats};

/// A tenant of the serving layer — the same identity `horam-core` uses
/// for multi-user scheduling and access control.
pub use horam_core::multi_user::UserId as TenantId;

//! The multi-tenant serving front-end.
//!
//! [`OramService`] multiplexes many logical tenants onto one
//! [`OramEngine`] back-end — a single [`HOram`] instance by default, or a
//! sharded pool of instances (see
//! [`ShardedOram`](horam_core::shard::ShardedOram)). The flow for each
//! request:
//!
//! 1. **submit** — access control ([`AccessControl`]) and geometry
//!    validation run in the trusted control layer; rejected requests
//!    produce *no observable access*. Accepted requests join their
//!    tenant's FIFO queue and get a [`ServiceTicket`].
//! 2. **pump** — the admission policy fills one batch (up to
//!    `batch_size` requests across tenants), duplicate reads of the same
//!    block are coalesced onto one ORAM request, the batch enters the
//!    shared [`RequestQueue`](horam_core::queue::RequestQueue), and
//!    scheduling cycles run until the batch drains.
//! 3. **collect** — responses are buffered per ticket;
//!    [`OramService::take_response`] hands them back in any order while
//!    later batches run.
//!
//! Obliviousness: batch boundaries depend only on queue *lengths* and the
//! policy, never on block ids, and every scheduling cycle keeps the
//! paper's fixed observable shape. **Read coalescing is a deliberate
//! trade-off on top of that**: with [`ServiceConfig::dedup`] enabled
//! (the default), the *number* of ORAM requests a batch issues — and so
//! its cycle count and completion timing — depends on cross-tenant
//! duplicate structure, which a co-resident tenant could probe to learn
//! that *someone* shares its hot blocks. Deployments where tenants are
//! mutually distrusting should set `dedup: false`, restoring one ORAM
//! access per request at the cost of the amplification win the
//! `serving_throughput` bench measures.

use crate::admission::{AdmissionPolicy, QueuedSnapshot};
use crate::stats::{ServiceStats, TenantStats};
use horam_core::access_control::{AccessControl, AccessDenied, Permission};
use horam_core::engine::OramEngine;
use horam_core::error::HOramError;
use horam_core::horam::HOram;
use horam_core::multi_user::UserId;
use horam_core::stats::HOramStats;
use oram_protocols::error::OramError;
use oram_protocols::types::{BlockId, Request, RequestOp};
use oram_storage::clock::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::ops::Range;

/// Handle for collecting one submitted request's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceTicket(pub u64);

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests admitted per pumped batch.
    pub batch_size: usize,
    /// Per-tenant bound on queued-but-unadmitted requests (backpressure).
    pub max_pending_per_tenant: usize,
    /// Coalesce duplicate same-block reads within a batch. Saves ORAM
    /// accesses on shared hot sets, but makes batch timing depend on
    /// cross-tenant duplicates — a side channel between mutually
    /// distrusting tenants (see the [module docs](self)); disable it
    /// when that matters more than throughput.
    pub dedup: bool,
    /// Scheduling cycles drained per I/O window: each pump plans up to
    /// this many cycles and issues their storage loads as one scatter
    /// read (`HOram::run_cycle_window`), coalescing per-op device
    /// overhead. Every window's observable shape matches the per-cycle
    /// path cycle for cycle; `1` reproduces the per-cycle drain exactly,
    /// while larger windows check the pump's low watermark only between
    /// windows (so a drain can run up to one window past it).
    pub io_batch: u64,
    /// Wall-clock worker threads the deployment should build its engine
    /// with (`HOramConfig::worker_threads`): a sharded engine pumps busy
    /// shards concurrently on real OS threads; a single instance
    /// parallelizes its shuffle stream. The service itself is
    /// engine-agnostic — consume this through
    /// [`engine_config`](Self::engine_config) when constructing the
    /// engine, so engine and service are sized from one configuration.
    /// Responses and stats are byte-identical at any value. Defaults to
    /// the host's available parallelism.
    pub worker_threads: usize,
    /// Optional storage block cache the deployment should build its
    /// engine with (`HOramConfig::cache`). Like
    /// [`worker_threads`](Self::worker_threads), this changes simulated
    /// I/O time only — responses, protocol counters, and the
    /// device-visible trace shape are byte-identical with or without it.
    /// Consume through [`engine_config`](Self::engine_config). `None`
    /// (the default) leaves the engine's machine description in charge.
    pub cache: Option<oram_storage::cache::CacheConfig>,
    /// Position-map mode the deployment should build its engine with
    /// (`HOramConfig::posmap`): the flat in-RAM table, or the recursive
    /// oblivious map whose trusted state is O(log N) (see
    /// `horam_core::posmap`). Like [`cache`](Self::cache), consumed
    /// through [`engine_config`](Self::engine_config); responses are
    /// byte-identical in either mode.
    pub posmap: horam_core::config::PosmapMode,
    /// Cycle-pipeline configuration the deployment should build its
    /// engine with (`HOramConfig::pipeline`): how many I/O windows the
    /// engine may keep in flight per pump. Consumed through
    /// [`engine_config`](Self::engine_config); the pump also reads the
    /// resolved depth to issue `run_cycle_burst` calls that keep the
    /// engine's pipeline fed. Like [`worker_threads`](Self::worker_threads),
    /// this changes wall-clock behaviour only — responses, statistics,
    /// traces, and simulated time are byte-identical at any depth. The
    /// default leaves the depth to the engine's machine hint (sequential
    /// when unset).
    pub pipeline: horam_core::PipelineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            batch_size: 64,
            max_pending_per_tenant: 4096,
            dedup: true,
            io_batch: 16,
            worker_threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            cache: None,
            posmap: horam_core::config::PosmapMode::Flat,
            pipeline: horam_core::PipelineConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Applies the serving deployment's sizing to the engine configuration
    /// it is about to build — currently the wall-clock thread count. This
    /// is the supported way to consume
    /// [`worker_threads`](Self::worker_threads): build the engine from
    /// `config.engine_config(base)` and pass the same `config` to
    /// [`OramService::new`], and the two cannot drift apart.
    pub fn engine_config(
        &self,
        base: horam_core::config::HOramConfig,
    ) -> horam_core::config::HOramConfig {
        let base = base
            .with_worker_threads(self.worker_threads)
            .with_posmap(self.posmap.clone())
            .with_pipeline(self.pipeline.clone());
        match &self.cache {
            Some(cache) => base.with_cache(cache.clone()),
            None => base,
        }
    }
}

/// Why the service rejected a submission.
#[derive(Debug)]
pub enum ServeError {
    /// The tenant was never registered.
    UnknownTenant(UserId),
    /// Access control rejected the request.
    Denied(AccessDenied),
    /// The tenant's queue is at its backpressure bound.
    QueueFull {
        /// The tenant whose queue is full.
        tenant: UserId,
        /// The configured bound.
        limit: usize,
    },
    /// The request failed geometry validation or the ORAM failed.
    Oram(OramError),
    /// The shard owning the request is quarantined (or was quarantined
    /// while the request was in flight). Requests to other shards keep
    /// serving; the tenant should retry elsewhere or wait for operator
    /// intervention.
    Degraded {
        /// The degraded shard's index.
        shard: usize,
        /// Why the shard was taken out of service.
        reason: String,
    },
    /// A bounded wait elapsed before the ticket resolved — either the
    /// pump budget ran out, or the admission policy stalled with the
    /// ticket still queued. Raised only by
    /// [`OramService::take_result_timeout`]; the ticket stays collectable
    /// by a later wait (the request is *not* cancelled — an admitted
    /// write may already have been applied, so cancellation could never
    /// be idempotent).
    Timeout {
        /// The ticket that failed to resolve within the budget.
        ticket: ServiceTicket,
        /// Pump iterations the bounded wait consumed before giving up.
        pumps: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(tenant) => write!(f, "{tenant} is not registered"),
            ServeError::Denied(denial) => write!(f, "denied: {denial}"),
            ServeError::QueueFull { tenant, limit } => {
                write!(f, "{tenant} queue full (limit {limit})")
            }
            ServeError::Oram(error) => write!(f, "oram: {error}"),
            ServeError::Degraded { shard, reason } => {
                write!(f, "shard {shard} degraded: {reason}")
            }
            ServeError::Timeout { ticket, pumps } => {
                write!(
                    f,
                    "ticket {} unresolved after {pumps} bounded pump(s)",
                    ticket.0
                )
            }
        }
    }
}

impl Error for ServeError {}

impl From<OramError> for ServeError {
    fn from(error: OramError) -> Self {
        ServeError::Oram(error)
    }
}

impl From<HOramError> for ServeError {
    fn from(error: HOramError) -> Self {
        match error {
            HOramError::Protocol(e) => ServeError::Oram(e),
            HOramError::ShardDegraded { shard, reason } => ServeError::Degraded { shard, reason },
            // `HOramError` is non-exhaustive; future variants collapse to
            // their protocol view.
            other => ServeError::Oram(other.into_protocol()),
        }
    }
}

impl From<AccessDenied> for ServeError {
    fn from(denial: AccessDenied) -> Self {
        ServeError::Denied(denial)
    }
}

/// What one [`OramService::pump`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Requests admitted into this batch.
    pub admitted: u64,
    /// Of those, served by piggybacking on another request's access.
    pub deduped: u64,
    /// Responses completed by this batch.
    pub completed: u64,
    /// Requests resolved to a typed failure by this batch (shard
    /// degraded at admission, or lost to a shard failure in flight) —
    /// collect them via [`OramService::take_result`].
    pub failed: u64,
    /// Scheduling cycles the batch consumed.
    pub cycles: u64,
    /// Simulated wall-clock time the batch consumed.
    pub wall_time: SimDuration,
}

/// Result of serving a whole workload to completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Batches pumped.
    pub batches: u64,
    /// Responses completed.
    pub completed: u64,
    /// Simulated wall-clock time consumed.
    pub wall_time: SimDuration,
}

#[derive(Debug)]
struct Pending {
    ticket: ServiceTicket,
    request: Request,
    arrival_seq: u64,
    deadline: Option<u64>,
    submitted_at: SimTime,
}

#[derive(Debug, Default)]
struct TenantState {
    pending: VecDeque<Pending>,
    stats: TenantStats,
    deadline_slack: Option<u64>,
}

/// One admitted request while its batch is in flight.
#[derive(Debug)]
struct InFlight {
    tenant: UserId,
    ticket: ServiceTicket,
    is_write: bool,
    submitted_at: SimTime,
    /// The ORAM ticket carrying this request, and whether this request is
    /// the one that issued it (`false` ⇒ piggybacked on another's access).
    oram_ticket: u64,
    piggybacked: bool,
}

/// The batched multi-tenant front-end over one [`OramEngine`] back-end.
///
/// The engine parameter defaults to a single [`HOram`] instance; plugging
/// in a [`ShardedOram`](horam_core::shard::ShardedOram) turns the service
/// into a **shard router**: admitted batches split across shards at
/// `enqueue` (each request routed by the engine's keyed address
/// partition), the pump drives every busy shard round-robin against the
/// engine's shared simulated clock, and responses merge back through the
/// same per-ticket collection path in arrival order. Admission policies,
/// access control, dedup and backpressure are engine-agnostic.
///
/// # Example
///
/// ```
/// use horam_core::{HOram, HOramConfig};
/// use horam_core::access_control::Permission;
/// use horam_core::multi_user::UserId;
/// use horam_server::{FairSharePolicy, OramService, ServiceConfig};
/// use oram_protocols::types::Request;
/// use oram_storage::hierarchy::MemoryHierarchy;
/// use oram_crypto::keys::MasterKey;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let oram = HOram::new(
///     HOramConfig::new(256, 8, 64).with_seed(1),
///     MemoryHierarchy::dac2019(),
///     MasterKey::from_bytes([1; 32]),
/// )?;
/// let mut service = OramService::new(
///     oram,
///     Box::new(FairSharePolicy::default()),
///     ServiceConfig::default(),
/// );
/// service.register_tenant(UserId(0), 0..256, Permission::ReadWrite);
///
/// let w = service.submit(UserId(0), Request::write(7u64, vec![42; 8]))?;
/// let r = service.submit(UserId(0), Request::read(7u64))?;
/// service.pump_until_idle()?;
/// assert_eq!(service.take_response(w), Some(vec![0; 8])); // previous bytes
/// assert_eq!(service.take_response(r), Some(vec![42; 8]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OramService<E: OramEngine = HOram> {
    oram: E,
    acl: AccessControl,
    policy: Box<dyn AdmissionPolicy>,
    config: ServiceConfig,
    tenants: BTreeMap<UserId, TenantState>,
    next_ticket: u64,
    arrival_seq: u64,
    in_flight: Vec<InFlight>,
    responses: HashMap<ServiceTicket, Vec<u8>>,
    /// Typed failures for tickets that will never produce a response
    /// (shard degraded at admission or failed in flight); delivered
    /// through [`take_result`](Self::take_result).
    failures: HashMap<ServiceTicket, HOramError>,
    stats: ServiceStats,
}

impl<E: OramEngine> OramService<E> {
    /// Wraps an ORAM engine with the given policy and config.
    pub fn new(oram: E, policy: Box<dyn AdmissionPolicy>, config: ServiceConfig) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        assert!(
            config.max_pending_per_tenant > 0,
            "backpressure bound must be positive"
        );
        assert!(config.io_batch > 0, "io_batch must be positive");
        assert!(config.worker_threads > 0, "worker_threads must be positive");
        Self {
            oram,
            acl: AccessControl::new(),
            policy,
            config,
            tenants: BTreeMap::new(),
            next_ticket: 0,
            arrival_seq: 0,
            in_flight: Vec::new(),
            responses: HashMap::new(),
            failures: HashMap::new(),
            stats: ServiceStats::default(),
        }
    }

    /// Registers a tenant with an initial grant.
    pub fn register_tenant(&mut self, tenant: UserId, range: Range<u64>, permission: Permission) {
        self.acl.grant(tenant, range, permission);
        self.tenants.entry(tenant).or_default();
    }

    /// Registers a tenant whose requests carry deadlines `slack` arrival
    /// steps after submission (used by [`DeadlinePolicy`]).
    ///
    /// [`DeadlinePolicy`]: crate::admission::DeadlinePolicy
    pub fn register_tenant_with_deadline(
        &mut self,
        tenant: UserId,
        range: Range<u64>,
        permission: Permission,
        slack: u64,
    ) {
        self.register_tenant(tenant, range, permission);
        self.tenants
            .get_mut(&tenant)
            .expect("just registered")
            .deadline_slack = Some(slack);
    }

    /// Adds a further grant to a registered tenant.
    pub fn grant(&mut self, tenant: UserId, range: Range<u64>, permission: Permission) {
        self.acl.grant(tenant, range, permission);
    }

    /// Queues a request for a tenant.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] for unregistered tenants,
    /// [`ServeError::Denied`] when access control rejects,
    /// [`ServeError::QueueFull`] at the backpressure bound and
    /// [`ServeError::Oram`] for geometry violations. None of these
    /// produce observable accesses.
    pub fn submit(
        &mut self,
        tenant: UserId,
        request: Request,
    ) -> Result<ServiceTicket, ServeError> {
        if !self.tenants.contains_key(&tenant) {
            return Err(ServeError::UnknownTenant(tenant));
        }
        if let Err(denial) = self.acl.check(tenant, &request) {
            self.tenants.get_mut(&tenant).expect("checked").stats.denied += 1;
            return Err(denial.into());
        }
        self.oram.validate(&request)?;
        let state = self.tenants.get_mut(&tenant).expect("checked");
        if state.pending.len() >= self.config.max_pending_per_tenant {
            state.stats.rejected_backpressure += 1;
            return Err(ServeError::QueueFull {
                tenant,
                limit: self.config.max_pending_per_tenant,
            });
        }

        let ticket = ServiceTicket(self.next_ticket);
        self.next_ticket += 1;
        let arrival_seq = self.arrival_seq;
        self.arrival_seq += 1;
        let deadline = state.deadline_slack.map(|slack| arrival_seq + slack);
        state.pending.push_back(Pending {
            ticket,
            request,
            arrival_seq,
            deadline,
            submitted_at: self.oram.now(),
        });
        state.stats.submitted += 1;
        state.stats.queue_peak = state.stats.queue_peak.max(state.pending.len());
        Ok(ticket)
    }

    /// Pumps once: admit → coalesce → schedule → collect.
    ///
    /// Admission tops the shared ROB up to `batch_size` in-flight
    /// requests; the scheduler then runs until the ROB falls back to half
    /// the batch size — or drains completely when no further work is
    /// queued. Keeping the ROB at depth (instead of draining every batch
    /// to empty) means scheduling groups stay full across batch
    /// boundaries, which is where batching beats sequential `run_batch`.
    /// Completed responses are collected incrementally each pump.
    ///
    /// Returns a zeroed report when nothing is queued or in flight.
    ///
    /// # Errors
    ///
    /// ORAM storage/crypto errors propagate.
    pub fn pump(&mut self) -> Result<PumpReport, ServeError> {
        let baseline: HOramStats = self.oram.aggregate_stats();
        let wall_start = self.oram.now();

        // Admission: fill the ROB up to the batch size.
        let space = self
            .config
            .batch_size
            .saturating_sub(self.oram.pending_requests());
        let mut deduped = 0u64;
        let mut admitted_count = 0u64;
        let mut failed_count = 0u64;
        if space > 0 && self.pending_total() > 0 {
            let plan = {
                let snapshot = self.snapshot(space);
                self.policy.plan_batch(&snapshot, space)
            };

            // Pop the planned requests from their queue fronts, in plan
            // order, coalescing duplicate reads. `read_carriers` maps a
            // block to the ORAM ticket of an earlier read in this
            // admission round; a write to the block invalidates the entry
            // (later reads must observe the new value through their own
            // access).
            let mut read_carriers: HashMap<BlockId, u64> = HashMap::new();
            let mut batch_tenants: Vec<UserId> = Vec::new();
            for tenant in plan.into_iter().take(space) {
                let Some(state) = self.tenants.get_mut(&tenant) else {
                    continue;
                };
                let Some(pending) = state.pending.pop_front() else {
                    continue;
                };
                state.stats.admitted += 1;
                if !batch_tenants.contains(&tenant) {
                    batch_tenants.push(tenant);
                    state.stats.batches += 1;
                }
                admitted_count += 1;

                let is_write = pending.request.op.is_write();
                let block = pending.request.id;
                let enqueued = match (&pending.request.op, self.config.dedup) {
                    (RequestOp::Read, true) => match read_carriers.get(&block) {
                        Some(carrier) => {
                            deduped += 1;
                            Ok((*carrier, true))
                        }
                        None => self.oram.enqueue(pending.request.clone()).map(|ticket| {
                            read_carriers.insert(block, ticket);
                            (ticket, false)
                        }),
                    },
                    _ => self.oram.enqueue(pending.request.clone()).map(|ticket| {
                        if is_write {
                            read_carriers.remove(&block);
                        }
                        (ticket, false)
                    }),
                };
                // A degraded target shard fails the request typed at
                // admission — no observable access, the batch goes on.
                let (oram_ticket, piggybacked) = match enqueued {
                    Ok(pair) => pair,
                    Err(error) => {
                        failed_count += 1;
                        self.failures.insert(pending.ticket, error);
                        continue;
                    }
                };
                self.in_flight.push(InFlight {
                    tenant,
                    ticket: pending.ticket,
                    is_write,
                    submitted_at: pending.submitted_at,
                    oram_ticket,
                    piggybacked,
                });
            }
        }

        if self.in_flight.is_empty() {
            // Nothing runnable — but admissions that failed typed (all
            // routed to degraded shards) must still be reported, or an
            // idle-pump loop would stall with healthy work queued.
            return Ok(PumpReport {
                admitted: admitted_count,
                deduped,
                completed: 0,
                failed: failed_count,
                cycles: 0,
                wall_time: self.oram.now().duration_since(wall_start),
            });
        }

        // Schedule: drain to the low watermark — or fully, when no more
        // admissions can refill the pipeline (or an empty admission round
        // left the ROB below the watermark, which must still progress).
        let watermark = if self.pending_total() > 0 && admitted_count > 0 {
            self.config.batch_size / 2
        } else {
            0
        };
        // Each window plans up to `io_batch` cycles and issues their
        // storage loads as one scatter read — the batched I/O pipeline
        // under the multi-tenant path. Windows are clamped to the request
        // count above the watermark, so deep queues get full batches
        // while near the watermark the drain falls back to short windows.
        // The watermark is still checked at burst granularity: because a
        // cycle can retire up to `c` hits, a burst may drain past it by
        // up to a burst's worth of retirements before the next check —
        // a deliberate trade (full scatter batches, fed pipelines) over
        // stopping per-cycle. At pipeline depths above one the burst
        // hands the engine several windows at once so lookahead planning
        // overlaps in-flight commits; results are byte-identical either
        // way, so the watermark drain logic does not care about depth.
        let depth = self.config.pipeline.effective_depth(None);
        while self.oram.pending_requests() > watermark {
            let above = (self.oram.pending_requests() - watermark) as u64;
            self.oram
                .run_cycle_burst(self.config.io_batch.min(above), depth)?;
        }

        // Collect every response that completed. Piggybackers share their
        // carrier's ORAM ticket (and were admitted in the same round), so
        // each completed ticket is taken once and fanned out.
        let now = self.oram.now();
        let mut completed = 0u64;
        let mut ready: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut lost: HashMap<u64, HOramError> = HashMap::new();
        for flight in &self.in_flight {
            if ready.contains_key(&flight.oram_ticket) || lost.contains_key(&flight.oram_ticket) {
                continue;
            }
            if let Some(payload) = self.oram.take_response(flight.oram_ticket) {
                ready.insert(flight.oram_ticket, payload);
            } else if let Some(error) = self.oram.take_failure(flight.oram_ticket) {
                lost.insert(flight.oram_ticket, error);
            }
        }
        let mut still_in_flight = Vec::with_capacity(self.in_flight.len());
        for flight in self.in_flight.drain(..) {
            if let Some(payload) = ready.get(&flight.oram_ticket) {
                completed += 1;
                let latency = now.duration_since(flight.submitted_at);
                let state = self.tenants.get_mut(&flight.tenant).expect("registered");
                state
                    .stats
                    .record_completion(flight.is_write, flight.piggybacked, latency);
                self.responses.insert(flight.ticket, payload.clone());
            } else if let Some(error) = lost.get(&flight.oram_ticket) {
                // The carrying shard failed in flight; every piggybacker
                // inherits the carrier's typed failure.
                failed_count += 1;
                self.failures.insert(flight.ticket, error.clone());
            } else {
                still_in_flight.push(flight);
            }
        }
        self.in_flight = still_in_flight;

        let oram_delta = self.oram.aggregate_stats().delta_since(&baseline);
        let wall_time = now.duration_since(wall_start);
        self.stats.batches += 1;
        self.stats.admitted += admitted_count;
        self.stats.completed += completed;
        self.stats.deduped += deduped;
        self.stats.oram += oram_delta;

        Ok(PumpReport {
            admitted: admitted_count,
            deduped,
            completed,
            failed: failed_count,
            cycles: oram_delta.cycles,
            wall_time,
        })
    }

    /// Pumps until every tenant queue is empty and every admitted request
    /// has completed.
    ///
    /// # Errors
    ///
    /// ORAM storage/crypto errors propagate.
    pub fn pump_until_idle(&mut self) -> Result<ServeReport, ServeError> {
        let mut report = ServeReport::default();
        while self.pending_total() > 0 || !self.in_flight.is_empty() {
            let pump = self.pump()?;
            report.batches += 1;
            report.completed += pump.completed;
            report.wall_time += pump.wall_time;
            if pump.admitted == 0 && pump.completed == 0 && pump.failed == 0 {
                // A policy that refuses to admit queued work would
                // otherwise spin forever; stop and leave the queues as
                // they are. (Typed failures count as progress — their
                // requests left the pipeline.)
                break;
            }
        }
        Ok(report)
    }

    /// Checkpoint: drains every in-flight batch and queued request
    /// ([`pump_until_idle`](Self::pump_until_idle)), then seals the
    /// engine's complete trusted state into an encrypted, authenticated
    /// snapshot ([`OramEngine::snapshot`]) — committing durable storage
    /// devices first, so snapshot and device file describe one consistent
    /// recovery point.
    ///
    /// Deployment-side restore builds a fresh engine from the snapshot
    /// (`HOram::restore` / `ShardedOram::restore`) and wraps it in a new
    /// service. Service-level state — tenant registrations, grants,
    /// uncollected [`ServiceTicket`] responses — is configuration and
    /// delivery state outside the ORAM trust boundary; re-register
    /// tenants on the new service and collect responses before
    /// checkpointing.
    ///
    /// # Errors
    ///
    /// ORAM storage/crypto errors propagate; the engine reports
    /// `SnapshotInvalid` if an admission-policy stall left requests
    /// queued (see [`pump_until_idle`](Self::pump_until_idle)).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, ServeError> {
        self.pump_until_idle()?;
        Ok(self.oram.snapshot()?)
    }

    /// Submits a whole arrival sequence and serves it to completion,
    /// returning each arrival's ticket in submission order. This is the
    /// entry point workload `TenantSchedule`s feed (see
    /// `oram_workload::serve`).
    ///
    /// The loop pumps whenever a batch's worth of work is queued *or*
    /// the next arrival's tenant queue is at its backpressure bound, so
    /// `serve_all` never fails with [`ServeError::QueueFull`] regardless
    /// of how `batch_size` relates to `max_pending_per_tenant`.
    ///
    /// # Errors
    ///
    /// Validation errors ([`ServeError::UnknownTenant`],
    /// [`ServeError::Denied`], geometry) abort mid-stream: already
    /// submitted requests stay queued but their tickets are lost with the
    /// returned error — validate tenants/grants up front, or use
    /// [`submit`](Self::submit)/[`pump`](Self::pump) directly for
    /// per-request error handling. ORAM errors propagate from the pump
    /// loop.
    pub fn serve_all(
        &mut self,
        arrivals: impl IntoIterator<Item = (UserId, Request)>,
    ) -> Result<(Vec<ServiceTicket>, ServeReport), ServeError> {
        let mut tickets = Vec::new();
        let mut report = ServeReport::default();
        let track = |report: &mut ServeReport, pump: PumpReport| {
            report.batches += 1;
            report.completed += pump.completed;
            report.wall_time += pump.wall_time;
        };
        for (tenant, request) in arrivals {
            // Make room before submitting: a full tenant queue would turn
            // into a spurious QueueFull otherwise.
            while self
                .tenants
                .get(&tenant)
                .is_some_and(|state| state.pending.len() >= self.config.max_pending_per_tenant)
            {
                let pump = self.pump()?;
                let stalled = pump.admitted == 0 && pump.completed == 0 && pump.failed == 0;
                track(&mut report, pump);
                if stalled {
                    break; // policy refuses to admit; surface the QueueFull
                }
            }
            tickets.push(self.submit(tenant, request)?);
            // Keep queues within the backpressure bound by pumping as
            // batches fill up.
            if self.pending_total() >= self.config.batch_size {
                let pump = self.pump()?;
                track(&mut report, pump);
            }
        }
        let tail = self.pump_until_idle()?;
        report.batches += tail.batches;
        report.completed += tail.completed;
        report.wall_time += tail.wall_time;
        Ok((tickets, report))
    }

    /// Removes and returns a completed response.
    pub fn take_response(&mut self, ticket: ServiceTicket) -> Option<Vec<u8>> {
        self.responses.remove(&ticket)
    }

    /// Removes and returns a ticket's outcome: `Ok(response)` when it
    /// completed, `Err` with the typed per-tenant failure when its shard
    /// was degraded at admission or failed in flight, `None` while still
    /// queued/in flight (or for tickets already taken). Prefer this over
    /// [`take_response`](Self::take_response) when the engine can
    /// degrade — a `None` from `take_response` cannot distinguish "not
    /// yet" from "never".
    pub fn take_result(&mut self, ticket: ServiceTicket) -> Option<Result<Vec<u8>, ServeError>> {
        if let Some(payload) = self.responses.remove(&ticket) {
            return Some(Ok(payload));
        }
        self.failures
            .remove(&ticket)
            .map(|error| Err(ServeError::from(error)))
    }

    /// Pumps the service until `ticket` resolves, bounded by `max_pumps`
    /// scheduling iterations — the deadline-bounded companion of
    /// [`take_result`](Self::take_result). Every wait inside is bounded:
    /// a ticket that can never resolve (never issued, already collected,
    /// or silently lost) returns
    /// [`OramError::UnknownTicket`] immediately instead of spinning, and
    /// a pump that makes no progress while the ticket is still queued (an
    /// admission policy refusing to admit it) fails fast rather than
    /// burning the remaining budget on identical no-op pumps.
    ///
    /// On [`ServeError::Timeout`] the request is **not** cancelled — an
    /// admitted write may already have been applied, so the only
    /// idempotent behaviour is to leave the ticket collectable by a later
    /// [`take_result`](Self::take_result) or a retried wait. The RPC
    /// front end builds its server-side deadline machinery on exactly
    /// this contract.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] when the budget elapses or admission
    /// stalls; [`ServeError::Oram`] ([`OramError::UnknownTicket`]) for
    /// unresolvable tickets; pump errors propagate; and a ticket whose
    /// request failed typed (degraded shard) yields that failure, exactly
    /// as [`take_result`](Self::take_result) would.
    pub fn take_result_timeout(
        &mut self,
        ticket: ServiceTicket,
        max_pumps: u64,
    ) -> Result<Vec<u8>, ServeError> {
        if ticket.0 >= self.next_ticket {
            return Err(ServeError::Oram(OramError::UnknownTicket {
                ticket: ticket.0,
            }));
        }
        let mut pumps = 0u64;
        loop {
            if let Some(outcome) = self.take_result(ticket) {
                return outcome;
            }
            if !self.ticket_live(ticket) {
                // Issued once but no longer queued, in flight, or
                // buffered: it was already collected (or lost) and no
                // amount of pumping can resolve it.
                return Err(ServeError::Oram(OramError::UnknownTicket {
                    ticket: ticket.0,
                }));
            }
            if pumps >= max_pumps {
                return Err(ServeError::Timeout { ticket, pumps });
            }
            let report = self.pump()?;
            pumps += 1;
            if report.admitted == 0 && report.completed == 0 && report.failed == 0 {
                // No progress and the ticket is still unresolved: the
                // admission policy is refusing the queue. Further pumps
                // are byte-identical no-ops, so fail fast.
                if let Some(outcome) = self.take_result(ticket) {
                    return outcome;
                }
                return Err(ServeError::Timeout { ticket, pumps });
            }
        }
    }

    /// Whether a response is ready to take.
    pub fn response_ready(&self, ticket: ServiceTicket) -> bool {
        self.responses.contains_key(&ticket)
    }

    /// Whether `ticket` is still moving through the pipeline (queued
    /// behind admission or in flight in a batch). Resolved tickets —
    /// response buffered, typed failure recorded, or already taken — are
    /// not live.
    fn ticket_live(&self, ticket: ServiceTicket) -> bool {
        self.in_flight.iter().any(|flight| flight.ticket == ticket)
            || self
                .tenants
                .values()
                .any(|state| state.pending.iter().any(|pending| pending.ticket == ticket))
    }

    /// Indices of quarantined shards behind the engine (empty for a
    /// healthy or single-instance engine).
    pub fn degraded_shards(&self) -> Vec<usize> {
        self.oram.degraded_shards()
    }

    /// Total queued-but-unadmitted requests across tenants.
    pub fn pending_total(&self) -> usize {
        self.tenants.values().map(|state| state.pending.len()).sum()
    }

    /// A tenant's accounting, if registered.
    pub fn tenant_stats(&self, tenant: UserId) -> Option<&TenantStats> {
        self.tenants.get(&tenant).map(|state| &state.stats)
    }

    /// Service-wide accounting.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The admission policy's display name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The underlying ORAM engine (stats, clock, config).
    pub fn oram(&self) -> &E {
        &self.oram
    }

    /// Unwraps the service, returning the ORAM engine.
    pub fn into_oram(self) -> E {
        self.oram
    }

    /// Number of independent ORAM instances behind the engine (1 unless
    /// the engine shards).
    pub fn shard_count(&self) -> usize {
        self.oram.shard_count()
    }

    /// Per-shard ORAM statistics, in shard-index order (one entry for a
    /// single-instance engine). The aggregate across shards accumulates
    /// into [`ServiceStats::oram`](crate::stats::ServiceStats::oram) as
    /// batches pump, exactly as for a single instance.
    pub fn shard_stats(&self) -> Vec<HOramStats> {
        self.oram.per_shard_stats()
    }

    /// Snapshots at most `limit` entries per tenant: policies only ever
    /// pop queue fronts and admit at most `limit` requests total, so
    /// deeper entries cannot be admitted this round and need not be
    /// materialized (keeps each pump O(tenants × batch), not O(queued)).
    fn snapshot(&self, limit: usize) -> Vec<QueuedSnapshot> {
        let mut snapshot = Vec::new();
        for (tenant, state) in &self.tenants {
            for (position, pending) in state.pending.iter().take(limit).enumerate() {
                snapshot.push(QueuedSnapshot {
                    tenant: *tenant,
                    arrival_seq: pending.arrival_seq,
                    deadline: pending.deadline,
                    position,
                });
            }
        }
        snapshot
    }
}

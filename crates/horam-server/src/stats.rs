//! Per-tenant and service-wide accounting.
//!
//! Mirrors the style of `horam_core::stats`: plain monotone counters plus
//! derived quantities, so snapshots can be diffed and reported in the
//! bench binaries. Latencies are **simulated** time (the device model's
//! clock), measured from submission to response completion — queue wait
//! while other tenants' batches run is included, which is exactly what a
//! tenant of a shared instance experiences.

use horam_core::stats::HOramStats;
use oram_storage::clock::SimDuration;

/// Counters kept per registered tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests accepted into the tenant's queue.
    pub submitted: u64,
    /// Of those, admitted into a batch so far.
    pub admitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Of the completed requests, reads.
    pub reads: u64,
    /// Of the completed requests, writes.
    pub writes: u64,
    /// Requests rejected by access control.
    pub denied: u64,
    /// Requests rejected because the tenant queue was full.
    pub rejected_backpressure: u64,
    /// Completed reads served by piggybacking on another request's ORAM
    /// access (batch dedup) instead of their own.
    pub piggybacked: u64,
    /// Batches this tenant had at least one request in.
    pub batches: u64,
    /// Peak queued-but-unadmitted depth.
    pub queue_peak: usize,
    /// Sum of per-request latencies (submission → completion).
    pub latency_total: SimDuration,
    /// Worst single-request latency.
    pub latency_max: SimDuration,
}

impl TenantStats {
    /// Mean submission-to-completion latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.completed == 0 {
            SimDuration::ZERO
        } else {
            self.latency_total / self.completed
        }
    }

    /// Records one completed request.
    pub(crate) fn record_completion(
        &mut self,
        is_write: bool,
        piggybacked: bool,
        latency: SimDuration,
    ) {
        self.completed += 1;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if piggybacked {
            self.piggybacked += 1;
        }
        self.latency_total += latency;
        self.latency_max = self.latency_max.max(latency);
    }
}

/// Service-wide counters across all tenants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batches pumped.
    pub batches: u64,
    /// Requests admitted into batches.
    pub admitted: u64,
    /// Requests completed (including piggybacked ones).
    pub completed: u64,
    /// Requests served by dedup piggybacking (no own ORAM access).
    pub deduped: u64,
    /// ORAM work consumed by pumped batches (delta-accumulated).
    pub oram: HOramStats,
}

impl ServiceStats {
    /// Requests completed per ORAM request issued — the dedup win on top
    /// of the scheduler's own request-per-I/O win.
    pub fn amplification(&self) -> f64 {
        if self.oram.requests == 0 {
            0.0
        } else {
            self.completed as f64 / self.oram.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_handles_empty() {
        assert_eq!(TenantStats::default().mean_latency(), SimDuration::ZERO);
    }

    #[test]
    fn completion_recording() {
        let mut stats = TenantStats::default();
        stats.record_completion(false, true, SimDuration::from_micros(10));
        stats.record_completion(true, false, SimDuration::from_micros(30));
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.piggybacked, 1);
        assert_eq!(stats.mean_latency(), SimDuration::from_micros(20));
        assert_eq!(stats.latency_max, SimDuration::from_micros(30));
    }
}

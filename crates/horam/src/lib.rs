//! H-ORAM reproduction — umbrella crate.
//!
//! Re-exports the whole public API of the workspace so applications can
//! depend on one crate:
//!
//! * [`core`](mod@crate::core) — the H-ORAM system itself
//!   (`HOram`, `HOramConfig`, scheduler, storage layer, multi-user).
//! * [`protocols`] — the `Oram` trait and the baselines (Path ORAM,
//!   tree-top-cache, square-root, partition).
//! * [`storage`] — the device timing simulator and bus traces.
//! * [`crypto`] — the vector-tested primitives (ChaCha20, SipHash, PRP).
//! * [`shuffle`] — oblivious shuffles and permutations.
//! * [`workload`] — request generators and traces.
//! * [`analysis`] — the paper's closed-form models and leakage tests.
//!
//! # Quickstart
//!
//! ```
//! use horam::prelude::*;
//!
//! # fn main() -> Result<(), horam::protocols::OramError> {
//! // The paper's machine, scaled down: 256-block dataset, 64-slot memory tree.
//! let config = HOramConfig::new(256, 16, 64).with_seed(42);
//! let mut oram = HOram::new(config, MemoryHierarchy::dac2019(),
//!                           MasterKey::from_bytes([7; 32]))?;
//!
//! oram.write(BlockId(1), &[42u8; 16])?;
//! assert_eq!(oram.read(BlockId(1))?, vec![42u8; 16]);
//!
//! println!("I/O loads: {}", oram.stats().total_io_loads());
//! # Ok(())
//! # }
//! ```

pub use horam_core as core;
pub use oram_analysis as analysis;
pub use oram_crypto as crypto;
pub use oram_protocols as protocols;
pub use oram_shuffle as shuffle;
pub use oram_storage as storage;
pub use oram_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use horam_core::{HOram, HOramConfig, HOramStats, StagePlan};
    pub use oram_crypto::keys::MasterKey;
    pub use oram_protocols::{BlockId, Oram, OramError, Request, RequestOp};
    pub use oram_storage::{MemoryHierarchy, SimDuration};
    pub use oram_workload::{HotspotWorkload, RequestTrace, WorkloadGenerator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_exposes_all_crates() {
        // Compile-time check that the re-exports resolve.
        let _ = crate::core::HOramConfig::new(16, 8, 8);
        let _ = crate::analysis::model::average_c(&[(1, 1.0)]);
        let _ = crate::shuffle::ShuffleAlgorithm::ALL;
        let _ = crate::storage::calibration::MachineConfig::dac2019();
    }
}

//! Serial-correlation analysis of address sequences.
//!
//! Chi-square uniformity (see [`crate::leakage`]) checks each access in
//! isolation; a subtler adversary correlates *consecutive* accesses (e.g.
//! "after slot X is read, slot X+1 follows more often than chance" would
//! betray a sequential logical scan through a broken permutation). The
//! lag-k serial correlation of the address sequence quantifies exactly
//! that channel; for a properly permuted/remapped ORAM it must be
//! statistically indistinguishable from zero.

/// Lag-`k` serial correlation coefficient of a sequence, in `[-1, 1]`.
///
/// Returns `None` when the sequence is too short (fewer than `k + 2`
/// elements) or has zero variance (constant sequences carry no signal to
/// correlate).
pub fn serial_correlation(values: &[u64], lag: usize) -> Option<f64> {
    if values.len() < lag + 2 {
        return None;
    }
    let n = values.len() - lag;
    let xs = &values[..n];
    let ys = &values[lag..];
    let mean_x: f64 = xs.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mean_y: f64 = ys.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for i in 0..n {
        let dx = xs[i] as f64 - mean_x;
        let dy = ys[i] as f64 - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

/// The ±threshold below which a lag-k correlation over `n` samples is
/// consistent with zero at roughly p = 0.001 (normal approximation:
/// `z / √n` with z ≈ 3.29).
pub fn zero_correlation_band(samples: usize) -> f64 {
    3.29 / (samples as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_crypto::rng::DeterministicRng;
    use rand::Rng;

    #[test]
    fn sequential_scan_is_perfectly_correlated() {
        let values: Vec<u64> = (0..1000).collect();
        let r = serial_correlation(&values, 1).expect("enough samples");
        assert!(r > 0.99, "got {r}");
    }

    #[test]
    fn random_sequence_is_uncorrelated() {
        let mut rng = DeterministicRng::from_u64_seed(5);
        let values: Vec<u64> = (0..20_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        for lag in [1usize, 2, 5] {
            let r = serial_correlation(&values, lag).expect("enough samples");
            assert!(
                r.abs() < zero_correlation_band(values.len()),
                "lag {lag}: r = {r}"
            );
        }
    }

    #[test]
    fn alternating_sequence_is_anticorrelated() {
        let values: Vec<u64> = (0..1000)
            .map(|i| if i % 2 == 0 { 0 } else { 100 })
            .collect();
        let r = serial_correlation(&values, 1).expect("enough samples");
        assert!(r < -0.99, "got {r}");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(serial_correlation(&[1, 2], 1), None, "too short");
        assert_eq!(serial_correlation(&[7; 100], 1), None, "zero variance");
    }

    #[test]
    fn band_shrinks_with_samples() {
        assert!(zero_correlation_band(10_000) < zero_correlation_band(100));
    }
}

//! Figure 5-1: theoretical performance gain of H-ORAM over Path ORAM.
//!
//! The paper plots the overhead-reduction factor against the
//! storage/memory ratio `N/n` with one curve per grouping factor `c`
//! (Z = 4). This module generates those series from the closed-form model
//! in [`crate::model`]. Both gain metrics are emitted (per request and
//! per I/O access) — see EXPERIMENTS.md for how they bracket the paper's
//! quoted numbers.

use crate::model::OramModel;
use serde::{Deserialize, Serialize};

/// One point of a Figure 5-1 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainPoint {
    /// Grouping factor `c` of the curve.
    pub c: u32,
    /// Storage-to-memory ratio `N/n`.
    pub ratio: u64,
    /// Overhead reduction per request (commensurable units).
    pub gain_per_request: f64,
    /// Overhead reduction per I/O access (the paper's Table 5-1 unit).
    pub gain_per_io_access: f64,
    /// The no-shuffle ideal (client/server offload case, Fig. 5-2).
    pub gain_ideal: f64,
}

/// Generates the Figure 5-1 series: one [`GainPoint`] per `(c, ratio)`.
///
/// `write_cost_ratio` weights writes against reads (1.0 = symmetric;
/// ≈1.86 matches the paper's measured HDD). The memory size is fixed at
/// the paper's 128 MB of 1 KB blocks; the model depends on `N/n` only
/// through the ratio, so this choice does not affect the curves.
pub fn gain_series(cs: &[u32], ratios: &[u64], write_cost_ratio: f64) -> Vec<GainPoint> {
    let memory_slots: u64 = 1 << 17;
    let mut points = Vec::with_capacity(cs.len() * ratios.len());
    for &c in cs {
        for &ratio in ratios {
            let model = OramModel::new(memory_slots * ratio, memory_slots, 4, c as f64);
            points.push(GainPoint {
                c,
                ratio,
                gain_per_request: model.gain_per_request(write_cost_ratio),
                gain_per_io_access: model.gain_per_io_access(write_cost_ratio),
                gain_ideal: model.gain_ideal_no_shuffle(write_cost_ratio),
            });
        }
    }
    points
}

/// The sweep the paper's figure uses: `c ∈ {1, 2, 4, 8, 16}`,
/// `N/n ∈ {2, 4, …, 1024}`.
pub fn paper_sweep(write_cost_ratio: f64) -> Vec<GainPoint> {
    gain_series(
        &[1, 2, 4, 8, 16],
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
        write_cost_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_covers_the_grid() {
        let points = gain_series(&[1, 4], &[2, 8, 32], 1.0);
        assert_eq!(points.len(), 6);
        assert!(points.iter().any(|p| p.c == 4 && p.ratio == 8));
    }

    #[test]
    fn higher_c_dominates_pointwise() {
        let points = paper_sweep(1.0);
        for ratio in [2u64, 8, 64, 1024] {
            let at = |c: u32| {
                points
                    .iter()
                    .find(|p| p.c == c && p.ratio == ratio)
                    .expect("grid point")
                    .gain_per_request
            };
            assert!(at(16) > at(4), "ratio {ratio}");
            assert!(at(4) > at(1), "ratio {ratio}");
        }
    }

    #[test]
    fn paper_quote_is_bracketed_by_the_two_metrics() {
        // The paper quotes ~8× at (c=4, N/n=8). Its Eq. 5-4 mixes
        // per-request and per-I/O-access units (EXPERIMENTS.md discusses
        // this); our two clean metrics bracket the quoted value:
        // per-I/O-access ≈ 3.8×, per-request ≈ 15.1×.
        let point = gain_series(&[4], &[8], 1.0)[0];
        assert!(
            (3.5..4.0).contains(&point.gain_per_io_access),
            "{}",
            point.gain_per_io_access
        );
        assert!(
            (14.5..15.5).contains(&point.gain_per_request),
            "{}",
            point.gain_per_request
        );
        assert!(point.gain_per_io_access < 8.0 && 8.0 < point.gain_per_request);
    }

    #[test]
    fn gain_declines_toward_huge_ratios() {
        let points = paper_sweep(1.0);
        let c4 = |ratio: u64| {
            points
                .iter()
                .find(|p| p.c == 4 && p.ratio == ratio)
                .unwrap()
                .gain_per_request
        };
        assert!(c4(2) > c4(64));
        assert!(c4(64) > c4(1024));
    }

    #[test]
    fn ideal_gain_grows_with_ratio() {
        // The no-shuffle case keeps improving as the tree deepens.
        let points = paper_sweep(1.0);
        let ideal = |ratio: u64| {
            points
                .iter()
                .find(|p| p.c == 1 && p.ratio == ratio)
                .unwrap()
                .gain_ideal
        };
        assert!(ideal(1024) > ideal(8));
        // Table 5-1's point (ratio 8): 32×.
        assert_eq!(ideal(8), 32.0);
    }

    #[test]
    fn write_weighting_changes_levels_not_ordering() {
        let even = gain_series(&[4], &[8], 1.0)[0];
        let skewed = gain_series(&[4], &[8], 1.86)[0];
        assert_ne!(even.gain_per_request, skewed.gain_per_request);
        assert!(skewed.gain_per_request > 0.0);
    }
}

//! Latency-distribution summaries.
//!
//! The paper reports only mean I/O latencies; tail behaviour is what a
//! deployment cares about (a shuffle stall is very different from a slow
//! mean). [`LatencySummary`] condenses a sample of simulated durations
//! into mean/percentile form for the experiment reports and ablations.

use oram_storage::clock::SimDuration;
use serde::{Deserialize, Serialize};

/// Percentile summary of a duration sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Smallest observation.
    pub min: SimDuration,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median (p50).
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Largest observation.
    pub max: SimDuration,
}

impl LatencySummary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample (no meaningful percentiles exist; callers
    /// decide how to report "no data").
    pub fn of(samples: &[SimDuration]) -> Self {
        assert!(
            !samples.is_empty(),
            "latency summary needs at least one sample"
        );
        let mut sorted: Vec<SimDuration> = samples.to_vec();
        sorted.sort_unstable();
        let total_nanos: u64 = sorted.iter().map(|d| d.as_nanos()).sum();
        Self {
            count: sorted.len(),
            min: sorted[0],
            mean: SimDuration::from_nanos(total_nanos / sorted.len() as u64),
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// One-line rendering for reports.
    pub fn render(&self) -> String {
        format!(
            "n={} min={} mean={} p50={} p95={} p99={} max={}",
            self.count, self.min, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[SimDuration], q: f64) -> SimDuration {
    debug_assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let samples: Vec<SimDuration> = (1..=100).map(us).collect();
        let summary = LatencySummary::of(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.min, us(1));
        assert_eq!(summary.max, us(100));
        assert_eq!(summary.p50, us(50));
        assert_eq!(summary.p95, us(95));
        assert_eq!(summary.p99, us(99));
        // Mean of 1..=100 µs is 50.5 µs = 50 500 ns.
        assert_eq!(summary.mean, SimDuration::from_nanos(50_500));
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = vec![us(3), us(1), us(2)];
        let b = vec![us(1), us(2), us(3)];
        assert_eq!(LatencySummary::of(&a), LatencySummary::of(&b));
    }

    #[test]
    fn singleton_sample() {
        let summary = LatencySummary::of(&[us(7)]);
        assert_eq!(summary.p50, us(7));
        assert_eq!(summary.p99, us(7));
        assert_eq!(summary.mean, us(7));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_panics() {
        LatencySummary::of(&[]);
    }

    #[test]
    fn tail_dominated_sample() {
        // 99 fast + 1 slow: p95 stays fast, max shows the stall.
        let mut samples = vec![us(10); 99];
        samples.push(us(10_000));
        let summary = LatencySummary::of(&samples);
        assert_eq!(summary.p95, us(10));
        assert_eq!(summary.max, us(10_000));
        assert!(summary.mean > us(10) && summary.mean < us(200));
    }

    #[test]
    fn render_mentions_percentiles() {
        let text = LatencySummary::of(&[us(1), us(2)]).render();
        assert!(text.contains("p95"));
        assert!(text.contains("n=2"));
    }
}

//! Statistical leakage analysis of recorded bus traces.
//!
//! The security arguments of the paper (§4.4) reduce to properties of the
//! *observable* access stream; this module turns each into a checkable
//! statistic over an [`oram_storage::trace::AccessTrace`] snapshot:
//!
//! * **Access security** — path/partition choices look uniform:
//!   [`chi_square_uniform`] over address histograms;
//! * **once-per-period** — no storage slot read twice within a period:
//!   [`once_per_period`];
//! * **scheduler security** — every cycle presents the same shape:
//!   [`TraceShape`] summarizes a trace into the counts an adversary could
//!   compare across runs; equality of shapes across different workloads is
//!   the indistinguishability test.

use oram_storage::device::{AccessKind, DeviceId};
use oram_storage::trace::TraceEvent;
use std::collections::HashMap;

/// Pearson chi-square statistic of observed counts against a uniform
/// expectation, together with its degrees of freedom.
///
/// Returns `(statistic, degrees_of_freedom)`. Callers compare against the
/// critical value for their significance level (the tests use p = 0.001
/// thresholds tabulated below).
pub fn chi_square_uniform(counts: &[u64]) -> (f64, usize) {
    assert!(!counts.is_empty(), "chi-square needs at least one bin");
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    if expected == 0.0 {
        return (0.0, counts.len() - 1);
    }
    let statistic = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    (statistic, counts.len() - 1)
}

/// Approximate p = 0.001 critical value for a chi-square distribution
/// with `df` degrees of freedom (Wilson–Hilferty approximation; exact
/// enough for df ≥ 1 test thresholds).
pub fn chi_square_critical_p001(df: usize) -> f64 {
    let df = df as f64;
    let z = 3.090_232; // z-score for p = 0.001
    let term = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * term.powi(3)
}

/// Checks that no address on `device` repeats among `Read` events within
/// any of the given period boundaries.
///
/// `period_ends` are indices into the device's read sequence marking
/// period boundaries (exclusive). Returns the first violating address, or
/// `None` if the invariant holds.
pub fn once_per_period(
    events: &[TraceEvent],
    device: DeviceId,
    period_ends: &[usize],
) -> Option<u64> {
    let reads: Vec<u64> = events
        .iter()
        .filter(|e| e.device == device && e.kind == AccessKind::Read)
        .map(|e| e.addr)
        .collect();
    let mut start = 0usize;
    for &end in period_ends {
        let end = end.min(reads.len());
        let mut seen = std::collections::HashSet::new();
        for &addr in &reads[start..end] {
            if !seen.insert(addr) {
                return Some(addr);
            }
        }
        start = end;
    }
    // Tail after the last boundary forms the final (possibly open) period.
    let mut seen = std::collections::HashSet::new();
    reads[start..]
        .iter()
        .find(|&&addr| !seen.insert(addr))
        .copied()
}

/// The adversary-comparable summary of a trace: everything observable that
/// does **not** include concrete addresses (addresses are uniform and
/// fresh; what could differ between workloads is *volume and mix*).
///
/// Two runs over different logical workloads of the same length must
/// produce equal shapes — that is the scheduler-security test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceShape {
    /// Per-device `(reads, writes)` counts.
    pub ops_per_device: Vec<(DeviceId, u64, u64)>,
    /// Per-device bytes moved `(read, written)`.
    pub bytes_per_device: Vec<(DeviceId, u64, u64)>,
}

impl TraceShape {
    /// Summarizes a trace snapshot.
    pub fn of(events: &[TraceEvent]) -> Self {
        let mut ops: HashMap<DeviceId, (u64, u64)> = HashMap::new();
        let mut bytes: HashMap<DeviceId, (u64, u64)> = HashMap::new();
        for event in events {
            let op = ops.entry(event.device).or_default();
            let byte = bytes.entry(event.device).or_default();
            match event.kind {
                AccessKind::Read => {
                    op.0 += 1;
                    byte.0 += event.bytes;
                }
                AccessKind::Write => {
                    op.1 += 1;
                    byte.1 += event.bytes;
                }
            }
        }
        let mut ops_per_device: Vec<(DeviceId, u64, u64)> =
            ops.into_iter().map(|(d, (r, w))| (d, r, w)).collect();
        ops_per_device.sort_by_key(|&(d, _, _)| d);
        let mut bytes_per_device: Vec<(DeviceId, u64, u64)> =
            bytes.into_iter().map(|(d, (r, w))| (d, r, w)).collect();
        bytes_per_device.sort_by_key(|&(d, _, _)| d);
        Self {
            ops_per_device,
            bytes_per_device,
        }
    }
}

/// Histogram of addresses over equal-width bins (for uniformity testing
/// of leaf/partition choices).
pub fn address_histogram(
    events: &[TraceEvent],
    device: DeviceId,
    kind: AccessKind,
    bins: usize,
    address_space: u64,
) -> Vec<u64> {
    assert!(bins > 0 && address_space > 0);
    let mut counts = vec![0u64; bins];
    for event in events
        .iter()
        .filter(|e| e.device == device && e.kind == kind)
    {
        let bin = (event.addr as u128 * bins as u128 / address_space as u128) as usize;
        counts[bin.min(bins - 1)] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use oram_storage::clock::SimTime;

    fn event(device: u16, kind: AccessKind, addr: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            device: DeviceId(device),
            kind,
            addr,
            bytes: 1024,
        }
    }

    #[test]
    fn chi_square_accepts_uniform() {
        let counts = vec![100u64; 10];
        let (stat, df) = chi_square_uniform(&counts);
        assert_eq!(stat, 0.0);
        assert_eq!(df, 9);
    }

    #[test]
    fn chi_square_rejects_skew() {
        let counts = vec![1000, 10, 10, 10, 10, 10, 10, 10, 10, 10];
        let (stat, df) = chi_square_uniform(&counts);
        assert!(stat > chi_square_critical_p001(df), "stat {stat}");
    }

    #[test]
    fn critical_values_are_sane() {
        // Known p=0.001 critical values: df=9 → 27.88, df=99 → 148.2.
        assert!((chi_square_critical_p001(9) - 27.88).abs() < 0.5);
        assert!((chi_square_critical_p001(99) - 148.2).abs() < 1.5);
    }

    #[test]
    fn once_per_period_catches_repeats() {
        let events = vec![
            event(1, AccessKind::Read, 5),
            event(1, AccessKind::Read, 6),
            event(1, AccessKind::Read, 5),
        ];
        assert_eq!(once_per_period(&events, DeviceId(1), &[]), Some(5));
        // With a boundary between, the repeat is legal.
        assert_eq!(once_per_period(&events, DeviceId(1), &[2]), None);
    }

    #[test]
    fn once_per_period_ignores_writes_and_other_devices() {
        let events = vec![
            event(1, AccessKind::Write, 5),
            event(1, AccessKind::Write, 5),
            event(2, AccessKind::Read, 5),
            event(1, AccessKind::Read, 5),
        ];
        assert_eq!(once_per_period(&events, DeviceId(1), &[]), None);
    }

    #[test]
    fn shapes_compare_volume_not_addresses() {
        let a = vec![
            event(0, AccessKind::Read, 1),
            event(0, AccessKind::Write, 2),
        ];
        let b = vec![
            event(0, AccessKind::Read, 99),
            event(0, AccessKind::Write, 7),
        ];
        assert_eq!(TraceShape::of(&a), TraceShape::of(&b));
        let c = vec![event(0, AccessKind::Read, 1), event(0, AccessKind::Read, 2)];
        assert_ne!(TraceShape::of(&a), TraceShape::of(&c));
    }

    #[test]
    fn histogram_bins_addresses() {
        let events: Vec<TraceEvent> = (0..100).map(|i| event(0, AccessKind::Read, i)).collect();
        let hist = address_histogram(&events, DeviceId(0), AccessKind::Read, 4, 100);
        assert_eq!(hist, vec![25, 25, 25, 25]);
    }
}

//! Analytical models and statistical leakage analysis for the H-ORAM
//! reproduction.
//!
//! Section 5.1 of the paper derives the expected I/O costs of the
//! tree-top-cache Path ORAM baseline and of H-ORAM in closed form; this
//! crate implements those derivations so that:
//!
//! * the theoretical figure and table (Fig. 5-1, Table 5-1) can be
//!   regenerated exactly ([`model`], [`gain`], [`period`]);
//! * the simulation results can be cross-checked against the math
//!   (integration test `analytical_agreement`).
//!
//! The [`leakage`] module holds the statistical machinery the security
//! tests use against recorded bus traces: chi-square uniformity tests,
//! the once-per-period checker, and trace-shape equivalence.
//!
//! [`table`] renders aligned ASCII tables matching the paper's layout;
//! [`report`] serializes experiment outcomes as JSON for archival.

pub mod autocorr;
pub mod gain;
pub mod latency;
pub mod leakage;
pub mod model;
pub mod period;
pub mod report;
pub mod table;

pub use autocorr::{serial_correlation, zero_correlation_band};
pub use gain::{gain_series, GainPoint};
pub use latency::LatencySummary;
pub use leakage::{chi_square_uniform, once_per_period, TraceShape};
pub use model::{AccessCost, OramModel};
pub use period::PeriodOverhead;
pub use report::ExperimentReport;
pub use table::Table;

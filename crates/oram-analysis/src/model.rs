//! Closed-form I/O cost models (paper §5.1, Eqs. 5-1 … 5-4).
//!
//! Notation (the paper's): `N` = total blocks, `n` = in-memory tree slots,
//! `Z` = bucket size, `ĉ` = schedule-averaged grouping factor (Eq. 5-1),
//! block size `B`.
//!
//! * **Tree-top-cache Path ORAM** (Eq. 5-2/5-3): the tree has
//!   `log₂(n/Z) + log₂(2N/n)` levels; the bottom `log₂(2N/n)` levels live
//!   on storage, so each request moves `Z·log₂(2N/n)` blocks in each
//!   direction over the I/O bus.
//! * **H-ORAM** (Eq. 5-4): each I/O access fetches one block; after
//!   `n·ĉ/2` requests (`n/2` loads) the shuffle streams `N − n` block
//!   reads and `N` block writes. Amortized per I/O access:
//!   `1 + 2(N−n)/(n·ĉ)` block reads and `2N/(n·ĉ)` block writes.
//!
//! The paper's Figure 5-1 plots the resulting overhead reduction; see
//! [`crate::gain`] for the exact metric choices (the paper mixes
//! per-request and per-I/O-access units — both are provided and the
//! discrepancy is documented in EXPERIMENTS.md).

/// Average grouping factor ĉ over a stage schedule (Eq. 5-1): stages are
/// `(c_i, fraction_i)` with fractions summing to 1.
pub fn average_c(stages: &[(u32, f64)]) -> f64 {
    stages
        .iter()
        .map(|&(c, fraction)| c as f64 * fraction)
        .sum()
}

/// I/O cost of one logical operation, in blocks moved per direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessCost {
    /// Blocks read over the I/O bus.
    pub reads: f64,
    /// Blocks written over the I/O bus.
    pub writes: f64,
}

impl AccessCost {
    /// Weighted single-figure cost: `reads + write_cost_ratio · writes`
    /// (the paper's HDD writes ≈2× slower than reads).
    pub fn weighted(&self, write_cost_ratio: f64) -> f64 {
        self.reads + write_cost_ratio * self.writes
    }
}

/// The analytical model for a given parameter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OramModel {
    /// Total dataset blocks `N`.
    pub capacity: u64,
    /// In-memory tree slots `n`.
    pub memory_slots: u64,
    /// Bucket size `Z`.
    pub z: u32,
    /// Schedule-averaged grouping factor ĉ.
    pub average_c: f64,
}

impl OramModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity > memory_slots > 0` and `ĉ ≥ 1`.
    pub fn new(capacity: u64, memory_slots: u64, z: u32, average_c: f64) -> Self {
        assert!(memory_slots > 0, "memory must be positive");
        assert!(
            capacity > memory_slots,
            "model applies when data exceeds memory"
        );
        assert!(average_c >= 1.0, "average c must be ≥ 1");
        assert!(z > 0, "bucket size must be positive");
        Self {
            capacity,
            memory_slots,
            z,
            average_c,
        }
    }

    /// `N/n` — the storage-to-memory ratio the paper's Figure 5-1 sweeps.
    pub fn ratio(&self) -> f64 {
        self.capacity as f64 / self.memory_slots as f64
    }

    /// In-memory tree levels, `log₂(n/Z)` (Eq. 5-2, left term).
    pub fn memory_levels(&self) -> f64 {
        (self.memory_slots as f64 / self.z as f64).log2()
    }

    /// Storage-resident tree levels of the baseline, `log₂(2N/n)`
    /// (Eq. 5-2, right term).
    pub fn storage_levels(&self) -> f64 {
        (2.0 * self.capacity as f64 / self.memory_slots as f64).log2()
    }

    /// Baseline per-request I/O cost (Eq. 5-3): `Z·log₂(2N/n)` blocks in
    /// each direction.
    pub fn path_oram_io_per_request(&self) -> AccessCost {
        let blocks = self.z as f64 * self.storage_levels();
        AccessCost {
            reads: blocks,
            writes: blocks,
        }
    }

    /// H-ORAM per-I/O-access cost (Eq. 5-4): the unit the paper's
    /// Table 5-1 reports ("average overhead 4.5 KB read + 4 KB write").
    pub fn horam_io_per_access(&self) -> AccessCost {
        let n = self.memory_slots as f64;
        let cap = self.capacity as f64;
        let nc = n * self.average_c;
        AccessCost {
            reads: 1.0 + 2.0 * (cap - n) / nc,
            writes: 2.0 * cap / nc,
        }
    }

    /// H-ORAM per-*request* cost: one request is 1/ĉ of an I/O access
    /// (each load accompanies ĉ in-memory hits), so this divides
    /// [`horam_io_per_access`](Self::horam_io_per_access) by ĉ — the unit
    /// commensurable with [`path_oram_io_per_request`](Self::path_oram_io_per_request).
    pub fn horam_io_per_request(&self) -> AccessCost {
        let per_access = self.horam_io_per_access();
        AccessCost {
            reads: per_access.reads / self.average_c,
            writes: per_access.writes / self.average_c,
        }
    }

    /// Requests serviced per period, `n·ĉ/2` (Eq. 5-5).
    pub fn requests_per_period(&self) -> f64 {
        self.memory_slots as f64 * self.average_c / 2.0
    }

    /// I/O loads per period, `n/2`.
    pub fn io_per_period(&self) -> f64 {
        self.memory_slots as f64 / 2.0
    }

    /// Shuffle traffic per period in blocks: `(N − n)` reads + `N` writes
    /// (§5.1's Table 5-1 "shuffle overhead" row).
    pub fn shuffle_traffic(&self) -> AccessCost {
        AccessCost {
            reads: (self.capacity - self.memory_slots) as f64,
            writes: self.capacity as f64,
        }
    }

    /// Overhead-reduction factor per request (Fig. 5-1 family), weighting
    /// writes by `write_cost_ratio`.
    pub fn gain_per_request(&self, write_cost_ratio: f64) -> f64 {
        self.path_oram_io_per_request().weighted(write_cost_ratio)
            / self.horam_io_per_request().weighted(write_cost_ratio)
    }

    /// Overhead-reduction factor per I/O access (the paper's Table 5-1
    /// unit: 32 KB vs 8.5 KB ⇒ ≈3.8, or 32× in the no-shuffle ideal).
    pub fn gain_per_io_access(&self, write_cost_ratio: f64) -> f64 {
        self.path_oram_io_per_request().weighted(write_cost_ratio)
            / self.horam_io_per_access().weighted(write_cost_ratio)
    }

    /// The no-shuffle ideal gain (§5.1 end: "32 times faster" for the
    /// Table 5-1 point): baseline cost over the bare one-block fetch.
    pub fn gain_ideal_no_shuffle(&self, write_cost_ratio: f64) -> f64 {
        self.path_oram_io_per_request().weighted(write_cost_ratio) / 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 5-1 parameter point: 1 GB data, 128 MB memory,
    /// 1 KB blocks, Z = 4, ĉ = 4.
    fn table_5_1_model() -> OramModel {
        OramModel::new(1 << 20, 1 << 17, 4, 4.0)
    }

    #[test]
    fn average_c_matches_paper_schedule() {
        let c = average_c(&[(1, 0.20), (3, 0.13), (5, 0.67)]);
        assert!((c - 3.94).abs() < 1e-12);
    }

    #[test]
    fn storage_levels_match_table_5_1() {
        // log2(2N/n) = log2(2·2^20/2^17) = 4 extra levels (paper: "16+4").
        let m = table_5_1_model();
        assert_eq!(m.storage_levels(), 4.0);
        assert_eq!(m.memory_levels(), 15.0);
    }

    #[test]
    fn baseline_cost_is_16kb_each_way() {
        // Z·log2(2N/n) = 16 blocks = 16 KB with 1 KB blocks (Table 5-1).
        let cost = table_5_1_model().path_oram_io_per_request();
        assert_eq!(cost.reads, 16.0);
        assert_eq!(cost.writes, 16.0);
    }

    #[test]
    fn horam_cost_is_4_5_read_4_write() {
        // Table 5-1 average overhead row: 4.5 KB reads + 4 KB writes.
        let cost = table_5_1_model().horam_io_per_access();
        assert!((cost.reads - 4.5).abs() < 1e-9, "reads {}", cost.reads);
        assert!((cost.writes - 4.0).abs() < 1e-9, "writes {}", cost.writes);
    }

    #[test]
    fn requests_per_period_matches_eq_5_5() {
        assert_eq!(table_5_1_model().requests_per_period(), 262_144.0);
        assert_eq!(table_5_1_model().io_per_period(), 65_536.0);
    }

    #[test]
    fn shuffle_traffic_matches_table_5_1() {
        // 0.875 GB reads + 1 GB writes, in blocks.
        let traffic = table_5_1_model().shuffle_traffic();
        assert_eq!(traffic.reads, (1 << 20) as f64 - (1 << 17) as f64);
        assert_eq!(traffic.writes, (1 << 20) as f64);
    }

    #[test]
    fn ideal_no_shuffle_gain_is_32x() {
        // §5.1: "without considering the shuffle … 32 times faster".
        let gain = table_5_1_model().gain_ideal_no_shuffle(1.0);
        assert_eq!(gain, 32.0);
    }

    #[test]
    fn per_access_gain_is_modest_per_request_gain_is_large() {
        let m = table_5_1_model();
        let per_access = m.gain_per_io_access(1.0);
        let per_request = m.gain_per_request(1.0);
        assert!((per_access - 32.0 / 8.5).abs() < 1e-9);
        assert!((per_request - 4.0 * 32.0 / 8.5).abs() < 1e-9);
    }

    #[test]
    fn larger_c_increases_gain() {
        let base = OramModel::new(1 << 20, 1 << 17, 4, 2.0).gain_per_request(1.0);
        let more = OramModel::new(1 << 20, 1 << 17, 4, 8.0).gain_per_request(1.0);
        assert!(more > base);
    }

    #[test]
    fn gain_decays_for_huge_ratios() {
        // Shuffle cost dominates as N/n grows: gain falls.
        let small = OramModel::new(1 << 18, 1 << 17, 4, 4.0).gain_per_request(1.0);
        let huge = OramModel::new(1 << 27, 1 << 17, 4, 4.0).gain_per_request(1.0);
        assert!(small > huge);
    }

    #[test]
    #[should_panic(expected = "data exceeds memory")]
    fn model_requires_overflow_regime() {
        OramModel::new(100, 100, 4, 4.0);
    }
}

//! Table 5-1: overhead comparison for one period.
//!
//! Reconstructs every row of the paper's table from the closed-form model
//! for arbitrary parameter points (the paper's: 1 GB data, 128 MB memory,
//! 1 KB blocks).

use crate::model::OramModel;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// All quantities of the paper's Table 5-1 for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodOverhead {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// H-ORAM storage footprint in bytes (`N` blocks; headroom reported
    /// separately by the simulator).
    pub horam_storage_bytes: u64,
    /// Baseline storage footprint in bytes (≈`2N` blocks).
    pub path_storage_bytes: u64,
    /// Memory footprint in bytes (both systems).
    pub memory_bytes: u64,
    /// In-memory tree levels (H-ORAM's whole tree; the baseline's top).
    pub memory_levels: f64,
    /// Baseline tree levels (memory + storage).
    pub path_levels: f64,
    /// Requests serviced per period: H-ORAM `n·ĉ/2` vs. baseline `n/2`
    /// (the paper normalizes the baseline to the same I/O count).
    pub horam_requests_per_period: f64,
    /// Baseline requests for the same I/O budget.
    pub path_requests_per_period: f64,
    /// H-ORAM access overhead per I/O access, KB read.
    pub horam_access_read_kb: f64,
    /// Baseline access overhead per request, KB read (= KB written).
    pub path_access_kb_each_way: f64,
    /// Shuffle overhead per period: bytes read.
    pub shuffle_read_bytes: u64,
    /// Shuffle overhead per period: bytes written.
    pub shuffle_write_bytes: u64,
    /// H-ORAM amortized overhead per I/O access: KB read.
    pub horam_avg_read_kb: f64,
    /// H-ORAM amortized overhead per I/O access: KB written.
    pub horam_avg_write_kb: f64,
}

impl PeriodOverhead {
    /// Computes the table for a model and block size.
    pub fn compute(model: &OramModel, block_bytes: u64) -> Self {
        let horam_access = model.horam_io_per_access();
        let path_access = model.path_oram_io_per_request();
        let shuffle = model.shuffle_traffic();
        let kb = block_bytes as f64 / 1024.0;
        Self {
            block_bytes,
            horam_storage_bytes: model.capacity * block_bytes,
            path_storage_bytes: 2 * model.capacity * block_bytes,
            memory_bytes: model.memory_slots * block_bytes,
            memory_levels: model.memory_levels(),
            path_levels: model.memory_levels() + model.storage_levels(),
            horam_requests_per_period: model.requests_per_period(),
            path_requests_per_period: model.io_per_period(),
            horam_access_read_kb: kb,
            path_access_kb_each_way: path_access.reads * kb,
            shuffle_read_bytes: (shuffle.reads * block_bytes as f64) as u64,
            shuffle_write_bytes: (shuffle.writes * block_bytes as f64) as u64,
            horam_avg_read_kb: horam_access.reads * kb,
            horam_avg_write_kb: horam_access.writes * kb,
        }
    }

    /// The paper's exact parameter point (1 GB / 128 MB / 1 KB, ĉ = 4).
    pub fn paper_point() -> Self {
        Self::compute(&OramModel::new(1 << 20, 1 << 17, 4, 4.0), 1024)
    }

    /// Renders the paper's two-column table.
    pub fn to_table(&self) -> Table {
        let gb = |bytes: u64| format!("{:.3} GB", bytes as f64 / (1u64 << 30) as f64);
        let mb = |bytes: u64| format!("{:.0} MB", bytes as f64 / (1u64 << 20) as f64);
        let mut table = Table::new(vec!["", "H-ORAM", "Path ORAM"]);
        table.row(vec![
            "Storage/Memory Size".into(),
            format!(
                "{} / {}",
                gb(self.horam_storage_bytes),
                mb(self.memory_bytes)
            ),
            format!(
                "{} / {}",
                gb(self.path_storage_bytes),
                mb(self.memory_bytes)
            ),
        ]);
        table.row(vec![
            "Path ORAM level".into(),
            format!("{:.0}", self.memory_levels),
            format!(
                "{:.0} + {:.0}",
                self.memory_levels,
                self.path_levels - self.memory_levels
            ),
        ]);
        table.row(vec![
            "Requests Serviced".into(),
            format!("{:.0}", self.horam_requests_per_period),
            format!("{:.0}", self.path_requests_per_period),
        ]);
        table.row(vec![
            "Access Overhead".into(),
            format!("{:.0} KB (read)", self.horam_access_read_kb),
            format!(
                "{:.0} KB (read) + {:.0} KB (write)",
                self.path_access_kb_each_way, self.path_access_kb_each_way
            ),
        ]);
        table.row(vec![
            "Shuffle Overhead".into(),
            format!(
                "{} (read) + {} (write)",
                gb(self.shuffle_read_bytes),
                gb(self.shuffle_write_bytes)
            ),
            "N/A".into(),
        ]);
        table.row(vec![
            "Average Overhead".into(),
            format!(
                "{:.1} KB (read) + {:.0} KB (write)",
                self.horam_avg_read_kb, self.horam_avg_write_kb
            ),
            format!(
                "{:.0} KB (read) + {:.0} KB (write)",
                self.path_access_kb_each_way, self.path_access_kb_each_way
            ),
        ]);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_reproduces_table_5_1() {
        let t = PeriodOverhead::paper_point();
        assert_eq!(t.horam_storage_bytes, 1 << 30); // 1 GB
        assert_eq!(t.path_storage_bytes, 2 << 30); // ≈ paper's 1.875 GB (2N convention)
        assert_eq!(t.memory_bytes, 128 << 20); // 128 MB
        assert_eq!(t.path_levels, 19.0); // paper counts 16 + 4 = 20 (inclusive)
        assert_eq!(t.horam_requests_per_period, 262_144.0);
        assert_eq!(t.path_requests_per_period, 65_536.0);
        assert_eq!(t.horam_access_read_kb, 1.0);
        assert_eq!(t.path_access_kb_each_way, 16.0);
        // 0.875 GB read + 1 GB written.
        assert_eq!(t.shuffle_read_bytes, (1u64 << 30) - (128 << 20));
        assert_eq!(t.shuffle_write_bytes, 1 << 30);
        assert!((t.horam_avg_read_kb - 4.5).abs() < 1e-9);
        assert!((t.horam_avg_write_kb - 4.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders_key_cells() {
        let rendered = PeriodOverhead::paper_point().to_table().render();
        assert!(rendered.contains("262144"));
        assert!(rendered.contains("4.5 KB"));
        assert!(rendered.contains("16 KB"));
        assert!(rendered.contains("N/A"));
    }
}

//! Experiment-result archival.
//!
//! Every bench binary emits an [`ExperimentReport`]: the experiment id
//! (table/figure number), the paper's reference values, the measured
//! values, and free-form notes. Reports print as aligned tables and
//! serialize to JSON so EXPERIMENTS.md can be regenerated from artifacts.

use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// One compared quantity: paper vs. measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Quantity name (e.g. "Total Time").
    pub metric: String,
    /// The paper's reported value, as printed there.
    pub paper: String,
    /// Our measured/computed value.
    pub measured: String,
}

/// A full experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier ("table-5-3", "fig-5-1", …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Workload / parameter description.
    pub setup: String,
    /// Compared quantities.
    pub rows: Vec<ComparisonRow>,
    /// Caveats, substitutions, calibration notes.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, setup: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            setup: setup.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a compared quantity.
    pub fn compare(
        &mut self,
        metric: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
    ) -> &mut Self {
        self.rows.push(ComparisonRow {
            metric: metric.into(),
            paper: paper.into(),
            measured: measured.into(),
        });
        self
    }

    /// Adds a note.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} ==\nSetup: {}\n\n",
            self.id, self.title, self.setup
        );
        let mut table = Table::new(vec!["metric", "paper", "measured"]);
        for row in &self.rows {
            table.row(vec![
                row.metric.clone(),
                row.paper.clone(),
                row.measured.clone(),
            ]);
        }
        out.push_str(&table.render());
        if !self.notes.is_empty() {
            out.push_str("\nNotes:\n");
            for note in &self.notes {
                out.push_str(&format!("  - {note}\n"));
            }
        }
        out
    }

    /// Saves the report as JSON.
    ///
    /// # Errors
    ///
    /// I/O and serialization errors surface as [`io::Error`].
    pub fn save_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a report from JSON.
    ///
    /// # Errors
    ///
    /// I/O and deserialization errors surface as [`io::Error`].
    pub fn load_json(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_everything() {
        let mut report = ExperimentReport::new("table-5-3", "Small dataset", "64 MB, 25k requests");
        report
            .compare("Total Time", "1290 ms", "1350 ms")
            .note("simulated HDD");
        let text = report.render();
        assert!(text.contains("table-5-3"));
        assert!(text.contains("1290 ms"));
        assert!(text.contains("simulated HDD"));
    }

    #[test]
    fn json_roundtrip() {
        let mut report = ExperimentReport::new("fig-5-1", "Gain", "sweep");
        report.compare("peak", "16x", "15.1x");
        let dir = std::env::temp_dir().join("horam-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        report.save_json(&path).unwrap();
        assert_eq!(ExperimentReport::load_json(&path).unwrap(), report);
        std::fs::remove_file(&path).ok();
    }
}

//! Aligned ASCII tables matching the paper's layout.

use std::fmt;

/// A simple column-aligned table renderer.
///
/// # Example
///
/// ```
/// use oram_analysis::table::Table;
///
/// let mut table = Table::new(vec!["metric", "H-ORAM", "Path ORAM"]);
/// table.row(vec!["Total Time".into(), "1.29 s".into(), "25.58 s".into()]);
/// let text = table.render();
/// assert!(text.contains("H-ORAM"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Self {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..columns {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut table = Table::new(vec!["a", "bb"]);
        table.row(vec!["wide cell".into(), "x".into()]);
        table.row(vec!["y".into(), "z".into()]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in all data rows.
        let offset = lines[2].find('x').unwrap();
        assert_eq!(lines[3].find('z').unwrap(), offset);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        Table::new(vec!["a", "b"]).row(vec!["only one".into()]);
    }

    #[test]
    fn display_matches_render() {
        let mut table = Table::new(vec!["k", "v"]);
        table.row(vec!["a".into(), "1".into()]);
        assert_eq!(table.to_string(), table.render());
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }
}

//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used throughout the workspace for block encryption ([`crate::seal`]), key
//! derivation ([`crate::keys`]) and deterministic simulation randomness
//! ([`crate::rng`]). The implementation follows the RFC 8439 construction:
//! a 256-bit key, a 96-bit nonce and a 32-bit block counter, 20 rounds.
//!
//! Test vectors were generated with OpenSSL 3.5 (`openssl enc -chacha20`),
//! which agrees byte-for-byte with the RFC 8439 block-function vector.

/// Key length in bytes (256-bit key).
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (96-bit nonce, RFC 8439 layout).
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The four ChaCha constants: ASCII `"expand 32-byte k"` as little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 keystream generator bound to one key and nonce.
///
/// The type is cheap to clone; cloning captures the current stream position.
///
/// # Example
///
/// ```
/// use oram_crypto::chacha::ChaCha20;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut data = *b"attack at dawn";
///
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_ne!(&data, b"attack at dawn");
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

impl ChaCha20 {
    /// Creates a keystream generator starting at block counter 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        Self::with_counter(key, nonce, 0)
    }

    /// Creates a keystream generator starting at the given block counter.
    ///
    /// RFC 8439 uses an initial counter of 1 for AEAD payloads; plain stream
    /// encryption conventionally starts at 0.
    pub fn with_counter(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut key_words = [0u32; 8];
        for (i, word) in key_words.iter_mut().enumerate() {
            *word = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        let mut nonce_words = [0u32; 3];
        for (i, word) in nonce_words.iter_mut().enumerate() {
            *word = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        Self {
            key: key_words,
            nonce: nonce_words,
            counter,
        }
    }

    /// Returns the current block counter (the next block to be produced by
    /// [`apply_keystream`](Self::apply_keystream)).
    pub fn counter(&self) -> u32 {
        self.counter
    }

    /// Repositions the stream at the given block counter.
    pub fn seek(&mut self, counter: u32) {
        self.counter = counter;
    }

    /// Produces the 64-byte keystream block for an explicit counter value,
    /// without touching the stream position.
    pub fn keystream_block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data`, advancing the stream position.
    ///
    /// Encryption and decryption are the same operation. The stream position
    /// advances by whole blocks, so interleaving calls with non-multiple-of-64
    /// lengths produces a *block-aligned* stream per call; callers that need
    /// byte-granular resume should buffer externally (the ORAM stack always
    /// encrypts whole blocks in one call).
    ///
    /// # Panics
    ///
    /// Panics if the counter would overflow `u32` (more than 256 GiB of
    /// keystream from a single (key, nonce) pair), which indicates key
    /// management misuse.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let blocks = data.len().div_ceil(BLOCK_LEN) as u64;
        assert!(
            u64::from(self.counter) + blocks <= u64::from(u32::MAX) + 1,
            "chacha20 counter overflow: keystream exhausted for this (key, nonce)"
        );
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.keystream_block(self.counter);
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
            self.counter = self.counter.wrapping_add(1);
        }
    }

    /// One-shot convenience: XORs the keystream for `(key, nonce, counter)`
    /// into `data`.
    pub fn apply(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        Self::with_counter(key, nonce, counter).apply_keystream(data);
    }
}

/// The ChaCha quarter round on state indices `(a, b, c, d)`.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn rfc_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    fn rfc_nonce() -> [u8; NONCE_LEN] {
        [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0]
    }

    /// RFC 8439 §2.3.2 block-function vector, regenerated with OpenSSL 3.5:
    /// key 00..1f, nonce 000000090000004a00000000, counter 1.
    #[test]
    fn rfc8439_block_counter_1() {
        let cipher = ChaCha20::new(&rfc_key(), &rfc_nonce());
        let block = cipher.keystream_block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// Second block of the same stream (counter 2), from OpenSSL 3.5.
    #[test]
    fn rfc8439_block_counter_2() {
        let cipher = ChaCha20::new(&rfc_key(), &rfc_nonce());
        let block = cipher.keystream_block(2);
        assert_eq!(
            hex(&block),
            "0a88837739d7bf4ef8ccacb0ea2bb9d69d56c394aa351dfda5bf459f0a2e9fe8\
             e721f89255f9c486bf21679c683d4f9c5cf2fa27865526005b06ca374c86af3b"
        );
    }

    /// The well-known all-zero key/nonce first keystream block.
    #[test]
    fn zero_key_zero_nonce_block_0() {
        let cipher = ChaCha20::new(&[0u8; KEY_LEN], &[0u8; NONCE_LEN]);
        let block = cipher.keystream_block(0);
        assert_eq!(
            hex(&block),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    #[test]
    fn streaming_matches_per_block_generation() {
        let mut stream = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), 1);
        let mut data = [0u8; 128];
        stream.apply_keystream(&mut data);
        let reference = ChaCha20::new(&rfc_key(), &rfc_nonce());
        assert_eq!(data[..64], reference.keystream_block(1));
        assert_eq!(data[64..], reference.keystream_block(2));
        assert_eq!(stream.counter(), 3);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = [0xAB; KEY_LEN];
        let nonce = [0xCD; NONCE_LEN];
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        ChaCha20::apply(&key, &nonce, 5, &mut data);
        assert_ne!(data, original);
        ChaCha20::apply(&key, &nonce, 5, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_produce_unrelated_streams() {
        let key = [3u8; KEY_LEN];
        let a = ChaCha20::new(&key, &[0u8; NONCE_LEN]).keystream_block(0);
        let b = ChaCha20::new(&key, &[1u8; NONCE_LEN]).keystream_block(0);
        assert_ne!(a, b);
        // Keystream blocks should differ in roughly half their bits.
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 150, "only {differing} differing bits");
    }

    #[test]
    fn seek_repositions_stream() {
        let key = rfc_key();
        let nonce = rfc_nonce();
        let mut stream = ChaCha20::new(&key, &nonce);
        let mut first = [0u8; 64];
        stream.apply_keystream(&mut first);
        stream.seek(0);
        let mut again = [0u8; 64];
        stream.apply_keystream(&mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn partial_block_lengths_are_prefixes() {
        let key = rfc_key();
        let nonce = rfc_nonce();
        let mut long = [0u8; 64];
        ChaCha20::new(&key, &nonce).apply_keystream(&mut long);
        for len in [1usize, 13, 31, 63] {
            let mut short = vec![0u8; len];
            ChaCha20::new(&key, &nonce).apply_keystream(&mut short);
            assert_eq!(short[..], long[..len], "length {len} not a prefix");
        }
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        let mut stream = ChaCha20::with_counter(&[0u8; KEY_LEN], &[0u8; NONCE_LEN], u32::MAX);
        let mut data = [0u8; 128]; // needs 2 blocks, only 1 remains
        stream.apply_keystream(&mut data);
    }
}

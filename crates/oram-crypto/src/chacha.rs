//! ChaCha20 stream cipher (RFC 8439).
//!
//! Used throughout the workspace for block encryption ([`crate::seal`]), key
//! derivation ([`crate::keys`]) and deterministic simulation randomness
//! ([`crate::rng`]). The implementation follows the RFC 8439 construction:
//! a 256-bit key, a 96-bit nonce and a 32-bit block counter, 20 rounds.
//!
//! Test vectors were generated with OpenSSL 3.5 (`openssl enc -chacha20`),
//! which agrees byte-for-byte with the RFC 8439 block-function vector.
//!
//! # The batch hot path
//!
//! The ORAM rebuild stream seals and opens every physical slot once per
//! shuffle period, so per-call overhead here is a top-line cost. Three
//! batch optimizations keep it down, all bit-identical to the scalar path:
//!
//! * **cached key schedule** — [`ChaChaKey`] parses the 32 key bytes into
//!   state words once; long-lived callers (`BlockSealer`) construct
//!   streams from it instead of re-parsing the raw key per block;
//! * **wide keystream generation** — runs of four keystream blocks are
//!   computed together, each quarter-round pass advancing four
//!   independent lanes (plain `u32` lane loops the compiler
//!   auto-vectorizes), instead of one 16-word state at a time;
//! * **fused copy+XOR** — [`ChaCha20::apply_keystream_into`] writes
//!   `src ⊕ keystream` straight into a destination buffer, removing the
//!   copy-then-XOR-in-place round trip from the borrowing seal path.

/// Key length in bytes (256-bit key).
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (96-bit nonce, RFC 8439 layout).
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// Keystream blocks generated per wide pass.
const LANES: usize = 4;
/// Bytes produced by one wide pass.
const WIDE_LEN: usize = BLOCK_LEN * LANES;

/// The four ChaCha constants: ASCII `"expand 32-byte k"` as little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A parsed ChaCha20 key schedule: the eight little-endian state words of
/// a 256-bit key.
///
/// Parsing is trivial but shows up when done once per sealed block; a
/// [`ChaChaKey`] is computed once per key lifetime (e.g. per
/// `BlockSealer` epoch) and shared by every stream built from it.
#[derive(Clone, PartialEq, Eq)]
pub struct ChaChaKey {
    words: [u32; 8],
}

impl std::fmt::Debug for ChaChaKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaChaKey")
            .field("words", &"<redacted>")
            .finish()
    }
}

impl ChaChaKey {
    /// Parses a raw 256-bit key into its state words.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut words = [0u32; 8];
        for (i, word) in words.iter_mut().enumerate() {
            *word = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        Self { words }
    }

    /// The key's eight state words (rows 4..12 of the ChaCha state).
    pub fn words(&self) -> &[u32; 8] {
        &self.words
    }
}

/// A ChaCha20 keystream generator bound to one key and nonce.
///
/// The type is cheap to clone; cloning captures the current stream position.
///
/// # Example
///
/// ```
/// use oram_crypto::chacha::ChaCha20;
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut data = *b"attack at dawn";
///
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_ne!(&data, b"attack at dawn");
/// ChaCha20::new(&key, &nonce).apply_keystream(&mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
}

impl ChaCha20 {
    /// Creates a keystream generator starting at block counter 0.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        Self::with_counter(key, nonce, 0)
    }

    /// Creates a keystream generator starting at the given block counter.
    ///
    /// RFC 8439 uses an initial counter of 1 for AEAD payloads; plain stream
    /// encryption conventionally starts at 0.
    pub fn with_counter(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        Self::from_key(&ChaChaKey::new(key), nonce, counter)
    }

    /// Creates a keystream generator from a pre-parsed key schedule —
    /// the batch entry point (no per-call key parsing).
    pub fn from_key(key: &ChaChaKey, nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut nonce_words = [0u32; 3];
        for (i, word) in nonce_words.iter_mut().enumerate() {
            *word = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        Self {
            key: key.words,
            nonce: nonce_words,
            counter,
        }
    }

    /// Returns the current block counter (the next block to be produced by
    /// [`apply_keystream`](Self::apply_keystream)).
    pub fn counter(&self) -> u32 {
        self.counter
    }

    /// Repositions the stream at the given block counter.
    pub fn seek(&mut self, counter: u32) {
        self.counter = counter;
    }

    /// The initial 16-word state for an explicit counter value.
    #[inline(always)]
    fn state(&self, counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        state
    }

    /// Produces the 64-byte keystream block for an explicit counter value,
    /// without touching the stream position.
    pub fn keystream_block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let state = self.state(counter);
        let mut working = state;
        for _ in 0..10 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Produces four consecutive keystream blocks (`counter .. counter+4`)
    /// in one pass. The quarter rounds advance four independent lanes per
    /// operation — plain `u32` lane loops the compiler auto-vectorizes —
    /// so the per-pass bookkeeping amortizes over 256 bytes of keystream.
    fn keystream_wide(&self, counter: u32) -> [u8; WIDE_LEN] {
        let template = self.state(counter);
        let mut init = [[0u32; LANES]; 16];
        for (i, row) in init.iter_mut().enumerate() {
            *row = [template[i]; LANES];
        }
        for (lane, cell) in init[12].iter_mut().enumerate() {
            *cell = counter.wrapping_add(lane as u32);
        }

        let mut working = init;
        for _ in 0..10 {
            // Column round.
            quarter_round_wide(&mut working, 0, 4, 8, 12);
            quarter_round_wide(&mut working, 1, 5, 9, 13);
            quarter_round_wide(&mut working, 2, 6, 10, 14);
            quarter_round_wide(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round_wide(&mut working, 0, 5, 10, 15);
            quarter_round_wide(&mut working, 1, 6, 11, 12);
            quarter_round_wide(&mut working, 2, 7, 8, 13);
            quarter_round_wide(&mut working, 3, 4, 9, 14);
        }

        let mut out = [0u8; WIDE_LEN];
        for lane in 0..LANES {
            for i in 0..16 {
                let word = working[i][lane].wrapping_add(init[i][lane]);
                let at = lane * BLOCK_LEN + 4 * i;
                out[at..at + 4].copy_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    /// Asserts the counter can cover `data` and returns the block count.
    fn check_budget(&self, len: usize) -> u64 {
        let blocks = len.div_ceil(BLOCK_LEN) as u64;
        assert!(
            u64::from(self.counter) + blocks <= u64::from(u32::MAX) + 1,
            "chacha20 counter overflow: keystream exhausted for this (key, nonce)"
        );
        blocks
    }

    /// XORs the keystream into `data`, advancing the stream position.
    ///
    /// Encryption and decryption are the same operation. The stream position
    /// advances by whole blocks, so interleaving calls with non-multiple-of-64
    /// lengths produces a *block-aligned* stream per call; callers that need
    /// byte-granular resume should buffer externally (the ORAM stack always
    /// encrypts whole blocks in one call).
    ///
    /// # Panics
    ///
    /// Panics if the counter would overflow `u32` (more than 256 GiB of
    /// keystream from a single (key, nonce) pair), which indicates key
    /// management misuse.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        self.check_budget(data.len());
        let mut offset = 0;
        // Wide passes while ≥4 blocks remain: every generated block is
        // consumed, so the wide path is never wasted work.
        while data.len() - offset > 3 * BLOCK_LEN {
            let take = WIDE_LEN.min(data.len() - offset);
            let ks = self.keystream_wide(self.counter);
            for (byte, k) in data[offset..offset + take].iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
            self.counter = self.counter.wrapping_add(take.div_ceil(BLOCK_LEN) as u32);
            offset += take;
        }
        for chunk in data[offset..].chunks_mut(BLOCK_LEN) {
            let ks = self.keystream_block(self.counter);
            for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
                *byte ^= k;
            }
            self.counter = self.counter.wrapping_add(1);
        }
    }

    /// Writes `src ⊕ keystream` into `dst`, advancing the stream position —
    /// the fused copy+XOR used by the borrowing seal path (one pass over
    /// the bytes instead of copy-then-encrypt-in-place). Bit-identical to
    /// copying `src` into `dst` and calling
    /// [`apply_keystream`](Self::apply_keystream).
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths differ, or on counter overflow as
    /// [`apply_keystream`](Self::apply_keystream).
    pub fn apply_keystream_into(&mut self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        self.check_budget(src.len());
        let mut offset = 0;
        while src.len() - offset > 3 * BLOCK_LEN {
            let take = WIDE_LEN.min(src.len() - offset);
            let ks = self.keystream_wide(self.counter);
            for ((out, byte), k) in dst[offset..offset + take]
                .iter_mut()
                .zip(src[offset..offset + take].iter())
                .zip(ks.iter())
            {
                *out = byte ^ k;
            }
            self.counter = self.counter.wrapping_add(take.div_ceil(BLOCK_LEN) as u32);
            offset += take;
        }
        let mut at = offset;
        while at < src.len() {
            let take = BLOCK_LEN.min(src.len() - at);
            let ks = self.keystream_block(self.counter);
            for ((out, byte), k) in dst[at..at + take]
                .iter_mut()
                .zip(src[at..at + take].iter())
                .zip(ks.iter())
            {
                *out = byte ^ k;
            }
            self.counter = self.counter.wrapping_add(1);
            at += take;
        }
    }

    /// One-shot convenience: XORs the keystream for `(key, nonce, counter)`
    /// into `data`.
    pub fn apply(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        Self::with_counter(key, nonce, counter).apply_keystream(data);
    }
}

/// The ChaCha quarter round on state indices `(a, b, c, d)`.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The quarter round over four independent lanes. Each statement of the
/// scalar round becomes a lane loop over plain `u32`s, which the compiler
/// turns into 4-wide vector ops where the target supports them.
// Indexed lane loops are deliberate: every statement reads one state row
// and writes another (`s[a][l]`, `s[d][l]`), which zipped iterators cannot
// express without splitting borrows and defeating the vectorizable shape.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn quarter_round_wide(s: &mut [[u32; LANES]; 16], a: usize, b: usize, c: usize, d: usize) {
    for l in 0..LANES {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..LANES {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(16);
    }
    for l in 0..LANES {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..LANES {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(12);
    }
    for l in 0..LANES {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
    }
    for l in 0..LANES {
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(8);
    }
    for l in 0..LANES {
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
    }
    for l in 0..LANES {
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(7);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn rfc_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    fn rfc_nonce() -> [u8; NONCE_LEN] {
        [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0]
    }

    /// RFC 8439 §2.3.2 block-function vector, regenerated with OpenSSL 3.5:
    /// key 00..1f, nonce 000000090000004a00000000, counter 1.
    #[test]
    fn rfc8439_block_counter_1() {
        let cipher = ChaCha20::new(&rfc_key(), &rfc_nonce());
        let block = cipher.keystream_block(1);
        assert_eq!(
            hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    /// Second block of the same stream (counter 2), from OpenSSL 3.5.
    #[test]
    fn rfc8439_block_counter_2() {
        let cipher = ChaCha20::new(&rfc_key(), &rfc_nonce());
        let block = cipher.keystream_block(2);
        assert_eq!(
            hex(&block),
            "0a88837739d7bf4ef8ccacb0ea2bb9d69d56c394aa351dfda5bf459f0a2e9fe8\
             e721f89255f9c486bf21679c683d4f9c5cf2fa27865526005b06ca374c86af3b"
        );
    }

    /// The well-known all-zero key/nonce first keystream block.
    #[test]
    fn zero_key_zero_nonce_block_0() {
        let cipher = ChaCha20::new(&[0u8; KEY_LEN], &[0u8; NONCE_LEN]);
        let block = cipher.keystream_block(0);
        assert_eq!(
            hex(&block),
            "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7\
             da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586"
        );
    }

    #[test]
    fn streaming_matches_per_block_generation() {
        let mut stream = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), 1);
        let mut data = [0u8; 128];
        stream.apply_keystream(&mut data);
        let reference = ChaCha20::new(&rfc_key(), &rfc_nonce());
        assert_eq!(data[..64], reference.keystream_block(1));
        assert_eq!(data[64..], reference.keystream_block(2));
        assert_eq!(stream.counter(), 3);
    }

    #[test]
    fn cached_key_schedule_matches_raw_key() {
        let schedule = ChaChaKey::new(&rfc_key());
        let from_schedule = ChaCha20::from_key(&schedule, &rfc_nonce(), 1);
        let from_raw = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), 1);
        assert_eq!(from_schedule, from_raw);
        assert_eq!(
            from_schedule.keystream_block(1),
            from_raw.keystream_block(1)
        );
    }

    #[test]
    fn wide_keystream_matches_per_block_path() {
        // Any length that crosses the 4-block wide path must agree byte
        // for byte with the scalar block function.
        let reference = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), 7);
        for len in [193usize, 256, 257, 300, 512, 1000, 1024, 64 * 20 + 5] {
            let mut data = vec![0u8; len];
            let mut stream = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), 7);
            stream.apply_keystream(&mut data);
            for (i, chunk) in data.chunks(BLOCK_LEN).enumerate() {
                let block = reference.keystream_block(7 + i as u32);
                assert_eq!(chunk, &block[..chunk.len()], "len {len}, block {i}");
            }
            assert_eq!(stream.counter(), 7 + len.div_ceil(BLOCK_LEN) as u32);
        }
    }

    #[test]
    fn apply_keystream_into_fuses_copy_and_xor() {
        let src: Vec<u8> = (0..777).map(|i| (i * 31 % 256) as u8).collect();
        for counter in [0u32, 9] {
            let mut fused = vec![0u8; src.len()];
            let mut stream = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), counter);
            stream.apply_keystream_into(&src, &mut fused);

            let mut copied = src.clone();
            let mut reference = ChaCha20::with_counter(&rfc_key(), &rfc_nonce(), counter);
            reference.apply_keystream(&mut copied);
            assert_eq!(fused, copied);
            assert_eq!(stream.counter(), reference.counter());
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_keystream_into_checks_lengths() {
        let mut stream = ChaCha20::new(&rfc_key(), &rfc_nonce());
        let mut dst = [0u8; 3];
        stream.apply_keystream_into(&[0u8; 4], &mut dst);
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = [0xAB; KEY_LEN];
        let nonce = [0xCD; NONCE_LEN];
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 256) as u8).collect();
        let mut data = original.clone();
        ChaCha20::apply(&key, &nonce, 5, &mut data);
        assert_ne!(data, original);
        ChaCha20::apply(&key, &nonce, 5, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_produce_unrelated_streams() {
        let key = [3u8; KEY_LEN];
        let a = ChaCha20::new(&key, &[0u8; NONCE_LEN]).keystream_block(0);
        let b = ChaCha20::new(&key, &[1u8; NONCE_LEN]).keystream_block(0);
        assert_ne!(a, b);
        // Keystream blocks should differ in roughly half their bits.
        let differing: u32 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert!(differing > 150, "only {differing} differing bits");
    }

    #[test]
    fn seek_repositions_stream() {
        let key = rfc_key();
        let nonce = rfc_nonce();
        let mut stream = ChaCha20::new(&key, &nonce);
        let mut first = [0u8; 64];
        stream.apply_keystream(&mut first);
        stream.seek(0);
        let mut again = [0u8; 64];
        stream.apply_keystream(&mut again);
        assert_eq!(first, again);
    }

    #[test]
    fn partial_block_lengths_are_prefixes() {
        let key = rfc_key();
        let nonce = rfc_nonce();
        let mut long = [0u8; 64];
        ChaCha20::new(&key, &nonce).apply_keystream(&mut long);
        for len in [1usize, 13, 31, 63] {
            let mut short = vec![0u8; len];
            ChaCha20::new(&key, &nonce).apply_keystream(&mut short);
            assert_eq!(short[..], long[..len], "length {len} not a prefix");
        }
    }

    #[test]
    fn debug_redacts_key_schedule() {
        let debug = format!("{:?}", ChaChaKey::new(&rfc_key()));
        assert!(debug.contains("redacted"));
        assert!(!debug.contains("0x"));
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        let mut stream = ChaCha20::with_counter(&[0u8; KEY_LEN], &[0u8; NONCE_LEN], u32::MAX);
        let mut data = [0u8; 128]; // needs 2 blocks, only 1 remains
        stream.apply_keystream(&mut data);
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn wide_path_respects_counter_budget() {
        let mut stream = ChaCha20::with_counter(&[0u8; KEY_LEN], &[0u8; NONCE_LEN], u32::MAX - 2);
        let mut data = [0u8; WIDE_LEN]; // needs 4 blocks, only 3 remain
        stream.apply_keystream(&mut data);
    }
}

//! Master-key handling and epoch/domain sub-key derivation.
//!
//! Every reshuffle of the H-ORAM storage layer begins a new *epoch*: the
//! whole dataset is re-encrypted and re-permuted under fresh keys so that an
//! adversary cannot correlate block positions across periods. This module
//! derives those per-epoch keys deterministically from one [`MasterKey`]
//! (held inside the trusted control layer) using ChaCha20 as a PRF-based KDF.

use crate::chacha::{ChaCha20, KEY_LEN, NONCE_LEN};
use crate::siphash::siphash24;
use rand::RngCore;
use std::fmt;

/// The root secret of an ORAM instance.
///
/// All encryption, MAC, PRP and randomness keys are derived from this value;
/// in a deployment it would live inside the secure hardware (SGX enclave) of
/// the control layer.
#[derive(Clone, PartialEq, Eq)]
pub struct MasterKey {
    bytes: [u8; KEY_LEN],
}

// Deliberately opaque Debug: never print key material.
impl fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MasterKey")
            .field("bytes", &"<redacted>")
            .finish()
    }
}

impl MasterKey {
    /// Wraps an explicit 32-byte secret.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Self { bytes }
    }

    /// Samples a fresh master key from the given randomness source.
    pub fn random<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Self { bytes }
    }

    /// Derives the sub-key bundle for `(domain, epoch)`.
    ///
    /// The derivation runs ChaCha20 keyed with the master key over a nonce
    /// bound to the domain and epoch, and slices the keystream into the
    /// individual sub-keys. Distinct `(domain, epoch)` pairs therefore yield
    /// computationally independent bundles.
    pub fn derive(&self, domain: &str, epoch: u64) -> SubKeys {
        // Nonce: 8 bytes of SipHash(domain) + low 4 bytes of epoch. The
        // (domain-hash, epoch) pair identifies the bundle; epoch's high bits
        // are additionally mixed into the hash input to avoid truncation
        // aliasing for epochs beyond 2^32.
        let mut hash_input = Vec::with_capacity(domain.len() + 8);
        hash_input.extend_from_slice(domain.as_bytes());
        hash_input.extend_from_slice(&(epoch >> 32).to_le_bytes());
        let domain_hash = siphash24(
            &self.bytes[..16].try_into().expect("16-byte half"),
            &hash_input,
        );

        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&domain_hash.to_le_bytes());
        nonce[8..].copy_from_slice(&(epoch as u32).to_le_bytes());

        let cipher = ChaCha20::new(&self.bytes, &nonce);
        let block0 = cipher.keystream_block(0);
        let block1 = cipher.keystream_block(1);

        let mut enc = [0u8; 32];
        enc.copy_from_slice(&block0[..32]);
        let mut mac = [0u8; 16];
        mac.copy_from_slice(&block0[32..48]);
        let mut prp = [0u8; 16];
        prp.copy_from_slice(&block0[48..64]);
        let mut prf = [0u8; 16];
        prf.copy_from_slice(&block1[..16]);
        let mut rng_seed = [0u8; 32];
        rng_seed.copy_from_slice(&block1[16..48]);

        SubKeys {
            enc,
            mac,
            prp,
            prf,
            rng_seed,
            epoch,
        }
    }
}

/// A bundle of derived sub-keys for one `(domain, epoch)`.
///
/// Field-level getters expose each key to the component that needs it; the
/// struct itself is cheap to clone and carries its epoch for audit trails.
#[derive(Clone, PartialEq, Eq)]
pub struct SubKeys {
    enc: [u8; 32],
    mac: [u8; 16],
    prp: [u8; 16],
    prf: [u8; 16],
    rng_seed: [u8; 32],
    epoch: u64,
}

impl fmt::Debug for SubKeys {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SubKeys")
            .field("epoch", &self.epoch)
            .field("material", &"<redacted>")
            .finish()
    }
}

impl SubKeys {
    /// 256-bit block-encryption key (ChaCha20).
    pub fn encryption(&self) -> &[u8; 32] {
        &self.enc
    }

    /// 128-bit MAC key (SipHash-2-4).
    pub fn mac(&self) -> &[u8; 16] {
        &self.mac
    }

    /// 128-bit key for the position permutation ([`crate::prp::FeistelPrp`]).
    pub fn prp(&self) -> &[u8; 16] {
        &self.prp
    }

    /// 128-bit key for general PRF uses ([`crate::prf::Prf`]).
    pub fn prf(&self) -> &[u8; 16] {
        &self.prf
    }

    /// 256-bit seed for deterministic simulation randomness.
    pub fn rng_seed(&self) -> &[u8; 32] {
        &self.rng_seed
    }

    /// The epoch this bundle was derived for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Convenience wrapper owning a master key and handing out epoch bundles for
/// a fixed protocol domain.
///
/// # Example
///
/// ```
/// use oram_crypto::keys::{KeyHierarchy, MasterKey};
///
/// let hierarchy = KeyHierarchy::new(MasterKey::from_bytes([1u8; 32]), "horam/storage");
/// let epoch0 = hierarchy.epoch_keys(0);
/// let epoch1 = hierarchy.epoch_keys(1);
/// assert_ne!(epoch0.encryption(), epoch1.encryption());
/// ```
#[derive(Debug, Clone)]
pub struct KeyHierarchy {
    master: MasterKey,
    domain: String,
}

impl KeyHierarchy {
    /// Creates a hierarchy for one protocol domain.
    pub fn new(master: MasterKey, domain: impl Into<String>) -> Self {
        Self {
            master,
            domain: domain.into(),
        }
    }

    /// The protocol domain string.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Derives the sub-key bundle for `epoch`.
    pub fn epoch_keys(&self, epoch: u64) -> SubKeys {
        self.master.derive(&self.domain, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        let master = MasterKey::from_bytes([5u8; 32]);
        let a = master.derive("domain", 3);
        let b = master.derive("domain", 3);
        assert_eq!(a, b);
    }

    #[test]
    fn epochs_are_independent() {
        let master = MasterKey::from_bytes([5u8; 32]);
        let a = master.derive("domain", 0);
        let b = master.derive("domain", 1);
        assert_ne!(a.encryption(), b.encryption());
        assert_ne!(a.mac(), b.mac());
        assert_ne!(a.prp(), b.prp());
        assert_ne!(a.prf(), b.prf());
        assert_ne!(a.rng_seed(), b.rng_seed());
    }

    #[test]
    fn domains_are_independent() {
        let master = MasterKey::from_bytes([5u8; 32]);
        let a = master.derive("storage", 0);
        let b = master.derive("memory", 0);
        assert_ne!(a.encryption(), b.encryption());
    }

    #[test]
    fn epochs_beyond_u32_do_not_alias() {
        let master = MasterKey::from_bytes([5u8; 32]);
        // Same low 32 bits, different high bits.
        let a = master.derive("domain", 7);
        let b = master.derive("domain", 7 + (1u64 << 32));
        assert_ne!(a.encryption(), b.encryption());
    }

    #[test]
    fn subkeys_within_bundle_differ() {
        let keys = MasterKey::from_bytes([9u8; 32]).derive("d", 0);
        assert_ne!(&keys.encryption()[..16], keys.mac());
        assert_ne!(keys.mac(), keys.prp());
        assert_ne!(keys.prp(), keys.prf());
    }

    #[test]
    fn debug_redacts_material() {
        let master = MasterKey::from_bytes([0xAA; 32]);
        let debug = format!("{master:?}");
        assert!(!debug.contains("170")); // 0xAA
        assert!(debug.contains("redacted"));
        let keys = master.derive("d", 1);
        let debug = format!("{keys:?}");
        assert!(debug.contains("redacted"));
        assert!(debug.contains("epoch: 1"));
    }

    #[test]
    fn random_master_keys_differ() {
        let mut rng = crate::rng::DeterministicRng::from_seed_bytes([1u8; 32]);
        let a = MasterKey::random(&mut rng);
        let b = MasterKey::random(&mut rng);
        assert_ne!(a.derive("d", 0).encryption(), b.derive("d", 0).encryption());
    }

    #[test]
    fn hierarchy_matches_direct_derivation() {
        let master = MasterKey::from_bytes([2u8; 32]);
        let hierarchy = KeyHierarchy::new(master.clone(), "proto");
        assert_eq!(hierarchy.epoch_keys(4), master.derive("proto", 4));
        assert_eq!(hierarchy.domain(), "proto");
    }
}

//! Cryptographic primitives for the H-ORAM reproduction.
//!
//! The offline dependency allowlist for this reproduction contains no
//! cryptography crates, so this crate implements the small set of primitives
//! that the ORAM stack needs **from scratch**, each validated against
//! authoritative test vectors (generated with OpenSSL 3.5 and cross-checked
//! against the published reference vectors):
//!
//! * [`chacha::ChaCha20`] — the RFC 8439 stream cipher, used for block
//!   encryption and key derivation.
//! * [`siphash::SipHash24`] — SipHash-2-4, used as the keyed PRF/MAC.
//! * [`prp::FeistelPrp`] — a cycle-walking Feistel permutation over an
//!   arbitrary domain `[0, n)`, used to permute storage positions
//!   (the "permutation list" of the paper is backed by this PRP plus an
//!   explicit table once blocks migrate).
//! * [`seal::BlockSealer`] — encrypt-then-MAC sealing of ORAM blocks.
//! * [`keys::KeyHierarchy`] — epoch/domain sub-key derivation from a master
//!   key.
//! * [`rng::DeterministicRng`] — a reproducible ChaCha20-based CSPRNG
//!   implementing [`rand::RngCore`], so every simulation run is replayable.
//!
//! # Security disclaimer
//!
//! These implementations are **research-grade**: they are functionally
//! correct (vector-tested) but make no constant-time guarantees and the MAC
//! is 64-bit. They model the cryptography of the paper's system faithfully
//! for simulation and security-*analysis* purposes; do not reuse them as a
//! production cryptography library.
//!
//! # Example
//!
//! ```
//! use oram_crypto::{keys::MasterKey, seal::BlockSealer};
//!
//! # fn main() -> Result<(), oram_crypto::CryptoError> {
//! let master = MasterKey::from_bytes([7u8; 32]);
//! let sealer = BlockSealer::new(&master.derive("example", 0));
//! let sealed = sealer.seal(42, 0, b"secret payload");
//! let plain = sealer.open(&sealed)?;
//! assert_eq!(plain, b"secret payload");
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod chacha;
pub mod keys;
pub mod persist;
pub mod pool;
pub mod prf;
pub mod prp;
pub mod rng;
pub mod seal;
pub mod siphash;

pub use chacha::ChaCha20;
pub use keys::{KeyHierarchy, MasterKey, SubKeys};
pub use persist::{PersistError, StateReader, StateWriter};
pub use pool::BufferPool;
pub use prf::Prf;
pub use prp::FeistelPrp;
pub use rng::DeterministicRng;
pub use seal::{BlockSealer, SealedBlock};
pub use siphash::SipHash24;

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// Authentication tag verification failed when opening a sealed block.
    ///
    /// The block was corrupted, truncated, or sealed under different keys.
    TagMismatch {
        /// Logical identifier carried in the block header.
        block_id: u64,
    },
    /// A permutation was requested over an empty domain.
    EmptyDomain,
    /// An input value lies outside the permutation domain.
    OutOfDomain {
        /// The offending value.
        value: u64,
        /// The (exclusive) domain bound.
        domain: u64,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::TagMismatch { block_id } => {
                write!(f, "authentication tag mismatch for block {block_id}")
            }
            CryptoError::EmptyDomain => write!(f, "permutation domain must be non-empty"),
            CryptoError::OutOfDomain { value, domain } => {
                write!(
                    f,
                    "value {value} outside permutation domain of size {domain}"
                )
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_lowercase_and_specific() {
        let err = CryptoError::TagMismatch { block_id: 9 };
        assert_eq!(err.to_string(), "authentication tag mismatch for block 9");
        assert_eq!(
            CryptoError::EmptyDomain.to_string(),
            "permutation domain must be non-empty"
        );
        let err = CryptoError::OutOfDomain {
            value: 10,
            domain: 4,
        };
        assert!(err.to_string().contains("outside permutation domain"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}

//! Snapshot serialization: a tiny byte codec plus the sealed envelope.
//!
//! The durability subsystem (`horam-core::persist`) serializes trusted
//! client state — stash, position and permutation tables, key epochs,
//! clocks, statistics — into flat byte strings. This module provides the
//! two layers every component shares:
//!
//! * [`StateWriter`] / [`StateReader`] — a minimal little-endian codec
//!   (fixed-width integers, length-prefixed byte strings). No reflection,
//!   no self-description: reader and writer must agree on the layout,
//!   which the versioned envelope header pins.
//! * [`seal_envelope`] / [`open_envelope`] — the encrypt-then-MAC
//!   envelope around a serialized state body: a plaintext header (magic,
//!   version, kind, sequence number, body length), a ChaCha20-encrypted
//!   body, and a SipHash-2-4 tag over header and ciphertext. A snapshot
//!   at rest therefore leaks nothing beyond its size and sequence
//!   number, and any truncation, bit flip, or cross-instance replay is
//!   rejected at open time — never a panic, never wrong data.
//!
//! The envelope nonce is derived from `(kind, seq)`; callers must never
//! seal two *different* bodies under the same `(key, kind, seq)`. The
//! engines guarantee this SIV-style, deriving `seq` as a keyed PRF of
//! the body itself: distinct states get distinct nonces, and identical
//! states produce identical ciphertexts (leaking only that equality) —
//! robust even when execution forks at a restore point, where any
//! monotone counter would repeat.

use crate::chacha::{ChaCha20, NONCE_LEN};
use crate::keys::SubKeys;
use crate::siphash::SipHash24;
use std::error::Error;
use std::fmt;

/// Magic bytes opening every sealed snapshot.
pub const ENVELOPE_MAGIC: [u8; 8] = *b"HORAMSNP";
/// Envelope format version. Bumped on any layout change; readers reject
/// versions they do not know.
pub const ENVELOPE_VERSION: u32 = 1;
/// Plaintext header length: magic + version + kind + seq + body length.
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8;
/// Authentication tag length.
const TAG_LEN: usize = 8;

/// Errors surfaced while reading or verifying persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// The byte string ended before the expected field.
    UnexpectedEof,
    /// The envelope does not start with [`ENVELOPE_MAGIC`].
    BadMagic,
    /// The envelope version is not understood by this build.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The envelope kind does not match what the caller expects (e.g. a
    /// sharded manifest offered to a single-instance restore).
    WrongKind {
        /// Kind found in the header.
        found: u32,
        /// Kind the caller expected.
        expected: u32,
    },
    /// The authentication tag failed to verify: the snapshot was
    /// truncated, corrupted, or sealed under different keys.
    TagMismatch,
    /// A structurally invalid field value.
    Malformed(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "unexpected end of persisted state"),
            PersistError::BadMagic => write!(f, "not a sealed snapshot (bad magic)"),
            PersistError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            PersistError::WrongKind { found, expected } => {
                write!(f, "snapshot kind {found} where kind {expected} expected")
            }
            PersistError::TagMismatch => {
                write!(
                    f,
                    "snapshot failed authentication (truncated, corrupted, or wrong key)"
                )
            }
            PersistError::Malformed(reason) => write!(f, "malformed snapshot field: {reason}"),
        }
    }
}

impl Error for PersistError {}

/// Append-only little-endian state writer.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes an optional `u64` (presence byte + value).
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(v) => {
                self.put_u8(1);
                self.put_u64(v);
            }
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor-based reader over a serialized state body.
#[derive(Debug)]
pub struct StateReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a byte string for reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::UnexpectedEof);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a boolean; values other than 0/1 are malformed.
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` stored as `u64`, rejecting values beyond the host.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.get_u64()?)
            .map_err(|_| PersistError::Malformed("usize beyond host width".into()))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an optional `u64`.
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, PersistError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], PersistError> {
        let len = self.get_usize()?;
        self.take(len)
    }

    /// Asserts every byte was consumed (trailing garbage is malformed).
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

fn envelope_nonce(kind: u32, seq: u64) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..4].copy_from_slice(&kind.to_le_bytes());
    nonce[4..].copy_from_slice(&seq.to_le_bytes());
    nonce
}

fn envelope_tag(keys: &SubKeys, header: &[u8], ciphertext: &[u8]) -> u64 {
    let mut mac = SipHash24::new(keys.mac());
    mac.write(header);
    mac.write_u64(ciphertext.len() as u64);
    mac.write(ciphertext);
    mac.finish()
}

/// Seals a serialized state body into an authenticated envelope.
///
/// `kind` distinguishes snapshot flavors (single instance, sharded
/// manifest, …); `seq` doubles as the encryption nonce, so the caller
/// must never reuse one `(keys, kind, seq)` triple for different bodies
/// (see the [module docs](self) for the PRF-of-body derivation the
/// engines use).
pub fn seal_envelope(keys: &SubKeys, kind: u32, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TAG_LEN);
    out.extend_from_slice(&ENVELOPE_MAGIC);
    out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    let cipher_start = out.len();
    out.extend_from_slice(body);
    ChaCha20::with_counter(keys.encryption(), &envelope_nonce(kind, seq), 0)
        .apply_keystream(&mut out[cipher_start..]);
    let tag = envelope_tag(keys, &out[..HEADER_LEN], &out[HEADER_LEN..]);
    out.extend_from_slice(&tag.to_le_bytes());
    out
}

/// Verifies and decrypts an envelope sealed by [`seal_envelope`].
///
/// Returns the plaintext body. Every malformed input — short, truncated,
/// bit-flipped, wrong version, wrong kind, wrong key — yields an error;
/// this function never panics on untrusted bytes.
///
/// # Errors
///
/// See [`PersistError`].
pub fn open_envelope(
    keys: &SubKeys,
    expected_kind: u32,
    sealed: &[u8],
) -> Result<Vec<u8>, PersistError> {
    if sealed.len() < HEADER_LEN + TAG_LEN {
        return Err(PersistError::UnexpectedEof);
    }
    let mut header = StateReader::new(&sealed[..HEADER_LEN]);
    let magic = header.take(8)?;
    if magic != ENVELOPE_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = header.get_u32()?;
    if version != ENVELOPE_VERSION {
        return Err(PersistError::BadVersion {
            found: version,
            expected: ENVELOPE_VERSION,
        });
    }
    let kind = header.get_u32()?;
    let seq = header.get_u64()?;
    let body_len = header.get_u64()? as usize;
    let expected_total = HEADER_LEN + body_len + TAG_LEN;
    if sealed.len() != expected_total {
        // Truncated or padded relative to its own header. The tag check
        // below would also catch it, but failing early keeps the error
        // precise for torn-write diagnostics.
        return Err(PersistError::UnexpectedEof);
    }
    let ciphertext = &sealed[HEADER_LEN..HEADER_LEN + body_len];
    let tag = u64::from_le_bytes(
        sealed[HEADER_LEN + body_len..]
            .try_into()
            .expect("8-byte tag"),
    );
    if envelope_tag(keys, &sealed[..HEADER_LEN], ciphertext) != tag {
        return Err(PersistError::TagMismatch);
    }
    // Authenticated: kind mismatch is now a caller-level (not attacker)
    // condition, reported distinctly.
    if kind != expected_kind {
        return Err(PersistError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    let mut body = ciphertext.to_vec();
    ChaCha20::with_counter(keys.encryption(), &envelope_nonce(kind, seq), 0)
        .apply_keystream(&mut body);
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::MasterKey;

    fn keys() -> SubKeys {
        MasterKey::from_bytes([5u8; 32]).derive("persist-test", 0)
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_usize(12345);
        w.put_f64(1.25);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(9));
        w.put_bytes(b"hello");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 12345);
        assert_eq!(r.get_f64().unwrap(), 1.25);
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_opt_u64().unwrap(), Some(9));
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_eof_and_trailing_bytes() {
        let mut r = StateReader::new(&[1, 2]);
        assert_eq!(r.get_u64().unwrap_err(), PersistError::UnexpectedEof);
        let mut r = StateReader::new(&[1, 2]);
        r.get_u8().unwrap();
        assert!(matches!(r.finish(), Err(PersistError::Malformed(_))));
    }

    #[test]
    fn envelope_roundtrip() {
        let body = b"trusted state bytes".to_vec();
        let sealed = seal_envelope(&keys(), 3, 17, &body);
        assert_eq!(open_envelope(&keys(), 3, &sealed).unwrap(), body);
    }

    #[test]
    fn envelope_hides_the_body() {
        let body = b"a very secret stash".to_vec();
        let sealed = seal_envelope(&keys(), 1, 0, &body);
        let window = sealed.windows(body.len()).any(|w| w == body.as_slice());
        assert!(!window, "plaintext leaked into the envelope");
    }

    #[test]
    fn truncation_at_every_boundary_errors() {
        let sealed = seal_envelope(&keys(), 1, 5, b"some body bytes to cover");
        for cut in 0..sealed.len() {
            assert!(
                open_envelope(&keys(), 1, &sealed[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn corruption_and_wrong_key_and_kind_error() {
        let sealed = seal_envelope(&keys(), 2, 9, b"payload");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(open_envelope(&keys(), 2, &bad).is_err(), "flip at {i}");
        }
        let other = MasterKey::from_bytes([6u8; 32]).derive("persist-test", 0);
        assert_eq!(
            open_envelope(&other, 2, &sealed).unwrap_err(),
            PersistError::TagMismatch
        );
        assert_eq!(
            open_envelope(&keys(), 4, &sealed).unwrap_err(),
            PersistError::WrongKind {
                found: 2,
                expected: 4
            }
        );
    }

    #[test]
    fn rng_seek_resumes_the_stream() {
        use crate::rng::DeterministicRng;
        use rand::RngCore;
        let mut rng = DeterministicRng::from_u64_seed(77);
        let mut burn = vec![0u8; 133];
        rng.fill_bytes(&mut burn);
        let (counter, cursor) = rng.stream_pos();
        let mut expected = vec![0u8; 200];
        rng.fill_bytes(&mut expected);

        let mut resumed = DeterministicRng::from_u64_seed(77);
        resumed.seek_to(counter, cursor);
        let mut got = vec![0u8; 200];
        resumed.fill_bytes(&mut got);
        assert_eq!(expected, got);

        // Fresh-state position also round-trips.
        let fresh = DeterministicRng::from_u64_seed(3);
        let (c0, k0) = fresh.stream_pos();
        let mut seeked = DeterministicRng::from_u64_seed(3);
        seeked.seek_to(c0, k0);
        let mut a = DeterministicRng::from_u64_seed(3);
        assert_eq!(a.next_u64(), seeked.next_u64());
    }
}

//! A reusable byte-buffer pool for the zero-copy I/O pipeline.
//!
//! The batched load and shuffle paths move every block through a
//! decrypt → re-encode → re-encrypt cycle. With [`crate::seal::BlockSealer::
//! seal_into`] and [`crate::seal::BlockSealer::open_in_place`] the crypto
//! itself allocates nothing, but encoding a fresh dummy or hot block still
//! needs a buffer. [`BufferPool`] recycles the buffers of blocks that are
//! being discarded (stale ciphertexts read off the device) into those
//! encodes, so a steady-state shuffle pass performs no per-block heap
//! allocation at all.
//!
//! The pool is a plain LIFO free list: `take` pops (or allocates) and hands
//! back a zeroed buffer of the requested length; `recycle` pushes a spent
//! buffer back. Contents of recycled buffers are always overwritten before
//! reuse, so nothing secret survives in a handed-out buffer beyond what the
//! caller writes into it.

/// A LIFO free list of byte buffers. See the [module docs](self).
///
/// # Example
///
/// ```
/// use oram_crypto::pool::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let buffer = pool.take(16);
/// assert_eq!(buffer, vec![0u8; 16]);
/// pool.recycle(buffer);
/// assert_eq!(pool.free(), 1);
/// let again = pool.take(8); // reuses the recycled allocation
/// assert_eq!(again.len(), 8);
/// assert_eq!(pool.free(), 0);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    reused: u64,
    allocated: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a recycled buffer (or allocates one) and returns it zeroed and
    /// resized to exactly `len` bytes.
    pub fn take(&mut self, len: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buffer) => {
                self.reused += 1;
                buffer.clear();
                buffer.resize(len, 0);
                buffer
            }
            None => {
                self.allocated += 1;
                vec![0u8; len]
            }
        }
    }

    /// Returns a spent buffer to the free list. Its capacity is kept; its
    /// contents are irrelevant (zeroed on the next [`take`](Self::take)).
    pub fn recycle(&mut self, buffer: Vec<u8>) {
        if buffer.capacity() > 0 {
            self.free.push(buffer);
        }
    }

    /// Number of buffers currently on the free list.
    pub fn free(&self) -> usize {
        self.free.len()
    }

    /// Moves up to `n` free buffers into `other` without touching either
    /// pool's reuse/allocation counters. The parallel rebuild stream uses
    /// this to pre-stock per-worker pools with exactly the buffers their
    /// chunk will take, so chunked execution allocates no more than the
    /// serial path would.
    pub fn transfer_to(&mut self, other: &mut BufferPool, n: usize) {
        let at = self.free.len().saturating_sub(n);
        other.free.extend(self.free.drain(at..));
    }

    /// Moves every free buffer into `other` (counters untouched) — the
    /// end-of-phase sweep returning per-worker pools to the shared one.
    pub fn drain_into(&mut self, other: &mut BufferPool) {
        other.free.append(&mut self.free);
    }

    /// Lifetime counters `(reused, allocated)` — observability for the
    /// zero-copy claim (steady state should reuse, not allocate).
    pub fn counters(&self) -> (u64, u64) {
        (self.reused, self.allocated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_and_resizes_recycled_buffers() {
        let mut pool = BufferPool::new();
        let mut buffer = pool.take(4);
        buffer.copy_from_slice(&[9, 9, 9, 9]);
        pool.recycle(buffer);
        assert_eq!(pool.take(6), vec![0u8; 6]);
    }

    #[test]
    fn steady_state_reuses_instead_of_allocating() {
        let mut pool = BufferPool::new();
        for _ in 0..10 {
            let buffer = pool.take(32);
            pool.recycle(buffer);
        }
        let (reused, allocated) = pool.counters();
        assert_eq!(allocated, 1);
        assert_eq!(reused, 9);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.recycle(Vec::new());
        assert_eq!(pool.free(), 0);
    }

    #[test]
    fn transfers_move_buffers_without_counting() {
        let mut a = BufferPool::new();
        let mut b = BufferPool::new();
        for _ in 0..5 {
            let buffer = a.take(8);
            a.recycle(buffer);
        }
        // 5 take/recycle rounds on one buffer leave one free buffer.
        let before = a.counters();
        a.transfer_to(&mut b, 3); // only 1 available
        assert_eq!(a.free(), 0);
        assert_eq!(b.free(), 1);
        assert_eq!(a.counters(), before, "transfer must not count");
        assert_eq!(b.counters(), (0, 0));
        let buffer = b.take(4);
        b.recycle(buffer);
        b.drain_into(&mut a);
        assert_eq!(b.free(), 0);
        assert_eq!(a.free(), 1);
    }

    #[test]
    fn lifo_order() {
        let mut pool = BufferPool::new();
        let a = pool.take(1);
        let b = pool.take(2);
        let b_capacity = b.capacity();
        pool.recycle(a);
        pool.recycle(b);
        // Last recycled comes back first.
        assert!(pool.take(1).capacity() >= b_capacity.min(2));
        assert_eq!(pool.free(), 1);
    }
}

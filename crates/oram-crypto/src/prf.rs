//! Keyed pseudo-random function helpers built on SipHash-2-4.
//!
//! ORAM protocols need small, fast keyed randomness in several places:
//! drawing a fresh uniformly random leaf for a remapped block, deriving
//! per-round Feistel keys, and tagging dummy blocks. [`Prf`] packages those
//! uses behind one keyed object with domain separation.

use crate::siphash::{siphash24, SipHash24, KEY_LEN};

/// A keyed PRF with convenience methods for the ORAM stack.
///
/// All outputs are deterministic functions of `(key, domain, inputs)`.
/// Distinct `domain` strings yield independent functions, so one key can
/// safely serve several roles inside a protocol.
///
/// # Example
///
/// ```
/// use oram_crypto::prf::Prf;
///
/// let prf = Prf::new([9u8; 16]);
/// let leaf_a = prf.uniform("leaf-remap", &[42, 0], 1 << 20);
/// let leaf_b = prf.uniform("leaf-remap", &[42, 1], 1 << 20);
/// assert!(leaf_a < (1 << 20) && leaf_b < (1 << 20));
/// assert_ne!(leaf_a, leaf_b); // overwhelmingly likely
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prf {
    key: [u8; KEY_LEN],
}

impl Prf {
    /// Creates a PRF from a 16-byte key.
    pub fn new(key: [u8; KEY_LEN]) -> Self {
        Self { key }
    }

    /// Raw 64-bit PRF output over `(domain, data)`.
    pub fn eval(&self, domain: &str, data: &[u8]) -> u64 {
        let mut hasher = SipHash24::new(&self.key);
        hasher.write_u64(domain.len() as u64);
        hasher.write(domain.as_bytes());
        hasher.write(data);
        hasher.finish()
    }

    /// 64-bit PRF output over `(domain, words)`, avoiding byte-buffer
    /// allocation for the common integer-tuple case.
    pub fn eval_words(&self, domain: &str, words: &[u64]) -> u64 {
        let mut hasher = SipHash24::new(&self.key);
        hasher.write_u64(domain.len() as u64);
        hasher.write(domain.as_bytes());
        for w in words {
            hasher.write_u64(*w);
        }
        hasher.finish()
    }

    /// Uniform sample in `[0, bound)` derived from `(domain, words)`.
    ///
    /// Uses rejection sampling on the top of the 64-bit PRF output, so the
    /// result is exactly uniform (no modulo bias). Successive rejections
    /// re-key with an internal retry counter.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform(&self, domain: &str, words: &[u64], bound: u64) -> u64 {
        assert!(bound > 0, "uniform sampling requires a positive bound");
        if bound.is_power_of_two() {
            return self.eval_words(domain, words) & (bound - 1);
        }
        // Rejection sampling: accept x < zone where zone is the largest
        // multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound);
        let mut retry = 0u64;
        loop {
            let mut hasher = SipHash24::new(&self.key);
            hasher.write_u64(domain.len() as u64);
            hasher.write(domain.as_bytes());
            for w in words {
                hasher.write_u64(*w);
            }
            hasher.write_u64(retry);
            let x = hasher.finish();
            if x < zone {
                return x % bound;
            }
            retry += 1;
        }
    }

    /// Derives a fresh 16-byte subkey for `(domain, index)`.
    ///
    /// Used to key per-round Feistel functions and per-epoch MACs.
    pub fn subkey(&self, domain: &str, index: u64) -> [u8; KEY_LEN] {
        let lo = self.eval_words(domain, &[index, 0]);
        let hi = self.eval_words(domain, &[index, 1]);
        let mut key = [0u8; KEY_LEN];
        key[..8].copy_from_slice(&lo.to_le_bytes());
        key[8..].copy_from_slice(&hi.to_le_bytes());
        key
    }

    /// Direct access to the one-shot SipHash under this PRF's key, for
    /// callers that manage their own domain separation.
    pub fn raw(&self, data: &[u8]) -> u64 {
        siphash24(&self.key, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn domains_are_separated() {
        let prf = Prf::new([1u8; 16]);
        assert_ne!(prf.eval("a", b"x"), prf.eval("b", b"x"));
        // Prefix-shifting across the domain/data boundary must not collide:
        // ("ab", "c") vs ("a", "bc").
        assert_ne!(prf.eval("ab", b"c"), prf.eval("a", b"bc"));
    }

    #[test]
    fn eval_words_matches_structure() {
        let prf = Prf::new([2u8; 16]);
        // Same words, different grouping, must differ from byte-concatenated data
        // only through the documented encoding; check determinism and distinctness.
        let a = prf.eval_words("d", &[1, 2]);
        let b = prf.eval_words("d", &[2, 1]);
        assert_ne!(a, b);
        assert_eq!(a, prf.eval_words("d", &[1, 2]));
    }

    #[test]
    fn uniform_power_of_two_in_range() {
        let prf = Prf::new([3u8; 16]);
        for i in 0..1000 {
            let x = prf.uniform("leaves", &[i], 1024);
            assert!(x < 1024);
        }
    }

    #[test]
    fn uniform_general_bound_in_range() {
        let prf = Prf::new([4u8; 16]);
        for i in 0..1000 {
            let x = prf.uniform("general", &[i], 1000);
            assert!(x < 1000);
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        // Chi-square style sanity check over 10 bins; loose bound to stay
        // deterministic and non-flaky (the PRF is deterministic anyway).
        let prf = Prf::new([5u8; 16]);
        let samples = 50_000u64;
        let bins = 10u64;
        let mut counts = [0u64; 10];
        for i in 0..samples {
            counts[prf.uniform("chi", &[i], bins) as usize] += 1;
        }
        let expected = samples as f64 / bins as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 9 degrees of freedom: p=0.001 critical value is 27.88.
        assert!(chi2 < 27.88, "chi-square too large: {chi2}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn uniform_zero_bound_panics() {
        Prf::new([0u8; 16]).uniform("d", &[], 0);
    }

    #[test]
    fn subkeys_are_distinct() {
        let prf = Prf::new([6u8; 16]);
        let k0 = prf.subkey("round", 0);
        let k1 = prf.subkey("round", 1);
        let other = prf.subkey("mac", 0);
        assert_ne!(k0, k1);
        assert_ne!(k0, other);
    }

    proptest! {
        #[test]
        fn uniform_always_below_bound(seed in any::<[u8; 16]>(), words in proptest::collection::vec(any::<u64>(), 0..4), bound in 1u64..u64::MAX) {
            let prf = Prf::new(seed);
            let x = prf.uniform("prop", &words, bound);
            prop_assert!(x < bound);
        }

        #[test]
        fn eval_is_deterministic(seed in any::<[u8; 16]>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
            let prf = Prf::new(seed);
            prop_assert_eq!(prf.eval("det", &data), prf.eval("det", &data));
        }
    }
}
